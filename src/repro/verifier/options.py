"""The unified option set of one equivalence check.

Every layer of the tool — the :class:`~repro.verifier.session.Verifier`
session API, the :func:`repro.checker.api.check_equivalence` shim, the batch
service's :class:`~repro.service.job.VerificationJob` and the CLI — describes
*how* to check with the same frozen value: a :class:`CheckOptions`.  Before
this type existed the option set was re-spelled (with drift) by every
consumer; now a single value travels the whole pipeline and its
:meth:`~CheckOptions.fingerprint` participates in the service result-cache
key, so verdicts computed under different options can never alias.

Operator declarations are carried in picklable, hashable form — ``(name,
props)`` pairs where ``props`` is a string drawn from ``"A"`` (associative)
and ``"C"`` (commutative) — rather than as an
:class:`~repro.checker.properties.OperatorRegistry` object, which keeps the
options value frozen, serialisable and cheap to fingerprint.  ``operators``
is the *complete* declaration set: ``None`` means the paper's default
registry (``+`` and ``*`` associative-commutative), ``()`` means no algebraic
laws at all.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterable, Optional, Tuple

from ..checker.properties import OperatorRegistry, default_registry

__all__ = ["CheckOptions", "OPTIONS_FINGERPRINT_VERSION", "BACKEND_NAMES"]

#: Bump when the canonical fingerprint payload of :meth:`CheckOptions.fingerprint`
#: changes meaning, so stale fingerprints can never collide with new ones.
#: Version 2: ``backend`` joined the payload (PR 8).
OPTIONS_FINGERPRINT_VERSION = 2

#: The selectable decision-procedure backends (see :mod:`repro.solvers`).
#: Spelled here rather than imported so the options layer stays free of a
#: solvers dependency; :func:`repro.solvers.get_backend` accepts exactly
#: these names.
BACKEND_NAMES = ("omega", "smtlib", "z3", "crosscheck")

OperatorDecls = Tuple[Tuple[str, str], ...]


def _canonical_props(props: str) -> str:
    upper = props.upper()
    return "".join(letter for letter in "AC" if letter in upper)


def _canonical_operators(entries: Iterable[Tuple[str, str]]) -> OperatorDecls:
    """Sort declarations and normalise props; drop no-op (empty) declarations."""
    canonical = {}
    for op, props in entries:
        canonical[str(op)] = _canonical_props(str(props))
    return tuple(sorted((op, props) for op, props in canonical.items() if props))


def _registry_operators(registry: OperatorRegistry) -> OperatorDecls:
    return _canonical_operators(
        (op, ("A" if props.associative else "") + ("C" if props.commutative else ""))
        for op, props in registry.items()
    )


_DEFAULT_OPERATORS = _registry_operators(default_registry())


@dataclass(frozen=True)
class CheckOptions:
    """Everything that can influence the verdict of one equivalence check.

    Parameters
    ----------
    method:
        ``"extended"`` (default) or ``"basic"`` (Section 5.1: no algebraic
        normalisation).
    operators:
        The complete operator declaration set as ``(name, props)`` pairs
        (``props`` ⊆ ``"AC"``).  ``None`` selects the default registry of the
        paper; an explicit tuple replaces it entirely.
    outputs:
        Restrict the check to these output arrays (focused checking), or
        ``None`` for all common outputs.
    correspondences:
        Designer-declared intermediate array correspondences used as cut
        points (Section 6.1).
    tabling:
        Reuse established equivalences across overlapping sub-ADDGs
        (Section 6.2).
    check_preconditions:
        Run the def-use / single-assignment prerequisites first.
    timeout:
        Per-check wall-clock budget in seconds, enforced by the batch
        service's executor (``None``: unlimited).  The timeout cannot change
        a *computed* verdict, so it does not participate in
        :meth:`fingerprint`.
    backend:
        The decision-procedure backend answering the Presburger queries:
        ``"omega"`` (default, the paper's core), ``"smtlib"`` (external
        SMT solver via SMT-LIB2 text), ``"z3"`` (in-process, optional
        module) or ``"crosscheck"`` (omega *and* SMT on every query, hard
        error on divergence).  Participates in :meth:`fingerprint` — a
        verdict computed by one backend must never be served for another.
    smt_solver:
        Solver command for the SMT-based backends (e.g. ``z3``, ``cvc5``,
        ``builtin``); ``None`` auto-detects.  Like ``timeout`` it is
        excluded from :meth:`fingerprint`: any sound SMT-LIB2 solver must
        produce the same verdict, and a solver that doesn't is a bug to
        surface, not a distinct cache universe.
    persist_dir:
        Directory for the disk-backed Presburger op-cache
        (:mod:`repro.presburger.persist`), so warm state survives processes;
        ``None`` (the default) keeps the cache in-memory only.  Excluded
        from :meth:`fingerprint` for the same reason as ``timeout``: where
        cached work is stored cannot change a verdict (the cache-invariance
        test leg gates exactly that).
    """

    method: str = "extended"
    operators: Optional[OperatorDecls] = None
    outputs: Optional[Tuple[str, ...]] = None
    correspondences: Tuple[Tuple[str, str], ...] = ()
    tabling: bool = True
    check_preconditions: bool = True
    timeout: Optional[float] = None
    backend: str = "omega"
    smt_solver: Optional[str] = None
    persist_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.method not in ("basic", "extended"):
            raise ValueError(f"unknown method {self.method!r} (expected 'basic' or 'extended')")
        if self.backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown backend {self.backend!r} (expected one of {', '.join(BACKEND_NAMES)})"
            )
        if self.operators is not None:
            canonical = _canonical_operators(self.operators)
            # An explicit spelling of the default registry collapses onto the
            # ``None`` form so semantically equal options compare equal.
            object.__setattr__(
                self, "operators", None if canonical == _DEFAULT_OPERATORS else canonical
            )
        if self.outputs is not None:
            object.__setattr__(self, "outputs", tuple(str(name) for name in self.outputs))
        object.__setattr__(
            self,
            "correspondences",
            tuple((str(a), str(b)) for a, b in self.correspondences),
        )

    # ------------------------------------------------------------------ #
    @classmethod
    def from_registry(cls, registry: Optional[OperatorRegistry], **kwargs: Any) -> "CheckOptions":
        """Build options from an :class:`OperatorRegistry` value (or ``None``).

        The registry is flattened into the picklable ``operators`` form; the
        remaining keyword arguments are the other :class:`CheckOptions`
        fields.
        """
        operators = None if registry is None else _registry_operators(registry)
        return cls(operators=operators, **kwargs)

    def registry(self) -> OperatorRegistry:
        """Materialise the operator declarations as an :class:`OperatorRegistry`."""
        if self.operators is None:
            return default_registry()
        registry = OperatorRegistry()
        for op, props in self.operators:
            registry.declare(op, associative="A" in props, commutative="C" in props)
        return registry

    def resolved_operators(self) -> OperatorDecls:
        """The complete declaration set with ``None`` resolved to the default."""
        return _DEFAULT_OPERATORS if self.operators is None else self.operators

    def replace(self, **changes: Any) -> "CheckOptions":
        """A copy with the given fields changed (:func:`dataclasses.replace`)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable rendering; inverse of :meth:`from_dict`."""
        return {
            "method": self.method,
            "operators": (
                None if self.operators is None else [list(pair) for pair in self.operators]
            ),
            "outputs": None if self.outputs is None else list(self.outputs),
            "correspondences": [list(pair) for pair in self.correspondences],
            "tabling": self.tabling,
            "check_preconditions": self.check_preconditions,
            "timeout": self.timeout,
            "backend": self.backend,
            "smt_solver": self.smt_solver,
            "persist_dir": self.persist_dir,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CheckOptions":
        operators = data.get("operators")
        outputs = data.get("outputs")
        return cls(
            method=data.get("method", "extended"),
            operators=None if operators is None else tuple((op, props) for op, props in operators),
            outputs=None if outputs is None else tuple(outputs),
            correspondences=tuple((a, b) for a, b in data.get("correspondences", ())),
            tabling=data.get("tabling", True),
            check_preconditions=data.get("check_preconditions", True),
            timeout=data.get("timeout"),
            backend=data.get("backend", "omega"),
            smt_solver=data.get("smt_solver"),
            persist_dir=data.get("persist_dir"),
        )

    def fingerprint(self) -> str:
        """A stable SHA-256 hex digest of the verdict-relevant option set.

        Two options values fingerprint equally iff they describe the same
        check semantics: the operator set is resolved (``None`` and the
        explicit default spelling collapse), correspondences are order
        insensitive, and ``timeout`` — which can only abort a check, never
        change a computed verdict — is excluded.  The service folds this
        digest into its result-cache key so a ``basic``-method verdict can
        never be served for an ``extended`` request.
        """
        payload = {
            "version": OPTIONS_FINGERPRINT_VERSION,
            "method": self.method,
            "operators": [list(pair) for pair in self.resolved_operators()],
            "outputs": None if self.outputs is None else list(self.outputs),
            "correspondences": sorted([a, b] for a, b in self.correspondences),
            "tabling": self.tabling,
            "check_preconditions": self.check_preconditions,
            "backend": self.backend,
        }
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()
