"""The observer protocol of the verifier session API.

A check is a pipeline with observable milestones: each output array receives
a verdict, each mismatch produces a structured diagnostic, and the run ends
with work counters.  Consumers that used to re-parse the finished
:class:`~repro.checker.result.EquivalenceResult` (the CLI for progress lines,
the service for reporting) instead register a :class:`CheckObserver` and are
called *while the check runs*:

* :meth:`~CheckObserver.on_output_checked` — once per output array, with its
  :class:`~repro.checker.result.OutputReport` (including the non-equivalent
  reports emitted for outputs missing on one side);
* :meth:`~CheckObserver.on_diagnostic` — once per
  :class:`~repro.checker.result.Diagnostic`, as it is recorded.  Suspect
  annotations (Section 6.1) are applied to the *same* diagnostic objects
  after the traversal, so an observer that retains them sees the final form;
* :meth:`~CheckObserver.on_stats` — once at the end of the check, with the
  finalised :class:`~repro.checker.result.CheckStats` (frontend/engine time
  split included);
* :meth:`~CheckObserver.on_failure_report` — once per
  :meth:`~repro.verifier.session.Verifier.diagnose` call, with the
  :class:`~repro.diagnostics.report.FailureReport` after the diagnosis
  stages (witness synthesis, replay, bisection) completed.  Plain
  :meth:`~repro.verifier.session.Verifier.check` calls never emit it;
* :meth:`~CheckObserver.on_telemetry` — once per check, *only while*
  :mod:`repro.telemetry` tracing is enabled, with a
  :class:`~repro.telemetry.TelemetrySnapshot` carrying the check's
  per-phase wall-time breakdown (the same dict stored into
  ``CheckStats.phase_seconds``), its span count and its metric-counter
  deltas.  Emitted just before :meth:`~CheckObserver.on_stats`.

Observers are caller-owned code: exceptions they raise propagate out of the
check.  Keep callbacks cheap — they run on the checking thread.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Optional

from ..checker.result import CheckStats, Diagnostic, OutputReport
from ..telemetry import TelemetrySnapshot

if TYPE_CHECKING:  # annotation-only: the verifier must not import the
    # higher-level diagnostics package at runtime (layering / cycle risk)
    from ..diagnostics.report import FailureReport

__all__ = ["CheckObserver", "CallbackObserver"]


class CheckObserver:
    """Base class of check observers; override any subset of the hooks."""

    def on_output_checked(self, report: OutputReport) -> None:
        """One output array received its verdict."""

    def on_diagnostic(self, diagnostic: Diagnostic) -> None:
        """One diagnostic was recorded."""

    def on_stats(self, stats: CheckStats) -> None:
        """The check finished; *stats* carries the finalised counters."""

    def on_failure_report(self, report: FailureReport) -> None:
        """A :meth:`Verifier.diagnose` run produced its failure report."""

    def on_telemetry(self, snapshot: TelemetrySnapshot) -> None:
        """The check finished under active tracing; *snapshot* has its spans' digest."""


class CallbackObserver(CheckObserver):
    """A :class:`CheckObserver` assembled from plain callables.

    Convenient for one-off consumers (tests, scripts) that do not want to
    subclass::

        observer = CallbackObserver(on_output_checked=reports.append)
    """

    def __init__(
        self,
        on_output_checked: Optional[Callable[[OutputReport], None]] = None,
        on_diagnostic: Optional[Callable[[Diagnostic], None]] = None,
        on_stats: Optional[Callable[[CheckStats], None]] = None,
        on_failure_report: Optional[Callable[[FailureReport], None]] = None,
        on_telemetry: Optional[Callable[[TelemetrySnapshot], None]] = None,
    ):
        self._on_output_checked = on_output_checked
        self._on_diagnostic = on_diagnostic
        self._on_stats = on_stats
        self._on_failure_report = on_failure_report
        self._on_telemetry = on_telemetry

    def on_output_checked(self, report: OutputReport) -> None:
        if self._on_output_checked is not None:
            self._on_output_checked(report)

    def on_diagnostic(self, diagnostic: Diagnostic) -> None:
        if self._on_diagnostic is not None:
            self._on_diagnostic(diagnostic)

    def on_stats(self, stats: CheckStats) -> None:
        if self._on_stats is not None:
            self._on_stats(stats)

    def on_failure_report(self, report: FailureReport) -> None:
        if self._on_failure_report is not None:
            self._on_failure_report(report)

    def on_telemetry(self, snapshot: TelemetrySnapshot) -> None:
        if self._on_telemetry is not None:
            self._on_telemetry(snapshot)


class _Broadcast(CheckObserver):
    """Fan one event stream out to several observers (internal)."""

    def __init__(self, observers: Iterable[CheckObserver]):
        self._observers = tuple(observers)

    def on_output_checked(self, report: OutputReport) -> None:
        for observer in self._observers:
            observer.on_output_checked(report)

    def on_diagnostic(self, diagnostic: Diagnostic) -> None:
        for observer in self._observers:
            observer.on_diagnostic(diagnostic)

    def on_stats(self, stats: CheckStats) -> None:
        for observer in self._observers:
            observer.on_stats(stats)

    def on_failure_report(self, report: FailureReport) -> None:
        for observer in self._observers:
            observer.on_failure_report(report)

    def on_telemetry(self, snapshot: TelemetrySnapshot) -> None:
        for observer in self._observers:
            observer.on_telemetry(snapshot)
