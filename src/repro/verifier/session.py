"""The session API of the equivalence checker (the pipeline of Fig. 6).

The paper's tool is a pipeline — parse/validate → def-use prerequisites →
ADDG extraction → synchronized Presburger traversal — and this module
exposes it as explicit stages instead of one kwargs-heavy function call:

* :meth:`Verifier.compile` runs the *frontend* once per program and returns
  a :class:`CompiledProgram` (parsed AST + def-use report + extracted ADDG),
  cached inside the session so checking N transformed variants against one
  original pays the original's frontend exactly once — the paper's
  Section 6.2 sub-ADDG reuse insight lifted one level up, to whole programs;
* :meth:`Verifier.check` runs the *engine* (the synchronized traversal) over
  two compiled programs under a :class:`~repro.verifier.options.CheckOptions`
  value, streaming milestones to registered
  :class:`~repro.verifier.events.CheckObserver` values;
* :meth:`Verifier.check_addgs` enters the pipeline after extraction, for
  callers that build ADDGs themselves (ablation benchmarks).

:func:`repro.checker.api.check_equivalence` and
:func:`~repro.checker.api.check_addgs` remain as thin one-shot shims over a
throwaway session.
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..addg import ADDG, build_addg
from ..analysis import check_dataflow
from ..lang import Program, parse_program, program_to_text
from ..presburger import Map
from ..checker.engine import Engine
from ..checker.result import (
    CheckStats,
    Diagnostic,
    DiagnosticKind,
    EquivalenceResult,
    OutputReport,
)
from ..telemetry import (
    METRICS,
    TRACER,
    TelemetrySnapshot,
    aggregate_phase_seconds,
    current_request,
    delta_counters,
)
from .events import CheckObserver, _Broadcast
from .options import CheckOptions

__all__ = ["CompiledProgram", "Verifier", "normalized_program_text", "ProgramLike"]

ProgramLike = Union[Program, str, "CompiledProgram"]


def normalized_program_text(program: Program) -> str:
    """Canonical source text of a parsed program (pretty-print, no ``#define``).

    The parser folds ``#define`` constants into the body, so the re-emitted
    preamble is inert decoration; dropping it makes the canonical form
    independent of whether sizes were spelled as macros or literals.  This is
    the normal form the service fingerprints hash.
    """
    text = program_to_text(program)
    return "".join(
        line for line in text.splitlines(keepends=True) if not line.startswith("#define")
    ).lstrip("\n")


class CompiledProgram:
    """The frontend artifacts of one program, reusable across many checks.

    Holds the parsed :class:`~repro.lang.ast.Program` eagerly; the def-use
    report (:attr:`dataflow_issues`) and the extracted ADDG (:attr:`addg`)
    are computed on first use and cached, so a precondition-failing check
    never pays for extraction and a ``check_preconditions=False`` check never
    pays for the def-use analysis.  :attr:`frontend_seconds` accumulates the
    wall time of every frontend stage run so far.
    """

    __slots__ = ("program", "frontend_seconds", "_dataflow_issues", "_addg", "_fingerprint")

    def __init__(self, program: Program, frontend_seconds: float = 0.0):
        self.program = program
        self.frontend_seconds = frontend_seconds
        self._dataflow_issues: Optional[Tuple[str, ...]] = None
        self._addg: Optional[ADDG] = None
        self._fingerprint: Optional[str] = None

    @property
    def dataflow_issues(self) -> Tuple[str, ...]:
        """Def-use / single-assignment prerequisite violations (Fig. 6), if any."""
        if self._dataflow_issues is None:
            started = time.perf_counter()
            with TRACER.span("frontend.defuse", "frontend"):
                self._dataflow_issues = tuple(str(issue) for issue in check_dataflow(self.program))
            self.frontend_seconds += time.perf_counter() - started
        return self._dataflow_issues

    @property
    def addg(self) -> ADDG:
        """The extracted array data dependence graph (built once, cached)."""
        if self._addg is None:
            started = time.perf_counter()
            self._addg = build_addg(self.program)
            self.frontend_seconds += time.perf_counter() - started
        return self._addg

    @property
    def fingerprint(self) -> str:
        """SHA-256 of the normalised source text (identifies the program)."""
        if self._fingerprint is None:
            text = normalized_program_text(self.program)
            self._fingerprint = hashlib.sha256(text.encode("utf-8")).hexdigest()
        return self._fingerprint

    @property
    def outputs(self) -> Tuple[str, ...]:
        """The output arrays of the program (via the extracted ADDG)."""
        return tuple(self.addg.outputs)

    def __repr__(self) -> str:
        return f"CompiledProgram({self.fingerprint[:12]}, frontend={self.frontend_seconds:.3f}s)"


class Verifier:
    """A checking session: compiled-artifact cache + default options + observers.

    Parameters
    ----------
    options:
        The session's default :class:`CheckOptions`, used when
        :meth:`check` is called without a per-call override.
    observers:
        :class:`CheckObserver` values notified by every check of this
        session (per-call observers can be added on top).
    max_cache_entries:
        Bound on the compile cache (LRU eviction); ``None`` (the default)
        keeps every compiled program for the session's lifetime.  Long-lived
        sessions — the verification server keeps one per worker thread for
        the life of the daemon — must pass a bound or the cache grows with
        every distinct program ever seen.

    A session is cheap; its value is the compile cache: every distinct
    program is parsed, def-use-checked and ADDG-extracted once, no matter
    how many checks it participates in.  Sessions are not thread-safe.
    """

    def __init__(
        self,
        options: Optional[CheckOptions] = None,
        observers: Sequence[CheckObserver] = (),
        max_cache_entries: Optional[int] = None,
    ):
        self.options = options if options is not None else CheckOptions()
        self._observers: List[CheckObserver] = list(observers)
        self._cache: "OrderedDict[Tuple[str, object], CompiledProgram]" = OrderedDict()
        self.max_cache_entries = max_cache_entries
        self.compile_hits = 0
        self.compile_misses = 0
        self.compile_evictions = 0

    # ------------------------------------------------------------------ #
    def add_observer(self, observer: CheckObserver) -> None:
        """Register *observer* for every subsequent check of this session."""
        self._observers.append(observer)

    def clear_cache(self) -> None:
        """Drop every cached :class:`CompiledProgram`."""
        self._cache.clear()

    # ------------------------------------------------------------------ #
    def compile(self, source: ProgramLike) -> CompiledProgram:
        """Run the frontend on *source*, reusing the session's cache.

        Accepts mini-C source text, a parsed :class:`~repro.lang.ast.Program`
        or an existing :class:`CompiledProgram` (returned as-is).  Source
        text is keyed by its exact text; ``Program`` values by identity.
        """
        if isinstance(source, CompiledProgram):
            return source
        if isinstance(source, str):
            key: Tuple[str, object] = ("text", source)
        elif isinstance(source, Program):
            key = ("program", id(source))
        else:
            raise TypeError(
                f"expected a Program, source text or CompiledProgram, got {type(source).__name__}"
            )
        cached = self._cache.get(key)
        if cached is not None:
            self.compile_hits += 1
            self._cache.move_to_end(key)
            return cached
        self.compile_misses += 1
        started = time.perf_counter()
        program = parse_program(source) if isinstance(source, str) else source
        compiled = CompiledProgram(program, frontend_seconds=time.perf_counter() - started)
        self._cache[key] = compiled
        if self.max_cache_entries is not None:
            while len(self._cache) > max(1, self.max_cache_entries):
                self._cache.popitem(last=False)
                self.compile_evictions += 1
        return compiled

    # ------------------------------------------------------------------ #
    def check(
        self,
        original: ProgramLike,
        transformed: ProgramLike,
        options: Optional[CheckOptions] = None,
        observer: Optional[CheckObserver] = None,
    ) -> EquivalenceResult:
        """Check the functional equivalence of two programs.

        The frontend work (parse, def-use, extraction) of each side is served
        from the session's compile cache when available; its per-call cost is
        reported in ``stats.frontend_seconds``, the traversal in
        ``stats.engine_seconds`` (``elapsed_seconds`` is their sum).

        While :mod:`repro.telemetry` tracing is enabled the check additionally
        fills ``stats.phase_seconds`` from its recorded spans and broadcasts a
        :class:`~repro.telemetry.TelemetrySnapshot` via
        :meth:`~repro.verifier.events.CheckObserver.on_telemetry` just before
        :meth:`~repro.verifier.events.CheckObserver.on_stats`.
        """
        resolved = options if options is not None else self.options
        broadcast = self._broadcast(observer)
        if not TRACER.enabled:
            result = self._check_impl(original, transformed, resolved, broadcast)
            broadcast.on_stats(result.stats)
            return result
        mark = TRACER.mark()
        counters_before = METRICS.counters() if METRICS.enabled else {}
        with TRACER.span("verifier.check", "verifier") as check_span:
            # When the check runs under a server request, tag the root span
            # with the request id so a merged cross-process trace can be
            # joined back to the daemon's request log (repro.telemetry.live).
            request = current_request()
            if request is not None:
                check_span.set(request=request)
            result = self._check_impl(original, transformed, resolved, broadcast)
        self._finish_telemetry(broadcast, result, mark, counters_before)
        return result

    def _check_impl(
        self,
        original: ProgramLike,
        transformed: ProgramLike,
        resolved: CheckOptions,
        broadcast: _Broadcast,
    ) -> EquivalenceResult:
        """The check pipeline body; the caller broadcasts ``on_stats``."""
        frontend_started = time.perf_counter()
        original_compiled = self.compile(original)
        transformed_compiled = self.compile(transformed)

        if resolved.check_preconditions:
            precondition_diagnostics = []
            for side_name, compiled in (
                ("original", original_compiled),
                ("transformed", transformed_compiled),
            ):
                for issue in compiled.dataflow_issues:
                    precondition_diagnostics.append(
                        Diagnostic(
                            DiagnosticKind.PRECONDITION,
                            f"{side_name} program fails the def-use prerequisites: {issue}",
                        )
                    )
            if precondition_diagnostics:
                frontend = time.perf_counter() - frontend_started
                stats = CheckStats(
                    elapsed_seconds=frontend,
                    frontend_seconds=frontend,
                    engine_seconds=0.0,
                    backend=resolved.backend,
                )
                for diagnostic in precondition_diagnostics:
                    broadcast.on_diagnostic(diagnostic)
                return EquivalenceResult(
                    equivalent=False,
                    outputs=[],
                    diagnostics=precondition_diagnostics,
                    stats=stats,
                    method=resolved.method,
                )

        original_addg = original_compiled.addg
        transformed_addg = transformed_compiled.addg
        frontend = time.perf_counter() - frontend_started

        with TRACER.span("engine.traverse", "engine"):
            result = _traverse_with_backend(original_addg, transformed_addg, resolved, broadcast)
        result.stats.frontend_seconds = frontend
        result.stats.elapsed_seconds = frontend + result.stats.engine_seconds
        return result

    def diagnose(
        self,
        original: ProgramLike,
        transformed: ProgramLike,
        options: Optional[CheckOptions] = None,
        observer: Optional[CheckObserver] = None,
        result: Optional[EquivalenceResult] = None,
        trace: Optional[Sequence] = None,
        replay_trials: int = 3,
        replay_seed: int = 0,
        witness_seed: Optional[int] = None,
    ) -> "FailureReport":
        """Check the pair (unless *result* is given) and explain the verdict.

        Runs the :mod:`repro.diagnostics` stages over the session's compiled
        artifacts: witness synthesis from the Presburger mismatch sets,
        concrete interpreter replay (``replay_trials`` seeded inputs starting
        at ``replay_seed``; a ``witness_seed`` from an external oracle
        replays first) and — when *trace* carries the pair's recorded
        :class:`~repro.transforms.pipeline.TransformStep` sequence — pipeline
        bisection.  The check itself streams through the observer protocol as
        usual; the finished :class:`~repro.diagnostics.report.FailureReport`
        is additionally broadcast via
        :meth:`~repro.verifier.events.CheckObserver.on_failure_report`.
        An equivalent verdict yields an empty report (nothing to diagnose).
        """
        from ..diagnostics import build_failure_report

        broadcast = self._broadcast(observer)
        original_compiled = self.compile(original)
        transformed_compiled = self.compile(transformed)
        if result is None:
            result = self.check(
                original_compiled, transformed_compiled, options=options, observer=observer
            )
        report = build_failure_report(
            original_compiled.program,
            transformed_compiled.program,
            result,
            trace=trace,
            trials=replay_trials,
            base_seed=replay_seed,
            witness_seed=witness_seed,
            original_addg=_addg_if_built(original_compiled),
            transformed_addg=_addg_if_built(transformed_compiled),
        )
        broadcast.on_failure_report(report)
        return report

    def check_addgs(
        self,
        original: ADDG,
        transformed: ADDG,
        options: Optional[CheckOptions] = None,
        observer: Optional[CheckObserver] = None,
    ) -> EquivalenceResult:
        """Check two already-extracted ADDGs (enter the pipeline after the frontend)."""
        resolved = options if options is not None else self.options
        broadcast = self._broadcast(observer)
        if not TRACER.enabled:
            result = _traverse_with_backend(original, transformed, resolved, broadcast)
            broadcast.on_stats(result.stats)
            return result
        mark = TRACER.mark()
        counters_before = METRICS.counters() if METRICS.enabled else {}
        with TRACER.span("verifier.check_addgs", "verifier") as check_span, TRACER.span(
            "engine.traverse", "engine"
        ):
            request = current_request()
            if request is not None:
                check_span.set(request=request)
            result = _traverse_with_backend(original, transformed, resolved, broadcast)
        self._finish_telemetry(broadcast, result, mark, counters_before)
        return result

    def _finish_telemetry(
        self,
        broadcast: _Broadcast,
        result: EquivalenceResult,
        mark: int,
        counters_before: Dict[str, int],
    ) -> None:
        """Attach the traced check's phase breakdown and broadcast it.

        Runs only when tracing was on for the whole check: computes the
        per-phase wall-time split from the spans recorded since *mark*,
        stores it into ``result.stats.phase_seconds`` and emits the
        ``on_telemetry`` milestone followed by ``on_stats``.
        """
        records = TRACER.records_since(mark)
        phase_seconds = aggregate_phase_seconds(records)
        result.stats.phase_seconds = dict(phase_seconds)
        counters = (
            delta_counters(METRICS.counters(), counters_before) if METRICS.enabled else {}
        )
        broadcast.on_telemetry(
            TelemetrySnapshot(
                phase_seconds=dict(phase_seconds),
                span_count=len(records),
                counters=counters,
            )
        )
        broadcast.on_stats(result.stats)

    # ------------------------------------------------------------------ #
    def _broadcast(self, observer: Optional[CheckObserver]) -> _Broadcast:
        observers = list(self._observers)
        if observer is not None:
            observers.append(observer)
        return _Broadcast(observers)


def _addg_if_built(compiled: CompiledProgram) -> Optional[ADDG]:
    """The compiled ADDG, or ``None`` when extraction fails (handled downstream)."""
    try:
        return compiled.addg
    except Exception:
        return None


def _apply_persistence(resolved: CheckOptions) -> None:
    """Attach the options' persistent op-cache directory, if any.

    Idempotent: a store already attached at the same directory (by an
    earlier check, the environment variable, or the server/executor setup)
    is reused.  ``persist_dir=None`` leaves whatever is attached alone —
    persistence is process-level warm state, not a per-check toggle.
    """
    if not resolved.persist_dir:
        return
    import os

    from ..presburger import opcache

    store = opcache.persistent_store()
    if store is None or store.path != os.path.abspath(resolved.persist_dir):
        opcache.attach_persistent(resolved.persist_dir)


def _traverse_with_backend(
    original: ADDG,
    transformed: ADDG,
    resolved: CheckOptions,
    broadcast: _Broadcast,
) -> EquivalenceResult:
    """Run the traversal under the options' decision backend.

    ``omega`` (the default) installs nothing — the inline Presburger path
    runs exactly as before the backend layer existed.  Any other backend is
    activated on the context-local hook for the duration of the traversal,
    and its per-kind query counters land in ``stats.solver_queries``.  A
    :class:`~repro.solvers.BackendDisagreement` raised mid-traversal
    propagates (it is a ``BaseException``) with the hook already reset.
    """
    from ..solvers import use_backend

    _apply_persistence(resolved)
    with use_backend(resolved.backend, resolved.smt_solver) as backend:
        result = _traverse(original, transformed, resolved, broadcast)
    result.stats.backend = resolved.backend
    if backend is not None:
        result.stats.solver_queries = dict(backend.query_counts)
    return result


def _traverse(
    original: ADDG,
    transformed: ADDG,
    options: CheckOptions,
    observer: CheckObserver,
) -> EquivalenceResult:
    """The synchronized-traversal stage: one engine run over a pair of ADDGs.

    Fills ``stats.engine_seconds`` (and ``elapsed_seconds``, assuming no
    frontend ran; :meth:`Verifier.check` overwrites it with the full sum).
    """
    started = time.perf_counter()
    engine = Engine(
        original,
        transformed,
        registry=options.registry(),
        method=options.method,
        correspondences=options.correspondences,
        tabling=options.tabling,
    )
    notified = 0

    def flush_diagnostics() -> None:
        nonlocal notified
        for diagnostic in engine.diagnostics[notified:]:
            observer.on_diagnostic(diagnostic)
        notified = len(engine.diagnostics)

    requested = list(options.outputs) if options.outputs is not None else None
    original_outputs = list(original.outputs)
    transformed_outputs = list(transformed.outputs)
    if requested is None:
        to_check = [name for name in original_outputs if name in transformed_outputs]
        missing_in_transformed = [n for n in original_outputs if n not in transformed_outputs]
        missing_in_original = [n for n in transformed_outputs if n not in original_outputs]
    else:
        to_check = [n for n in requested if n in original_outputs and n in transformed_outputs]
        missing_in_transformed = [n for n in requested if n not in transformed_outputs]
        missing_in_original = [n for n in requested if n not in original_outputs]

    reports = []
    overall = True
    # An output array missing on one side gets both a diagnostic and a
    # non-equivalent report entry, so per-output aggregates (e.g. the batch
    # JSONL reports) count it among the failing outputs instead of silently
    # dropping it.  A requested array missing from *both* programs appears in
    # both lists and keeps one diagnostic per side, but must report (and
    # notify) only once.
    reported_missing = set()
    for missing, side in (
        (missing_in_transformed, "transformed"),
        (missing_in_original, "original"),
    ):
        for name in missing:
            engine.diagnostics.append(
                Diagnostic(
                    DiagnosticKind.OUTPUT_MISSING,
                    f"output array {name!r} is not produced by the {side} program",
                    output_array=name,
                )
            )
            overall = False
            if name not in reported_missing:
                reported_missing.add(name)
                report = OutputReport(array=name, equivalent=False)
                reports.append(report)
                observer.on_output_checked(report)
            flush_diagnostics()

    for name in to_check:
        with TRACER.span("engine.output", "engine", array=name):
            engine.current_output = name
            diagnostics_before = len(engine.diagnostics)
            defined1 = original.written_set(name)
            defined2 = transformed.written_set(name)
            common = defined1.intersect(defined2.rename(defined1.names))
            if not defined1.is_equal(defined2.rename(defined1.names)):
                engine.diagnostics.append(
                    Diagnostic(
                        DiagnosticKind.DOMAIN_MISMATCH,
                        f"the two programs define different element sets of output array {name!r}",
                        output_array=name,
                        original_mapping=str(defined1),
                        transformed_mapping=str(defined2),
                        mismatch_domain=str(
                            defined1.subtract(defined2.rename(defined1.names)).union(
                                defined2.rename(defined1.names).subtract(defined1)
                            )
                        ),
                    )
                )
            identity = Map.identity(common.names, domain=common)
            term1 = engine.output_term(0, name, identity)
            term2 = engine.output_term(1, name, identity)
            ok = engine.compare(term1, term2)
            new_diagnostics = engine.diagnostics[diagnostics_before:]
            output_ok = ok and not new_diagnostics
            overall = overall and output_ok
            failing_domain = None
            for diagnostic in new_diagnostics:
                if diagnostic.mismatch_domain:
                    failing_domain = diagnostic.mismatch_domain
                    break
            report = OutputReport(
                array=name,
                equivalent=output_ok,
                checked_domain=str(common),
                failing_domain=failing_domain,
            )
            reports.append(report)
            observer.on_output_checked(report)
            flush_diagnostics()
    engine.current_output = None

    # Verify declared intermediate correspondences as separate obligations —
    # both the ones actually used as cut points during the traversal and the
    # ones the designer declared but the traversal never reached.
    obligations = set(engine.correspondence_obligations()) | set(engine.correspondences)
    with TRACER.span("engine.correspondences", "engine", count=len(obligations)):
        for name1, name2 in sorted(obligations):
            diagnostics_before = len(engine.diagnostics)
            try:
                defined1 = original.written_set(name1)
                defined2 = transformed.written_set(name2)
            except KeyError:
                engine.diagnostics.append(
                    Diagnostic(
                        DiagnosticKind.PRECONDITION,
                        f"declared correspondence ({name1!r}, {name2!r}) refers to an array that is never written",
                    )
                )
                overall = False
                flush_diagnostics()
                continue
            # The obligation is checked on the intersection of the defined element
            # sets: a declared correspondence may legitimately be partial (e.g.
            # when one program only materialises part of the temporary).
            common = defined1.intersect(defined2.rename(defined1.names))
            identity = Map.identity(common.names, domain=common)
            engine.current_output = name1
            term1 = engine.output_term(0, name1, identity)
            term2 = engine.output_term(1, name2, identity)
            # While discharging the obligation for this pair, the pair itself must
            # not be usable as a cut point (that would be circular).
            engine.correspondences.discard((name1, name2))
            try:
                ok = engine.compare(term1, term2)
            finally:
                engine.correspondences.add((name1, name2))
            new_diagnostics = engine.diagnostics[diagnostics_before:]
            if not (ok and not new_diagnostics):
                overall = False
            engine.current_output = None
            flush_diagnostics()

    engine.apply_suspect_heuristic()
    flush_diagnostics()
    engine.record_opcache_stats()
    engine.stats.original_addg_size = original.size()
    engine.stats.transformed_addg_size = transformed.size()
    engine.stats.engine_seconds = time.perf_counter() - started
    engine.stats.elapsed_seconds = engine.stats.frontend_seconds + engine.stats.engine_seconds
    return EquivalenceResult(
        equivalent=overall,
        outputs=reports,
        diagnostics=engine.diagnostics,
        stats=engine.stats,
        method=options.method,
    )
