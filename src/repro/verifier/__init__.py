"""The session-oriented public API of the equivalence checker.

This package exposes the paper's pipeline (Fig. 6) as explicit, reusable
stages instead of one kwargs-heavy call:

* :class:`~repro.verifier.options.CheckOptions` — the unified, frozen option
  set shared by the checker, the batch service and the CLI, with a stable
  :meth:`~repro.verifier.options.CheckOptions.fingerprint` that participates
  in the service's result-cache key;
* :class:`~repro.verifier.session.Verifier` /
  :class:`~repro.verifier.session.CompiledProgram` — the session object and
  its cached frontend artifact, amortising parse + def-use + ADDG extraction
  across many checks;
* :class:`~repro.verifier.events.CheckObserver` /
  :class:`~repro.verifier.events.CallbackObserver` — streaming milestones
  (per-output verdicts, diagnostics, final stats) for the CLI and the
  service layer.

``repro.checker.check_equivalence`` / ``check_addgs`` remain as one-shot
shims over a throwaway :class:`Verifier`; see ``docs/api.md`` for the
migration table.
"""

from .events import CallbackObserver, CheckObserver
from .options import OPTIONS_FINGERPRINT_VERSION, CheckOptions
from .session import CompiledProgram, Verifier, normalized_program_text

__all__ = [
    "CallbackObserver",
    "CheckObserver",
    "CheckOptions",
    "CompiledProgram",
    "OPTIONS_FINGERPRINT_VERSION",
    "Verifier",
    "normalized_program_text",
]
