"""The asyncio daemon: listeners, per-client budgets, graceful drain.

:class:`VerificationServer` owns one :class:`~repro.server.pool.WarmVerifierPool`
plus its :class:`~repro.server.pool.JobDispatcher` and serves the newline-
delimited JSON protocol of :mod:`repro.server.protocol` over TCP and/or a
unix domain socket.  The event loop only ever parses frames and books
futures; every check runs on the pool's worker threads, so a slow job never
stops the server from answering ``ping`` or accepting new connections.

Lifecycle
---------

``start()`` binds the listeners (a TCP port of ``0`` picks a free one; the
bound addresses are in :attr:`addresses`).  ``serve_forever()`` parks until
:meth:`initiate_shutdown` is called — by the ``shutdown`` RPC, by ``SIGTERM``
/ ``SIGINT`` (installed by :func:`run_server`), or by a test.  Shutdown is a
*drain*: listeners close immediately, requests already in flight run to
completion (bounded by ``config.drain_seconds``), every connection receives
its remaining responses, new requests are answered with a structured
``shutting_down`` error, and only then does the loop exit.

Per-client budgets
------------------

Each connection may have at most ``config.max_inflight_per_client`` checks
in flight; excess requests are rejected immediately with ``rate_limited``
(not queued — a client that wants backpressure gets it by bounding its own
pipeline).  Frames above ``config.max_frame_bytes`` terminate the connection
after a ``frame_too_large`` error, because a byte stream past an oversized
frame is no longer self-synchronising.

:class:`ServerThread` runs the whole daemon on a background thread — the
harness the in-process tests and the soak benchmark use.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..service.cache import ResultCache
from ..service.fingerprint import job_fingerprint
from ..service.job import VerificationJob
from ..service.report import SERVER_SNAPSHOT_VERSION
from ..telemetry import (
    METRICS,
    TRACER,
    Histogram,
    RequestLogger,
    SlowRequestRing,
    render_server_snapshot,
)
from ..telemetry.prom import CONTENT_TYPE as _PROM_CONTENT_TYPE
from . import protocol
from .pool import JobDispatcher, WarmVerifierPool

__all__ = ["ServerConfig", "VerificationServer", "ServerThread", "run_server"]


@dataclass
class ServerConfig:
    """Everything a daemon instance can be tuned with."""

    host: Optional[str] = "127.0.0.1"
    port: int = 8571
    unix_socket: Optional[str] = None
    workers: int = 1
    cache_dir: Optional[str] = None
    cache_memory_entries: int = 4096
    no_cache: bool = False
    compiled_entries: int = 512
    session_entries: int = 64
    default_timeout: Optional[float] = None
    max_timeout: Optional[float] = None
    max_frame_bytes: int = protocol.MAX_FRAME_BYTES
    max_inflight_per_client: int = 16
    drain_seconds: float = 30.0
    # Decision-backend default applied to requests that do not choose one
    # (see WarmVerifierPool.prepare_job); None honours each job's options.
    backend: Optional[str] = None
    smt_solver: Optional[str] = None
    # Directory of the persistent Presburger op-cache shared by the pool's
    # worker threads (None: in-memory warm state only).
    persist_dir: Optional[str] = None
    # Observability (docs/observability.md, "Operating the server"): the
    # structured JSONL request log and the bounded slow-request capture.
    log_path: Optional[str] = None
    log_level: str = "info"
    log_max_bytes: int = 32 * 1024 * 1024
    slow_threshold: Optional[float] = None
    slow_capacity: int = 32

    def build_cache(self) -> Optional[ResultCache]:
        """The verdict cache this config describes (memory-only by default)."""
        if self.no_cache:
            return None
        return ResultCache(self.cache_dir, memory_entries=self.cache_memory_entries)


class _ClientContext:
    """Per-connection budget accounting."""

    __slots__ = ("peer", "inflight", "write_lock")

    def __init__(self, peer: str):
        self.peer = peer
        self.inflight = 0
        self.write_lock = asyncio.Lock()


class VerificationServer:
    """One daemon instance: warm pool + dispatcher + listeners."""

    def __init__(self, config: Optional[ServerConfig] = None, pool: Optional[WarmVerifierPool] = None):
        self.config = config or ServerConfig()
        self.pool = pool or WarmVerifierPool(
            workers=self.config.workers,
            cache=self.config.build_cache(),
            compiled_entries=self.config.compiled_entries,
            session_entries=self.config.session_entries,
            default_timeout=self.config.default_timeout,
            backend=self.config.backend,
            smt_solver=self.config.smt_solver,
            persist_dir=self.config.persist_dir,
        )
        self.dispatcher = JobDispatcher(self.pool)
        self.addresses: List[str] = []
        self._servers: List[asyncio.AbstractServer] = []
        self._request_tasks: "set[asyncio.Task]" = set()
        self._connections = 0
        self._shutdown_event: Optional[asyncio.Event] = None
        self.draining = False
        self._started_monotonic = time.monotonic()
        self.request_log: Optional[RequestLogger] = (
            RequestLogger(
                self.config.log_path,
                level=self.config.log_level,
                max_bytes=self.config.log_max_bytes,
            )
            if self.config.log_path
            else None
        )
        self.slow_requests = SlowRequestRing(self.config.slow_capacity)
        # Always-on request/check latency histograms: unlike the opt-in
        # METRICS registry these must be observable through `stats` on any
        # daemon, telemetry flags or not.  Observed only from the event-loop
        # thread, so no lock is needed.
        self.request_latency = Histogram("request_seconds")
        self.check_latency = Histogram("check_seconds")
        # Per-request trace propagation: while >=1 traced check is in
        # flight the process-wide tracer is enabled; when we flipped it on
        # ourselves we also turn it off (and drop the buffer) once the last
        # traced request finishes, so untraced traffic never accumulates
        # spans unboundedly.
        self._traced_inflight = 0
        self._owns_tracer = False

    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Bind the configured listeners; fills :attr:`addresses`."""
        self._shutdown_event = asyncio.Event()
        limit = self.config.max_frame_bytes + 2
        if self.config.host is not None:
            server = await asyncio.start_server(
                self._handle_client, host=self.config.host, port=self.config.port, limit=limit
            )
            self._servers.append(server)
            for sock in server.sockets or ():
                host, port = sock.getsockname()[:2]
                self.addresses.append(f"{host}:{port}")
        if self.config.unix_socket:
            server = await asyncio.start_unix_server(
                self._handle_client, path=self.config.unix_socket, limit=limit
            )
            self._servers.append(server)
            self.addresses.append(f"unix:{self.config.unix_socket}")
        if not self._servers:
            raise ValueError("server config binds neither a TCP host nor a unix socket")

    async def serve_forever(self) -> None:
        """Park until shutdown is initiated, then drain and close."""
        assert self._shutdown_event is not None, "call start() first"
        await self._shutdown_event.wait()
        await self._drain()

    def initiate_shutdown(self) -> None:
        """Begin graceful shutdown (idempotent, callable from the loop thread)."""
        self.draining = True
        if self._shutdown_event is not None:
            self._shutdown_event.set()

    async def _drain(self) -> None:
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        # A client that sent a frame just before shutdown deserves an answer
        # (the drained verdict or a structured shutting_down error), but its
        # bytes may still sit in the socket buffer, not yet turned into a
        # request task.  Give open connections one short read-grace so those
        # frames surface before the task wait below concludes.
        if self._connections and self.config.drain_seconds > 0:
            await asyncio.sleep(min(0.25, self.config.drain_seconds))
        # Re-snapshot until quiet: a frame already buffered on an open
        # connection can spawn a request task *after* draining began (it is
        # answered with a shutting_down error) and must still be awaited.
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.drain_seconds
        while True:
            pending = {task for task in self._request_tasks if not task.done()}
            if not pending:
                break
            remaining = deadline - loop.time()
            if remaining <= 0:
                for task in pending:
                    task.cancel()
                await asyncio.gather(*pending, return_exceptions=True)
                break
            await asyncio.wait(pending, timeout=remaining)
        self.pool.close()
        if self.request_log is not None:
            self.request_log.close()
        if self.config.unix_socket and os.path.exists(self.config.unix_socket):
            try:
                os.remove(self.config.unix_socket)
            except OSError:
                pass

    # ------------------------------------------------------------------ #
    async def _handle_client(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        peername = writer.get_extra_info("peername")
        ctx = _ClientContext(str(peername))
        self._connections += 1
        METRICS.inc("server.connections")
        self._log_event("connect", peer=ctx.peer, connections=self._connections)
        try:
            while True:
                try:
                    line = await reader.readuntil(b"\n")
                except asyncio.IncompleteReadError as error:
                    # Client went away mid-frame (or cleanly with no partial
                    # data); either way this connection is over — silently.
                    if error.partial:
                        METRICS.inc("server.disconnects_midframe")
                    break
                except asyncio.LimitOverrunError:
                    # The stream cannot be re-synchronised past an oversized
                    # frame; answer once, then hang up this connection.
                    self.pool.stats.inc("rejected")
                    METRICS.inc("server.frames_too_large")
                    self._log_event(
                        "request_rejected",
                        peer=ctx.peer,
                        code=protocol.ERROR_FRAME_TOO_LARGE,
                    )
                    await self._send(
                        ctx,
                        writer,
                        protocol.error_response(
                            None,
                            protocol.ERROR_FRAME_TOO_LARGE,
                            f"frame exceeds the {self.config.max_frame_bytes} byte limit",
                        ),
                    )
                    break
                except (ConnectionResetError, BrokenPipeError, OSError):
                    break
                if not line.strip():
                    continue
                task = asyncio.ensure_future(self._serve_frame(ctx, writer, line))
                self._request_tasks.add(task)
                task.add_done_callback(self._request_tasks.discard)
        finally:
            self._connections -= 1
            self._log_event("disconnect", peer=ctx.peer, connections=self._connections)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            except asyncio.CancelledError:
                # Loop teardown cancelled us while flushing the close; the
                # transport dies with the loop either way.
                pass

    async def _send(self, ctx: _ClientContext, writer: asyncio.StreamWriter, frame: Dict[str, Any]) -> None:
        """Write one response frame; a vanished client is not an error."""
        async with ctx.write_lock:
            try:
                writer.write(protocol.encode_frame(frame))
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError, OSError):
                METRICS.inc("server.responses_dropped")

    async def _serve_frame(self, ctx: _ClientContext, writer: asyncio.StreamWriter, line: bytes) -> None:
        """Decode, dispatch and answer one frame; never lets an error escape."""
        self.pool.stats.inc("requests")
        METRICS.inc("server.requests")
        METRICS.set("server.inflight", self.dispatcher.inflight)
        request_id: Any = None
        try:
            payload = protocol.decode_frame(line, self.config.max_frame_bytes)
            request_id = payload.get("id")
            request_id, method, params = protocol.validate_request(payload)
        except protocol.ProtocolError as error:
            self.pool.stats.inc("rejected")
            self._log_event(
                "request_rejected", request=request_id, peer=ctx.peer, code=error.code
            )
            await self._send(ctx, writer, protocol.error_response(request_id, error.code, error.message))
            return
        traced = method == "check" and bool(params.get("trace"))
        if traced:
            self._begin_request_trace()
        mark = TRACER.mark() if traced else 0
        started = time.perf_counter()
        error_code: Optional[str] = None
        with TRACER.span("server.request", "server", method=method, request=request_id):
            try:
                response = await self._dispatch(ctx, request_id, method, params)
            except protocol.ProtocolError as error:
                self.pool.stats.inc("rejected")
                error_code = error.code
                response = protocol.error_response(request_id, error.code, error.message)
            except asyncio.CancelledError:
                # Drain timeout hit while this request was still running:
                # tell the client rather than vanish.
                error_code = protocol.ERROR_SHUTTING_DOWN
                response = protocol.error_response(
                    request_id, protocol.ERROR_SHUTTING_DOWN, "server shut down before completion"
                )
            except Exception as error:  # the queue must never wedge
                self.pool.stats.inc("errors")
                METRICS.inc("server.internal_errors")
                error_code = protocol.ERROR_INTERNAL
                response = protocol.error_response(
                    request_id, protocol.ERROR_INTERNAL, f"{type(error).__name__}: {error}"
                )
        wall = time.perf_counter() - started
        self.request_latency.observe(wall)
        if traced:
            self._finish_request_trace(mark, request_id, response)
        if error_code is not None:
            self._log_event(
                "request_rejected",
                level="error" if error_code == protocol.ERROR_INTERNAL else None,
                request=request_id,
                peer=ctx.peer,
                method=method,
                code=error_code,
                wall_seconds=round(wall, 6),
            )
        elif method != "check":
            # check requests log their own richer completion event inside
            # _serve_check, where the outcome is in scope.
            self._log_event(
                "request_completed",
                level="debug",
                request=request_id,
                peer=ctx.peer,
                method=method,
                wall_seconds=round(wall, 6),
            )
        await self._send(ctx, writer, response)

    # ------------------------------------------------------------------ #
    def _log_event(self, kind: str, level: Optional[str] = None, **fields: Any) -> None:
        if self.request_log is not None:
            self.request_log.emit(kind, level=level, **fields)

    def _begin_request_trace(self) -> None:
        self._traced_inflight += 1
        if not TRACER.enabled:
            TRACER.enabled = True
            self._owns_tracer = True

    def _finish_request_trace(self, mark: int, request_id: Any, response: Dict[str, Any]) -> None:
        """Append this request's event-loop spans to the response and clean up.

        The pool already attached the worker thread's spans (filtered by
        thread id); here the root ``server.request`` span — identified by
        its ``request`` arg, since concurrent requests interleave on the
        loop thread — joins them, then the traced-inflight accounting winds
        down (possibly disabling and clearing the tracer we enabled).
        """
        try:
            own_tid = threading.get_ident()
            root_spans = [
                record.to_dict()
                for record in TRACER.records_since(mark)
                if record.tid == own_tid and record.args.get("request") == request_id
            ]
        finally:
            self._traced_inflight -= 1
            if self._traced_inflight == 0 and self._owns_tracer:
                TRACER.enabled = False
                self._owns_tracer = False
                TRACER.clear()
        result = response.get("result") if response.get("ok") else None
        if isinstance(result, dict):
            trace_block = result.setdefault("trace", {})
            trace_block.setdefault("spans", []).extend(root_spans)
            trace_block["pid"] = os.getpid()

    # ------------------------------------------------------------------ #
    async def _dispatch(self, ctx: _ClientContext, request_id: Any, method: str, params: Dict[str, Any]) -> Dict[str, Any]:
        if method == "ping":
            return protocol.ok_response(
                request_id,
                {
                    "pong": True,
                    "protocol_version": protocol.PROTOCOL_VERSION,
                    "uptime_seconds": time.monotonic() - self._started_monotonic,
                    "pid": os.getpid(),
                    "draining": self.draining,
                },
            )
        if method == "stats":
            payload = self.snapshot()
            if params.get("slow"):
                payload["slow"]["records"] = self.slow_requests.snapshot()
            fmt = params.get("format")
            if fmt == "prometheus":
                metric_rows = METRICS.snapshot() if METRICS.enabled else None
                return protocol.ok_response(
                    request_id,
                    {
                        "format": "prometheus",
                        "content_type": _PROM_CONTENT_TYPE,
                        "text": render_server_snapshot(payload, metric_rows=metric_rows),
                    },
                )
            if fmt not in (None, "json"):
                raise protocol.ProtocolError(
                    protocol.ERROR_INVALID_REQUEST,
                    f"unknown stats format {fmt!r}; expected 'json' or 'prometheus'",
                )
            return protocol.ok_response(request_id, payload)
        if method == "reset":
            self.pool.reset()
            return protocol.ok_response(request_id, {"reset": True})
        if method == "shutdown":
            self.initiate_shutdown()
            return protocol.ok_response(request_id, {"shutting_down": True})
        if method == "check":
            return await self._serve_check(ctx, request_id, params)
        raise protocol.ProtocolError(
            protocol.ERROR_UNKNOWN_METHOD, f"unknown method {method!r}"
        )

    async def _serve_check(self, ctx: _ClientContext, request_id: Any, params: Dict[str, Any]) -> Dict[str, Any]:
        if self.draining:
            raise protocol.ProtocolError(
                protocol.ERROR_SHUTTING_DOWN, "server is draining; not accepting new checks"
            )
        if ctx.inflight >= self.config.max_inflight_per_client:
            # Counted as `rejected` by the ProtocolError handler upstream.
            METRICS.inc("server.rate_limited")
            raise protocol.ProtocolError(
                protocol.ERROR_RATE_LIMITED,
                f"client budget exceeded: {ctx.inflight} checks already in flight "
                f"(limit {self.config.max_inflight_per_client})",
            )
        job_payload = params.get("job")
        if not isinstance(job_payload, dict):
            raise protocol.ProtocolError(
                protocol.ERROR_INVALID_REQUEST, "check params must carry a 'job' object"
            )
        try:
            job = VerificationJob.from_dict(job_payload)
        except (KeyError, TypeError, ValueError) as error:
            raise protocol.ProtocolError(
                protocol.ERROR_INVALID_REQUEST, f"malformed job: {type(error).__name__}: {error}"
            ) from None
        timeout = params.get("timeout")
        if timeout is not None and not isinstance(timeout, (int, float)):
            raise protocol.ProtocolError(
                protocol.ERROR_INVALID_REQUEST, "'timeout' must be a number of seconds"
            )
        if self.config.max_timeout is not None:
            timeout = min(timeout, self.config.max_timeout) if timeout else self.config.max_timeout
        trace_requested = bool(params.get("trace"))
        # Fingerprint once, on the event loop: the accepted log event, the
        # dispatcher's dedup key and the pool's cache front all reuse it
        # (hashing two whole programs costs ~1 ms — recomputing it per layer
        # was the bulk of the observability overhead).
        job = self.pool.prepare_job(job)
        fingerprint = job_fingerprint(job)
        if self.request_log is not None and self.request_log.enabled_for("debug"):
            self._log_event(
                "request_accepted",
                request=request_id,
                peer=ctx.peer,
                method="check",
                job=job.name,
                fingerprint=fingerprint,
                trace=trace_requested or None,
            )
        ctx.inflight += 1
        METRICS.set("server.queue_depth", self.dispatcher.inflight)
        started = time.perf_counter()
        try:
            outcome = await self.dispatcher.run(
                job,
                timeout,
                collect_spans=trace_requested,
                request_id=request_id,
                fingerprint=fingerprint,
            )
        finally:
            ctx.inflight -= 1
        wall = time.perf_counter() - started
        if not outcome.cache_hit and not outcome.metadata.get("deduplicated"):
            self.check_latency.observe(wall)
        if self.request_log is not None and self.request_log.enabled_for("info"):
            # The per-phase breakdown is a debug-level detail: it nearly
            # doubles the serialised record, and slow-request captures carry
            # it regardless of log level.
            check_stats = None
            if self.request_log.enabled_for("debug") and outcome.result is not None:
                check_stats = outcome.result.stats
            self._log_event(
                "request_completed",
                request=request_id,
                peer=ctx.peer,
                method="check",
                job=outcome.name,
                fingerprint=outcome.fingerprint,
                status=outcome.status,
                verdict=outcome.equivalent,
                dedup="follower" if outcome.metadata.get("deduplicated") else "leader",
                cache="verdict" if outcome.cache_hit else "none",
                wall_seconds=round(wall, 6),
                elapsed_seconds=round(outcome.elapsed_seconds, 6),
                phase_seconds=dict(check_stats.phase_seconds) if check_stats is not None and check_stats.phase_seconds else None,
                error=outcome.error,
            )
        if self.config.slow_threshold is not None and wall >= self.config.slow_threshold:
            self._capture_slow(request_id, job, outcome, wall)
        result_payload = outcome.to_dict()
        if trace_requested and outcome.telemetry:
            # JobResult.to_dict deliberately drops the transient telemetry
            # field; the shipped spans travel as a sibling `trace` block that
            # _finish_request_trace tops up with the server root span.
            result_payload["trace"] = {"spans": list(outcome.telemetry.get("spans") or ())}
            outcome.telemetry = None
        return protocol.ok_response(request_id, result_payload)

    def _capture_slow(self, request_id: Any, job: VerificationJob, outcome, wall: float) -> None:
        """Persist a self-contained slow-request record into the bounded ring."""
        check_stats = outcome.result.stats if outcome.result is not None else None
        record: Dict[str, Any] = {
            "ts": time.time(),
            "request": request_id,
            "job": job.name,
            "fingerprint": outcome.fingerprint,
            "status": outcome.status,
            "verdict": outcome.equivalent,
            "wall_seconds": wall,
            "elapsed_seconds": outcome.elapsed_seconds,
            "dedup": bool(outcome.metadata.get("deduplicated")),
            "cache_hit": outcome.cache_hit,
            "options": job.options.to_dict() if job.options is not None else None,
            "error": outcome.error,
        }
        if check_stats is not None:
            record["phase_seconds"] = dict(check_stats.phase_seconds)
            record["frontend_seconds"] = check_stats.frontend_seconds
            record["engine_seconds"] = check_stats.engine_seconds
            record["opcache"] = {
                "hits": check_stats.opcache_hits,
                "misses": check_stats.opcache_misses,
            }
            record["solver_queries"] = dict(check_stats.solver_queries)
        self.slow_requests.add(record)
        self._log_event(
            "request_slow",
            request=request_id,
            job=job.name,
            fingerprint=outcome.fingerprint,
            wall_seconds=round(wall, 6),
            threshold_seconds=self.config.slow_threshold,
        )

    def snapshot(self) -> Dict[str, Any]:
        """The deep ``stats`` payload: one schema over every serving layer.

        Extends :meth:`WarmVerifierPool.snapshot` (counters, caches,
        opcache, solver queries) with the daemon's own view — identity
        fields for fleet tooling (``pid``/``protocol_version``/
        ``uptime_seconds``), live connection/in-flight gauges, the always-on
        latency histograms and the slow-request/request-log summaries.
        ``repro.telemetry.prom.render_server_snapshot`` renders exactly this
        payload, and :func:`repro.service.report.format_server_snapshot`
        pretty-prints it for ``repro-eqcheck stats``.
        """
        payload = self.pool.snapshot()
        payload["schema_version"] = SERVER_SNAPSHOT_VERSION
        payload["protocol_version"] = protocol.PROTOCOL_VERSION
        payload["pid"] = os.getpid()
        payload["uptime_seconds"] = time.monotonic() - self._started_monotonic
        payload["inflight"] = self.dispatcher.inflight
        payload["connections"] = self._connections
        payload["draining"] = self.draining
        payload["latency"] = {
            "request_seconds": self.request_latency.snapshot(),
            "check_seconds": self.check_latency.snapshot(),
        }
        payload["slow"] = {
            "threshold_seconds": self.config.slow_threshold,
            "capacity": self.slow_requests.capacity,
            "captured": self.slow_requests.captured,
            "held": len(self.slow_requests),
        }
        payload["request_log"] = self.request_log.stats() if self.request_log is not None else None
        return payload


async def _serve(config: ServerConfig, ready=None, install_signals: bool = True) -> None:
    server = VerificationServer(config)
    await server.start()
    loop = asyncio.get_running_loop()
    if install_signals:
        import signal as _signal

        for signum in (_signal.SIGTERM, _signal.SIGINT):
            try:
                loop.add_signal_handler(signum, server.initiate_shutdown)
            except (NotImplementedError, RuntimeError):
                pass
    if ready is not None:
        ready(server)
    await server.serve_forever()


def run_server(config: ServerConfig, ready=None, install_signals: bool = True) -> None:
    """Run a daemon to completion on a fresh event loop (the CLI entry).

    *ready* is called with the started :class:`VerificationServer` once the
    listeners are bound (used to print the live addresses).  ``SIGTERM`` and
    ``SIGINT`` trigger a graceful drain when *install_signals* is true.
    """
    asyncio.run(_serve(config, ready=ready, install_signals=install_signals))


class ServerThread:
    """A daemon running on a background thread, for tests and benchmarks.

    Usage::

        with ServerThread(ServerConfig(port=0)) as handle:
            client = ServerClient(handle.address)
            ...

    ``port=0`` binds an ephemeral port; :attr:`address` is the first bound
    address (``host:port`` or ``unix:PATH``).  Exiting the context initiates
    a graceful drain and joins the thread.
    """

    def __init__(self, config: Optional[ServerConfig] = None, start_timeout: float = 10.0):
        self.config = config or ServerConfig(port=0)
        self.server: Optional[VerificationServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._run, name="eqcheck-serverthread", daemon=True)
        self._thread.start()
        if not self._ready.wait(start_timeout):
            raise RuntimeError("server thread did not start in time")
        if self._error is not None:
            raise RuntimeError(f"server thread failed to start: {self._error!r}")

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            try:
                await _serve(self.config, ready=self._on_ready, install_signals=False)
            except BaseException as error:
                self._error = error
                self._ready.set()
                raise

        try:
            asyncio.run(main())
        except BaseException:
            if not self._ready.is_set():
                self._ready.set()

    def _on_ready(self, server: VerificationServer) -> None:
        self.server = server
        self._ready.set()

    @property
    def address(self) -> str:
        assert self.server is not None
        return self.server.addresses[0]

    def stop(self, join_timeout: float = 30.0) -> None:
        """Drain gracefully and join the server thread."""
        if self._loop is not None and self.server is not None and self._thread.is_alive():
            try:
                self._loop.call_soon_threadsafe(self.server.initiate_shutdown)
            except RuntimeError:
                pass
        self._thread.join(join_timeout)

    def __enter__(self) -> "ServerThread":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
