"""Long-lived verification server: warm state behind a JSON-RPC socket.

Spawning one process per equivalence check pays the interpreter start-up,
imports, and a cold Presburger opcache every single time.  This package
keeps one process alive and shares everything that is expensive to build:

``protocol``
    The newline-delimited JSON frame format (requests, responses,
    structured error codes) spoken over TCP or a unix socket.
``pool``
    The warm core — :class:`~repro.server.pool.WarmVerifierPool` holds
    thread-local long-lived :class:`~repro.verifier.session.Verifier`
    sessions, a shared compiled-artifact store keyed by source fingerprint,
    and the content-addressed verdict cache; the asyncio-side
    :class:`~repro.server.pool.JobDispatcher` coalesces concurrent
    identical requests onto one in-flight leader.
``daemon``
    The asyncio server: connection handling, per-client budgets,
    telemetry spans, and graceful ``SIGTERM`` draining.
    :class:`~repro.server.daemon.ServerThread` runs the whole daemon on a
    background thread for tests and benchmarks.
``client``
    A synchronous pipelined client used by ``repro-eqcheck check/batch
    --server`` and the test harness.

Start one with ``repro-eqcheck serve`` and point any number of clients at
it; see ``docs/server.md`` for the protocol schema and an ops runbook.
"""

from .client import ServerClient, ServerError, parse_address
from .daemon import ServerConfig, ServerThread, VerificationServer, run_server
from .pool import CompiledStore, JobDispatcher, ServerStats, WarmVerifierPool
from .protocol import MAX_FRAME_BYTES, PROTOCOL_VERSION, ProtocolError

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "ServerClient",
    "ServerError",
    "parse_address",
    "ServerConfig",
    "ServerThread",
    "VerificationServer",
    "run_server",
    "CompiledStore",
    "JobDispatcher",
    "ServerStats",
    "WarmVerifierPool",
]
