"""A small synchronous client for the verification server.

The client speaks the newline-delimited JSON protocol of
:mod:`repro.server.protocol` over a plain socket — no asyncio on the client
side, so the CLI (``check --server`` / ``batch --server``), tests and
benchmarks can stay synchronous.  :meth:`ServerClient.run_jobs` pipelines a
batch over one connection with a bounded in-flight window and reassembles
the out-of-order responses by request id, which is what makes the server's
cross-request dedup observable from a single client.

Addresses are spelled ``HOST:PORT`` for TCP or ``unix:PATH`` for a unix
domain socket (:func:`parse_address`).
"""

from __future__ import annotations

import socket
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..service.job import JobResult, VerificationJob
from . import protocol

__all__ = ["ServerClient", "ServerError", "parse_address"]


class ServerError(Exception):
    """A structured error response from the server (or a transport failure)."""

    def __init__(self, code: str, message: str):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


def parse_address(address: str) -> Tuple[str, Any]:
    """Parse ``HOST:PORT`` or ``unix:PATH`` into ``(family, target)``.

    Returns ``("unix", path)`` or ``("tcp", (host, port))``; raises
    :class:`ValueError` on anything else.
    """
    if address.startswith("unix:"):
        path = address[len("unix:"):]
        if not path:
            raise ValueError("unix: address is missing the socket path")
        return "unix", path
    host, separator, port_text = address.rpartition(":")
    if not separator or not host:
        raise ValueError(f"expected HOST:PORT or unix:PATH, got {address!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"invalid port in server address {address!r}") from None
    return "tcp", (host, port)


class ServerClient:
    """One connection to a verification server.

    Parameters
    ----------
    address:
        ``HOST:PORT`` or ``unix:PATH``.
    connect_timeout:
        Seconds to wait for the TCP/unix connect.
    request_timeout:
        Socket-level ceiling on waiting for any single response frame;
        ``None`` (default) waits as long as the server is checking.  This is
        a transport safety net, distinct from the per-job verification
        budget (``timeout`` on :meth:`check_job`), which the *server*
        enforces and reports as a structured ``timeout`` job status.
    """

    def __init__(
        self,
        address: str,
        connect_timeout: float = 10.0,
        request_timeout: Optional[float] = None,
        max_frame_bytes: int = protocol.MAX_FRAME_BYTES,
    ):
        self.address = address
        self.max_frame_bytes = max_frame_bytes
        family, target = parse_address(address)
        if family == "unix":
            self._socket = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._socket.settimeout(connect_timeout)
            self._socket.connect(target)
        else:
            self._socket = socket.create_connection(target, timeout=connect_timeout)
        self._socket.settimeout(request_timeout)
        self._reader = self._socket.makefile("rb")
        self._next_id = 0

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            try:
                self._socket.close()
            except OSError:
                pass

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def _send_request(self, method: str, params: Optional[Dict[str, Any]] = None) -> int:
        self._next_id += 1
        request_id = self._next_id
        frame = protocol.encode_frame(protocol.request_frame(method, params, id=request_id))
        self._socket.sendall(frame)
        return request_id

    def _read_response(self) -> Dict[str, Any]:
        line = self._reader.readline(self.max_frame_bytes + 2)
        if not line:
            raise ServerError("disconnected", "server closed the connection")
        if not line.endswith(b"\n"):
            raise ServerError("disconnected", "truncated response frame")
        try:
            return protocol.decode_frame(line, self.max_frame_bytes)
        except protocol.ProtocolError as error:
            raise ServerError(error.code, error.message) from None

    @staticmethod
    def _unwrap(response: Dict[str, Any]) -> Any:
        if response.get("ok"):
            return response.get("result")
        error = response.get("error") or {}
        raise ServerError(
            str(error.get("code", "unknown")), str(error.get("message", "unspecified error"))
        )

    def request(self, method: str, params: Optional[Dict[str, Any]] = None) -> Any:
        """One synchronous round trip; returns the result or raises."""
        request_id = self._send_request(method, params)
        response = self._read_response()
        if not response.get("ok") and response.get("id") is None:
            # A connection-level error frame (frame_too_large, parse_error):
            # it carries no request id, but it *is* the answer.
            self._unwrap(response)
        if response.get("id") != request_id:
            raise ServerError(
                "protocol", f"response id {response.get('id')!r} does not match request {request_id}"
            )
        return self._unwrap(response)

    # ------------------------------------------------------------------ #
    def ping(self) -> Dict[str, Any]:
        return self.request("ping")

    def stats(
        self, format: Optional[str] = None, slow: bool = False
    ) -> Dict[str, Any]:
        """The server's deep observability snapshot.

        ``format="prometheus"`` returns the exposition-text envelope
        (``{"format": ..., "content_type": ..., "text": ...}``); ``slow``
        embeds the captured slow-request records under ``slow.records``.
        """
        params: Dict[str, Any] = {}
        if format is not None:
            params["format"] = format
        if slow:
            params["slow"] = True
        return self.request("stats", params or None)

    def reset(self) -> Dict[str, Any]:
        return self.request("reset")

    def shutdown(self) -> Dict[str, Any]:
        return self.request("shutdown")

    @staticmethod
    def _reconstruct(payload: Dict[str, Any], trace: bool) -> JobResult:
        """Rebuild a JobResult, rescuing the server's span shipment first.

        ``JobResult.from_dict`` reads only the fields it knows, so the
        response's ``trace`` block (server-side ``SpanRecord`` dicts plus
        the daemon pid) would silently vanish; it is re-attached on the
        transient ``telemetry`` field for the caller to ingest.
        """
        outcome = JobResult.from_dict(payload)
        if trace and isinstance(payload.get("trace"), dict):
            outcome.telemetry = payload["trace"]
        return outcome

    def check_job(
        self, job: VerificationJob, timeout: Optional[float] = None, trace: bool = False
    ) -> JobResult:
        """Run one job on the server; returns the reconstructed result.

        With *trace* the server records the check under a per-request root
        span and ships its finished spans back; they land on the returned
        result's transient ``telemetry`` field (``{"spans": [...], "pid":
        N}``), ready for :func:`repro.telemetry.ingest_spans`.
        """
        params: Dict[str, Any] = {"job": job.to_dict()}
        if timeout is not None:
            params["timeout"] = timeout
        if trace:
            params["trace"] = True
        return self._reconstruct(self.request("check", params), trace)

    def run_jobs(
        self,
        jobs: Sequence[VerificationJob],
        timeout: Optional[float] = None,
        window: int = 8,
        progress: Optional[Callable[[JobResult], None]] = None,
        trace: bool = False,
    ) -> List[JobResult]:
        """Pipeline *jobs* over this connection; results in input order.

        Keeps up to *window* requests in flight (stay at or below the
        server's per-client budget or the excess is rejected), reading
        responses — which may complete out of order — as they arrive.
        *progress* fires per completion, in completion order.  *trace*
        requests server-side spans per job, as in :meth:`check_job`.
        """
        jobs = list(jobs)
        results: List[Optional[JobResult]] = [None] * len(jobs)
        index_of: Dict[int, int] = {}
        sent = 0
        outstanding = 0
        while sent < len(jobs) or outstanding:
            while sent < len(jobs) and outstanding < max(1, window):
                params: Dict[str, Any] = {"job": jobs[sent].to_dict()}
                if timeout is not None:
                    params["timeout"] = timeout
                if trace:
                    params["trace"] = True
                index_of[self._send_request("check", params)] = sent
                sent += 1
                outstanding += 1
            response = self._read_response()
            outstanding -= 1
            if not response.get("ok") and response.get("id") is None:
                self._unwrap(response)
            index = index_of.pop(response.get("id"), None)
            if index is None:
                raise ServerError("protocol", f"unsolicited response id {response.get('id')!r}")
            outcome = self._reconstruct(self._unwrap(response), trace)
            results[index] = outcome
            if progress is not None:
                progress(outcome)
        return [outcome for outcome in results if outcome is not None]
