"""The wire protocol of the verification server: newline-delimited JSON.

One *frame* is one UTF-8 JSON object terminated by ``\\n`` — trivially
parseable from every language, debuggable with ``nc``, and streamable in
both directions over TCP or a unix domain socket.  Requests and responses
are correlated by a client-chosen ``id``, so a client may pipeline many
requests over one connection and the server may answer them out of order
(responses are written as jobs complete).

Request frame::

    {"id": 7, "method": "check", "params": {"job": {...}, "timeout": 10.0}}

Response frame (exactly one per request)::

    {"id": 7, "ok": true, "result": {...}}
    {"id": 7, "ok": false, "error": {"code": "timeout", "message": "..."}}

Methods (see ``docs/server.md`` for the full schema):

``ping``
    Liveness probe; returns ``protocol_version``, ``uptime_seconds`` and
    ``pid`` (so fleet tooling can detect restarts), plus ``draining``.
``check``
    Run one equivalence check.  ``params.job`` is the
    :meth:`repro.service.job.VerificationJob.to_dict` schema (the same one
    JSON job files use); ``params.timeout`` is this request's wall-clock
    budget in seconds.  The result is the
    :meth:`repro.service.job.JobResult.to_dict` form.  With
    ``params.trace: true`` the server runs the check under a per-request
    root span tagged with the request id and attaches the finished
    server-side span records to the result as ``trace: {"spans": [...],
    "pid": N}``, so the client can merge them into its own timeline.
``stats``
    The server's deep observability snapshot (versioned by
    ``schema_version``): lifetime counters, pool/compiled-store/verdict-
    cache occupancy, opcache + persistent-tier counters, solver-backend
    query counts, latency histograms and the slow-request summary.
    ``params.format: "prometheus"`` returns ``{"format": "prometheus",
    "content_type": ..., "text": ...}`` in exposition format 0.0.4 instead;
    ``params.slow: true`` embeds the captured slow-request records.
``reset``
    Drop all warm state: verdict cache, compiled artifacts, sessions.
``shutdown``
    Ask the server to drain and exit (same path as ``SIGTERM``).

A malformed frame never kills the connection silently: the server answers
with an ``id: null`` error frame (``parse_error`` / ``invalid_request``) and
keeps reading.  The one exception is an oversized frame — the stream is no
longer self-synchronising past :data:`MAX_FRAME_BYTES`, so the server sends
``frame_too_large`` and closes that connection (the listener stays up).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "ERROR_PARSE",
    "ERROR_INVALID_REQUEST",
    "ERROR_FRAME_TOO_LARGE",
    "ERROR_UNKNOWN_METHOD",
    "ERROR_RATE_LIMITED",
    "ERROR_SHUTTING_DOWN",
    "ERROR_INTERNAL",
    "ProtocolError",
    "encode_frame",
    "decode_frame",
    "request_frame",
    "ok_response",
    "error_response",
    "validate_request",
]

#: Bump when the frame schema changes incompatibly.
PROTOCOL_VERSION = 1

#: Default ceiling on one frame's encoded size.  Generous (a job carries two
#: whole programs as source text) but bounded: an unbounded ``readuntil``
#: would let one client buffer the server into the ground.
MAX_FRAME_BYTES = 4 * 1024 * 1024

ERROR_PARSE = "parse_error"
ERROR_INVALID_REQUEST = "invalid_request"
ERROR_FRAME_TOO_LARGE = "frame_too_large"
ERROR_UNKNOWN_METHOD = "unknown_method"
ERROR_RATE_LIMITED = "rate_limited"
ERROR_SHUTTING_DOWN = "shutting_down"
ERROR_INTERNAL = "internal_error"


class ProtocolError(Exception):
    """A frame the server (or client) cannot accept, with its error code."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code
        self.message = message


def encode_frame(payload: Dict[str, Any]) -> bytes:
    """Serialise one frame (compact JSON + newline terminator)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_frame(line: bytes, max_bytes: int = MAX_FRAME_BYTES) -> Dict[str, Any]:
    """Parse one received line into a frame object.

    Raises :class:`ProtocolError` (``frame_too_large`` / ``parse_error`` /
    ``invalid_request``) instead of letting ``json`` or ``UnicodeDecodeError``
    escape, so the caller can always turn a bad frame into a structured
    error response.
    """
    if len(line) > max_bytes:
        raise ProtocolError(
            ERROR_FRAME_TOO_LARGE, f"frame of {len(line)} bytes exceeds the {max_bytes} byte limit"
        )
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise ProtocolError(ERROR_PARSE, f"malformed JSON frame: {error}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            ERROR_INVALID_REQUEST, f"frame must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def request_frame(
    method: str, params: Optional[Dict[str, Any]] = None, id: Any = None
) -> Dict[str, Any]:
    """Build a request frame (the client side of :func:`validate_request`)."""
    frame: Dict[str, Any] = {"id": id, "method": method}
    if params is not None:
        frame["params"] = params
    return frame


def ok_response(id: Any, result: Any) -> Dict[str, Any]:
    return {"id": id, "ok": True, "result": result}


def error_response(id: Any, code: str, message: str) -> Dict[str, Any]:
    return {"id": id, "ok": False, "error": {"code": code, "message": message}}


def validate_request(payload: Dict[str, Any]) -> Tuple[Any, str, Dict[str, Any]]:
    """Check a decoded frame's request shape; returns ``(id, method, params)``.

    The ``id`` is returned even when validation fails further along (it is
    carried inside the raised :class:`ProtocolError` message's response by
    the caller, which extracts it before calling here) — so this function
    only raises after the shape is beyond salvage.
    """
    request_id = payload.get("id")
    method = payload.get("method")
    if not isinstance(method, str) or not method:
        raise ProtocolError(ERROR_INVALID_REQUEST, "request frame is missing a 'method' string")
    params = payload.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError(
            ERROR_INVALID_REQUEST, f"'params' must be an object, got {type(params).__name__}"
        )
    return request_id, method, params
