"""The daemon's warm state: compiled artifacts, sessions, verdict cache, dedup.

This module is why the server exists at all.  A cold ``repro-eqcheck check``
pays parse + def-use + ADDG extraction for both programs, an empty Presburger
operation cache and interpreter start-up on every invocation; the warm pool
amortises all of it across the daemon's lifetime:

* :class:`CompiledStore` — a process-wide LRU of
  :class:`~repro.verifier.session.CompiledProgram` values keyed by the
  SHA-256 of the raw source text, so a program seen by *any* request is
  parsed and extracted exactly once no matter which worker thread checks it;
* :class:`WarmVerifierPool` — a small ``ThreadPoolExecutor`` whose threads
  each own one long-lived (bounded) :class:`~repro.verifier.session.Verifier`
  session; all threads share the interpreter-wide Presburger operation cache
  (:mod:`repro.presburger.opcache`), the compiled store and the
  content-addressed verdict cache (:class:`~repro.service.cache.ResultCache`);
* :class:`JobDispatcher` — the asyncio front that coalesces concurrent
  identical requests: the first request for a ``(job fingerprint, effective
  timeout)`` key becomes the *leader* and actually executes; every duplicate
  that arrives while the leader is in flight awaits the same task and fans
  the verdict out at zero cost.  The key deliberately includes the timeout
  budget (the same rule :class:`~repro.service.executor.BatchExecutor`
  applies in-batch): a TIMEOUT outcome is budget-dependent, so a leader's
  timeout must never be fanned out to a duplicate running under a different
  budget.

Timeouts inside the pool go through the signal-free path of
:func:`repro.service.executor.call_with_timeout` — the worker threads are
never the main thread, so ``SIGALRM`` is not available there by construction.
"""

from __future__ import annotations

import asyncio
import hashlib
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..presburger import opcache
from ..service.cache import ResultCache
from ..service.executor import execute_job
from ..service.fingerprint import job_fingerprint
from ..service.job import JobResult, JobStatus, VerificationJob
from ..telemetry import METRICS, TRACER, request_scope
from ..verifier import CompiledProgram, Verifier
from ..lang import parse_program

__all__ = ["ServerStats", "CompiledStore", "WarmVerifierPool", "JobDispatcher"]


@dataclass
class ServerStats:
    """Authoritative lifetime counters of one daemon.

    Kept as plain integers (always on, unlike the opt-in
    :data:`repro.telemetry.METRICS` registry, which the pool mirrors into
    when enabled) so the ``stats`` RPC and the soak benchmark can always
    observe the server, telemetry flags or not.

    Counters are mutated from two places at once — the asyncio event loop
    (``requests``/``rejected``/``dedup_hits``/``errors``) and the pool's
    worker threads (``cache_hits``/``checks_executed``/``timeouts``/
    ``errors``) — so every update must go through :meth:`inc`, which takes
    the same one-lock-per-increment approach as
    :class:`repro.telemetry.metrics.Counter`.  Bare ``stats.field += 1``
    read-modify-writes can drop increments under thread preemption.
    """

    requests: int = 0
    checks_executed: int = 0
    dedup_hits: int = 0
    cache_hits: int = 0
    compile_hits: int = 0
    compile_misses: int = 0
    errors: int = 0
    timeouts: int = 0
    rejected: int = 0
    resets: int = 0
    started_at: float = field(default_factory=time.time)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def inc(self, name: str, amount: int = 1) -> None:
        """Atomically add *amount* to the counter *name*."""
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.checks_executed
        return self.cache_hits / total if total else 0.0

    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "requests": self.requests,
                "checks_executed": self.checks_executed,
                "dedup_hits": self.dedup_hits,
                "cache_hits": self.cache_hits,
                "cache_hit_rate": self.cache_hit_rate,
                "compile_hits": self.compile_hits,
                "compile_misses": self.compile_misses,
                "errors": self.errors,
                "timeouts": self.timeouts,
                "rejected": self.rejected,
                "resets": self.resets,
                "uptime_seconds": time.time() - self.started_at,
            }


class CompiledStore:
    """A bounded, thread-safe LRU of compiled frontend artifacts.

    Keys are the SHA-256 of the *raw* source text: computing the key never
    parses, so a hit skips the frontend entirely.  The stored
    :class:`CompiledProgram` values are shared across worker threads — their
    lazy ``addg`` / ``dataflow_issues`` properties may race benignly (two
    threads computing the same value; last write wins, both results are
    equal) but never corrupt, as each assigns a fully-built object.
    """

    def __init__(self, max_entries: int = 512):
        self.max_entries = max(1, int(max_entries))
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, CompiledProgram]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def key(source: str) -> str:
        return hashlib.sha256(source.encode("utf-8")).hexdigest()

    def get_or_compile(self, source: str) -> CompiledProgram:
        """The compiled form of *source*, parsing at most once per text."""
        key = self.key(source)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return cached
            self.misses += 1
        # Parse outside the lock: compilation is the expensive part and two
        # threads racing on the same new program is rarer than one thread
        # blocking every other on a big parse.
        started = time.perf_counter()
        compiled = CompiledProgram(parse_program(source), frontend_seconds=time.perf_counter() - started)
        with self._lock:
            winner = self._entries.setdefault(key, compiled)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
        return winner

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


class WarmVerifierPool:
    """Worker threads with long-lived sessions over shared warm state.

    Parameters
    ----------
    workers:
        Worker threads.  Checks are pure-Python CPU work, so more threads
        buy queueing fairness and timeout isolation rather than parallel
        speedup; 1–4 is the useful range.
    cache:
        The content-addressed verdict cache consulted before (and filled
        after) every executed check; ``None`` disables verdict caching.
    compiled_entries:
        Bound of the shared :class:`CompiledStore`.
    session_entries:
        Per-thread bound of each session's compile cache (belt on top of the
        shared store, for `Program`-identity keys).
    default_timeout:
        Wall-clock budget applied to jobs that carry none of their own.
    persist_dir:
        Directory of the persistent Presburger op-cache
        (:mod:`repro.presburger.persist`).  All worker threads share the
        process-wide opcache, so one attach here warms every session — and
        a daemon restart starts warm from disk instead of re-deriving the
        relation algebra cold.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: Optional[ResultCache] = None,
        compiled_entries: int = 512,
        session_entries: int = 64,
        default_timeout: Optional[float] = None,
        backend: Optional[str] = None,
        smt_solver: Optional[str] = None,
        persist_dir: Optional[str] = None,
    ):
        self.workers = max(1, int(workers))
        self.cache = cache
        self.compiled = CompiledStore(compiled_entries)
        self.session_entries = session_entries
        self.default_timeout = default_timeout
        self.backend = backend
        self.smt_solver = smt_solver
        self.persist_dir = persist_dir
        if persist_dir:
            from ..presburger import opcache

            opcache.attach_persistent(persist_dir)
        self.stats = ServerStats()
        self.solver_queries: Dict[str, int] = {}
        self._solver_lock = threading.Lock()
        self._threads = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="eqcheck-server"
        )
        self._local = threading.local()
        self._generation = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def _session(self) -> Verifier:
        """This worker thread's long-lived session (rebuilt after a reset)."""
        entry = getattr(self._local, "entry", None)
        if entry is None or entry[0] != self._generation:
            entry = (self._generation, Verifier(max_cache_entries=self.session_entries))
            self._local.entry = entry
        return entry[1]

    def prepare_job(self, job: VerificationJob) -> VerificationJob:
        """Apply the server's decision-backend default to *job*.

        A ``serve --backend`` override rewrites jobs that carry the default
        (``omega``) backend; a request that explicitly selected another
        backend keeps it.  The rewrite MUST happen before any
        :func:`~repro.service.fingerprint.job_fingerprint` computation —
        the backend participates in the fingerprint, so rewriting later
        would alias cache entries and dedup keys across backends.
        Idempotent, so both the dispatcher and :meth:`run_job` can call it.
        """
        if self.backend is None or job.options is None:
            return job
        if job.options.backend != "omega":
            return job
        options = job.options.replace(
            backend=self.backend,
            smt_solver=job.options.smt_solver or self.smt_solver,
        )
        return dataclasses.replace(job, options=options)

    def effective_timeout(self, job: VerificationJob, timeout: Optional[float]) -> Optional[float]:
        """The budget this job would actually run under (the dedup key part)."""
        if job.options is not None and job.options.timeout is not None:
            return job.options.timeout
        if timeout is not None:
            return timeout
        return self.default_timeout

    def run_job(
        self,
        job: VerificationJob,
        timeout: Optional[float] = None,
        collect_spans: bool = False,
        request_id: Optional[Any] = None,
        fingerprint: Optional[str] = None,
    ) -> JobResult:
        """Execute one job warm, synchronously, in the calling thread.

        Cache front first; a miss runs the check through this thread's
        session over the shared compiled store, with the job's effective
        budget enforced by the signal-free timeout path.  Designed to be
        called from the pool's worker threads (via :meth:`submit`) but safe
        from any thread, including the main one.

        *request_id* (the JSON-RPC id of the server request this job serves)
        is bound as the thread's request scope, so the ``verifier.check``
        root span — and any other request-aware instrumentation — tags
        itself with it.  With *collect_spans* the finished spans this thread
        recorded during the check are attached to the transient
        ``outcome.telemetry`` field, for the daemon to ship back to the
        client.  The collection filters by thread id rather than draining
        the tracer, so concurrent traced requests on other workers never
        steal (or lose) each other's spans.
        """
        job = self.prepare_job(job)
        if fingerprint is None:
            # Hashing a job is ~1 ms (two whole programs through SHA-256);
            # callers that already fingerprinted — the dispatcher does, for
            # its dedup key — pass it down instead of paying again.
            fingerprint = job_fingerprint(job)
        cached = self.cache.get(fingerprint) if self.cache is not None else None
        if cached is not None:
            self.stats.inc("cache_hits")
            METRICS.inc("server.cache_hits")
            return JobResult(
                name=job.name,
                status=JobStatus.OK,
                equivalent=cached.equivalent,
                expected_equivalent=job.expected_equivalent,
                elapsed_seconds=0.0,
                cache_hit=True,
                fingerprint=fingerprint,
                result=cached,
                metadata=dict(job.metadata),
            )

        def warm_run():
            session = self._session()
            with request_scope(request_id):
                original = self.compiled.get_or_compile(job.original_source)
                transformed = self.compiled.get_or_compile(job.transformed_source)
                return session.check(original, transformed, options=job.options)

        mark = TRACER.mark() if collect_spans and TRACER.enabled else None
        outcome = execute_job(
            job, self.effective_timeout(job, timeout), fingerprint, run=warm_run
        )
        if mark is not None:
            tid = threading.get_ident()
            outcome.telemetry = {
                "spans": [
                    record.to_dict()
                    for record in TRACER.records_since(mark)
                    if record.tid == tid
                ]
            }
        self.stats.inc("checks_executed")
        METRICS.inc("server.checks_executed")
        if outcome.status == JobStatus.TIMEOUT:
            self.stats.inc("timeouts")
            METRICS.inc("server.timeouts")
        elif outcome.status == JobStatus.ERROR:
            self.stats.inc("errors")
            METRICS.inc("server.check_errors")
        elif self.cache is not None and outcome.result is not None:
            try:
                self.cache.put(fingerprint, outcome.result)
            except OSError:
                self.cache.stats.store_errors += 1
        if outcome.result is not None and outcome.result.stats.solver_queries:
            with self._solver_lock:
                for kind, count in outcome.result.stats.solver_queries.items():
                    self.solver_queries[kind] = self.solver_queries.get(kind, 0) + count
        return outcome

    def submit(
        self,
        job: VerificationJob,
        timeout: Optional[float] = None,
        collect_spans: bool = False,
        request_id: Optional[Any] = None,
        fingerprint: Optional[str] = None,
    ):
        """Queue *job* on the worker threads; returns a concurrent future."""
        return self._threads.submit(
            self.run_job, job, timeout, collect_spans, request_id, fingerprint
        )

    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Drop every piece of warm state (verdict cache, artifacts, sessions).

        Existing worker threads lazily rebuild their sessions on the next
        job (generation check), so no thread coordination is needed; a check
        running concurrently with the reset keeps its old session for that
        one job, which is safe — sessions only cache frontend artifacts.
        """
        with self._lock:
            self._generation += 1
            self.compiled.clear()
            if self.cache is not None:
                self.cache.clear()
            self.stats.inc("resets")

    def snapshot(self) -> Dict[str, Any]:
        """The warm-state half of the ``stats`` RPC payload.

        Counters plus pool/session/compiled-store occupancy, verdict-cache
        hit rates, the process-wide Presburger opcache (memory + disk tier)
        and the accumulated per-kind solver-backend query counts.  The
        daemon layers its own serving-side fields on top — see
        :meth:`repro.server.daemon.VerificationServer.snapshot`.
        """
        self.stats.compile_hits = self.compiled.hits
        self.stats.compile_misses = self.compiled.misses
        payload = self.stats.as_dict()
        payload["compiled_store"] = self.compiled.stats()
        payload["verdict_cache"] = self.cache.stats.as_dict() if self.cache is not None else None
        payload["workers"] = self.workers
        payload["session_entries"] = self.session_entries
        payload["opcache"] = opcache.stats().as_dict()
        store = opcache.persistent_store()
        payload["persist"] = {
            "attached": store is not None,
            "path": getattr(store, "path", None),
            "disabled": bool(getattr(store, "disabled", False)) if store is not None else None,
        }
        with self._solver_lock:
            payload["solver_queries"] = dict(self.solver_queries)
        return payload

    def close(self) -> None:
        self._threads.shutdown(wait=True)


class JobDispatcher:
    """Cross-request dedup front over the pool (confined to one event loop).

    All bookkeeping happens on the server's event-loop thread, so the
    in-flight table needs no lock: the leader registers its task before the
    first ``await``, and every duplicate arriving until the task completes
    attaches to it.  Followers observe the leader's :class:`JobResult` and
    re-label it with their own job name / expectation / metadata.
    """

    def __init__(self, pool: WarmVerifierPool):
        self.pool = pool
        self._inflight: Dict[Tuple[str, Optional[float]], "asyncio.Task"] = {}

    @property
    def inflight(self) -> int:
        return len(self._inflight)

    async def run(
        self,
        job: VerificationJob,
        timeout: Optional[float] = None,
        collect_spans: bool = False,
        request_id: Optional[Any] = None,
        fingerprint: Optional[str] = None,
    ) -> JobResult:
        loop = asyncio.get_running_loop()
        job = self.pool.prepare_job(job)
        if fingerprint is None:
            fingerprint = job_fingerprint(job)
        key = (fingerprint, self.pool.effective_timeout(job, timeout))
        leader = self._inflight.get(key)
        if leader is not None:
            self.pool.stats.inc("dedup_hits")
            METRICS.inc("server.dedup_hits")
            # shield(): a follower whose client vanished must not cancel the
            # leader out from under every other waiter.
            outcome = await asyncio.shield(leader)
            return self._follower_result(job, outcome)

        async def lead() -> JobResult:
            return await asyncio.wrap_future(
                self.pool.submit(job, timeout, collect_spans, request_id, fingerprint)
            )

        task = loop.create_task(lead())
        self._inflight[key] = task
        task.add_done_callback(lambda _t: self._inflight.pop(key, None))
        return await asyncio.shield(task)

    @staticmethod
    def _follower_result(job: VerificationJob, outcome: JobResult) -> JobResult:
        # Mirrors the in-batch fan-out of BatchExecutor._record: the verdict
        # (or failure) is inherited at zero cost and not counted as a cache
        # hit, so dedup reuse never inflates the reported hit rate.
        return JobResult(
            name=job.name,
            status=outcome.status,
            equivalent=outcome.equivalent,
            expected_equivalent=job.expected_equivalent,
            elapsed_seconds=0.0,
            cache_hit=False,
            fingerprint=outcome.fingerprint,
            result=outcome.result,
            error=outcome.error,
            metadata={**job.metadata, "deduplicated": True},
        )
