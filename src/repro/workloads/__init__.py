"""Workloads: the paper's Fig. 1 example, DSP kernels, and a random generator."""

from .fig1 import (
    FIG1_SOURCES,
    fig1_program,
    fig1_original,
    fig1_ver1,
    fig1_ver2,
    fig1_ver3_erroneous,
)
from .generator import GeneratedPair, RandomProgramGenerator
from .kernels import KERNEL_REGISTRY, SMALL_KERNEL_PARAMS, KernelPair, kernel_names, kernel_pair

__all__ = [
    "FIG1_SOURCES",
    "GeneratedPair",
    "KERNEL_REGISTRY",
    "KernelPair",
    "SMALL_KERNEL_PARAMS",
    "RandomProgramGenerator",
    "fig1_original",
    "fig1_program",
    "fig1_ver1",
    "fig1_ver2",
    "fig1_ver3_erroneous",
    "kernel_names",
    "kernel_pair",
]
