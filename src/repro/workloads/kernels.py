"""Realistic signal-processing kernels with transformed variants.

The paper's experiments use "source codes whose control complexity and ADDG
sizes were comparable to real-life application kernels" (Section 6.2).  The
authors' kernels are not publicly available, so this module provides a suite
of published-textbook DSP kernels written in the allowed program class, each
paired with a hand-transformed variant obtained by the paper's transformation
set (expression propagation, loop transformations, algebraic transformations).

Every kernel pair is registered in :data:`KERNEL_REGISTRY`; the test-suite
verifies both that the checker proves each pair equivalent and that the
interpreter agrees on sampled inputs, and the timing benchmarks (EXPERIMENTS
E7/E8) measure the verification times over the suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from ..lang import Program, parse_program

__all__ = ["KernelPair", "KERNEL_REGISTRY", "SMALL_KERNEL_PARAMS", "kernel_names", "kernel_pair"]


@dataclass
class KernelPair:
    """An (original, transformed) kernel pair with metadata."""

    name: str
    description: str
    original: Program
    transformed: Program
    uses_algebraic: bool
    uses_recurrence: bool
    interpreter_size_hint: int = 16


# --------------------------------------------------------------------------- #
# 1. FIR filter (accumulation recurrence + algebraic commutation)
# --------------------------------------------------------------------------- #
def _fir(n: int = 64, taps: int = 8) -> KernelPair:
    original = f"""
#define N {n}
#define T {taps}
fir(int x[], int h[], int y[])
{{
    int i, t, acc[N][T];
    for(i=0; i<N; i++){{
f1:     acc[i][0] = h[0] * x[i];
        for(t=1; t<T; t++)
f2:         acc[i][t] = acc[i][t-1] + h[t] * x[i + t];
f3:     y[i] = acc[i][T-1];
    }}
}}
"""
    transformed = f"""
#define N {n}
#define T {taps}
fir(int x[], int h[], int y[])
{{
    int i, t, acc[N][T];
    for(i=N-1; i>=0; i--)
g1:     acc[i][0] = x[i] * h[0];
    for(i=0; i<N; i++)
        for(t=1; t<T; t++)
g2:         acc[i][t] = (x[i + t] * h[t]) + acc[i][t-1];
    for(i=0; i<N; i++)
g3:     y[i] = acc[i][T-1];
}}
"""
    return KernelPair(
        "fir",
        f"{taps}-tap FIR filter over {n} samples; transformed by loop fission, loop reversal "
        "and commutation of the accumulation operands",
        parse_program(original),
        parse_program(transformed),
        uses_algebraic=True,
        uses_recurrence=True,
        interpreter_size_hint=n,
    )


# --------------------------------------------------------------------------- #
# 2. 3x3 convolution (2-D arrays, associative reassociation, loop interchange)
# --------------------------------------------------------------------------- #
def _conv2d(rows: int = 16, cols: int = 16) -> KernelPair:
    original = f"""
#define R {rows}
#define C {cols}
conv2d(int img[R][C], int k[], int out[R][C])
{{
    int i, j;
    for(i=1; i<R-1; i++)
        for(j=1; j<C-1; j++)
c1:         out[i][j] = ((k[0]*img[i-1][j-1] + k[1]*img[i-1][j]) + k[2]*img[i-1][j+1])
                      + ((k[3]*img[i][j-1] + k[4]*img[i][j]) + k[5]*img[i][j+1])
                      + ((k[6]*img[i+1][j-1] + k[7]*img[i+1][j]) + k[8]*img[i+1][j+1]);
}}
"""
    transformed = f"""
#define R {rows}
#define C {cols}
conv2d(int img[R][C], int k[], int out[R][C])
{{
    int i, j, top[R][C], mid[R][C], bot[R][C];
    for(j=1; j<C-1; j++)
        for(i=1; i<R-1; i++){{
d1:         top[i][j] = k[2]*img[i-1][j+1] + (k[1]*img[i-1][j] + k[0]*img[i-1][j-1]);
d2:         mid[i][j] = k[5]*img[i][j+1] + (k[4]*img[i][j] + k[3]*img[i][j-1]);
d3:         bot[i][j] = k[8]*img[i+1][j+1] + (k[7]*img[i+1][j] + k[6]*img[i+1][j-1]);
        }}
    for(i=1; i<R-1; i++)
        for(j=1; j<C-1; j++)
d4:         out[i][j] = bot[i][j] + (mid[i][j] + top[i][j]);
}}
"""
    return KernelPair(
        "conv2d",
        f"3x3 convolution on a {rows}x{cols} image; transformed by loop interchange, expression "
        "propagation (introduction of per-row temporaries) and global reassociation/commutation "
        "of the 9-term sum",
        parse_program(original),
        parse_program(transformed),
        uses_algebraic=True,
        uses_recurrence=False,
        interpreter_size_hint=rows * cols,
    )


# --------------------------------------------------------------------------- #
# 3. Matrix-vector product (2-D recurrence, commuted products)
# --------------------------------------------------------------------------- #
def _matvec(rows: int = 24, cols: int = 12) -> KernelPair:
    original = f"""
#define R {rows}
#define M {cols}
matvec(int A[R][M], int x[], int y[])
{{
    int i, j, acc[R][M];
    for(i=0; i<R; i++){{
v1:     acc[i][0] = A[i][0] * x[0];
        for(j=1; j<M; j++)
v2:         acc[i][j] = acc[i][j-1] + A[i][j] * x[j];
v3:     y[i] = acc[i][M-1];
    }}
}}
"""
    transformed = f"""
#define R {rows}
#define M {cols}
matvec(int A[R][M], int x[], int y[])
{{
    int i, j, acc[R][M];
    for(i=0; i<R; i++)
w1:     acc[i][0] = x[0] * A[i][0];
    for(i=R-1; i>=0; i--)
        for(j=1; j<M; j++)
w2:         acc[i][j] = x[j] * A[i][j] + acc[i][j-1];
    for(i=0; i<R; i++)
w3:     y[i] = acc[i][M-1];
}}
"""
    return KernelPair(
        "matvec",
        f"{rows}x{cols} matrix-vector product with an explicit accumulation array; transformed "
        "by loop fission, loop reversal and commutation of products and sums",
        parse_program(original),
        parse_program(transformed),
        uses_algebraic=True,
        uses_recurrence=True,
        interpreter_size_hint=rows * cols,
    )


# --------------------------------------------------------------------------- #
# 4. Lifting wavelet step (strided accesses, non-commutative subtraction)
# --------------------------------------------------------------------------- #
def _wavelet(n: int = 128) -> KernelPair:
    original = f"""
#define N {n}
lift(int x[], int d[], int s[])
{{
    int i;
    for(i=0; i<N/2; i++)
l1:     d[i] = 2*x[2*i + 1] - x[2*i] - x[2*i + 2];
    for(i=0; i<N/2; i++)
l2:     s[i] = x[2*i] + d[i];
}}
"""
    half = n // 2
    quarter = n // 4
    transformed = f"""
#define N {n}
lift(int x[], int d[], int s[])
{{
    int i;
    for(i=0; i<{quarter}; i++)
m1:     d[i] = 2*x[2*i + 1] - x[2*i] - x[2*i + 2];
    for(i={quarter}; i<{half}; i++)
m2:     d[i] = 2*x[2*i + 1] - x[2*i] - x[2*i + 2];
    for(i={half}-1; i>=0; i--)
m3:     s[i] = d[i] + x[2*i];
}}
"""
    return KernelPair(
        "wavelet_lift",
        f"one lifting step of an integer wavelet over {n} samples (strided accesses); "
        "transformed by loop splitting, loop reversal and commutation of the update sum",
        parse_program(original),
        parse_program(transformed),
        uses_algebraic=True,
        uses_recurrence=False,
        interpreter_size_hint=n,
    )


# --------------------------------------------------------------------------- #
# 5. Sum-of-absolute-differences (uninterpreted function calls + recurrence)
# --------------------------------------------------------------------------- #
def _sad(blocks: int = 16, width: int = 4) -> KernelPair:
    original = f"""
#define B {blocks}
#define W {width}
sad(int cur[], int ref[], int out[])
{{
    int b, i, acc[B][W];
    for(b=0; b<B; b++){{
s1:     acc[b][0] = abs(cur[b*W] - ref[b*W]);
        for(i=1; i<W; i++)
s2:         acc[b][i] = acc[b][i-1] + abs(cur[b*W + i] - ref[b*W + i]);
s3:     out[b] = acc[b][W-1];
    }}
}}
"""
    transformed = f"""
#define B {blocks}
#define W {width}
sad(int cur[], int ref[], int out[])
{{
    int b, i, acc[B][W];
    for(b=B-1; b>=0; b--)
t1:     acc[b][0] = abs(cur[b*W] - ref[b*W]);
    for(b=0; b<B; b++)
        for(i=1; i<W; i++)
t2:         acc[b][i] = abs(cur[b*W + i] - ref[b*W + i]) + acc[b][i-1];
    for(b=0; b<B; b++)
t3:     out[b] = acc[b][W-1];
}}
"""
    return KernelPair(
        "sad",
        f"sum of absolute differences over {blocks} blocks of width {width} (motion-estimation "
        "style, uninterpreted abs()); transformed by loop fission, loop reversal and "
        "commutation of the accumulation",
        parse_program(original),
        parse_program(transformed),
        uses_algebraic=True,
        uses_recurrence=True,
        interpreter_size_hint=blocks * width,
    )


# --------------------------------------------------------------------------- #
# 6. Prefix sum (full-domain recurrence exercising the inductive assumption)
# --------------------------------------------------------------------------- #
def _prefix_sum(n: int = 64) -> KernelPair:
    original = f"""
#define N {n}
prefix(int x[], int y[])
{{
    int i, acc[N];
    for(i=0; i<N; i++){{
        if (i == 0)
p1:         acc[i] = x[0];
        else
p2:         acc[i] = acc[i-1] + x[i];
p3:     y[i] = acc[i];
    }}
}}
"""
    transformed = f"""
#define N {n}
prefix(int x[], int y[])
{{
    int i, acc[N];
    for(i=0; i<N; i++){{
        if (i == 0)
q1:         acc[i] = x[0];
        else
q2:         acc[i] = x[i] + acc[i-1];
    }}
    for(i=0; i<N; i++)
q3:     y[i] = acc[i];
}}
"""
    return KernelPair(
        "prefix_sum",
        f"prefix sum of {n} samples (loop-carried recurrence over the full output domain); "
        "transformed by loop fission and commutation of the accumulation",
        parse_program(original),
        parse_program(transformed),
        uses_algebraic=True,
        uses_recurrence=True,
        interpreter_size_hint=n,
    )


# --------------------------------------------------------------------------- #
# 7. Down-sampler (paper-style even/odd split without algebraic rewrites)
# --------------------------------------------------------------------------- #
def _downsample(n: int = 128) -> KernelPair:
    half = n // 2
    original = f"""
#define N {n}
down(int x[], int y[])
{{
    int i;
    for(i=0; i<N/2; i++)
h1:     y[i] = x[2*i] + x[2*i + 1];
}}
"""
    transformed = f"""
#define N {n}
down(int x[], int y[])
{{
    int i, even[N], odd[N];
    for(i={half}-1; i>=0; i--)
k1:     even[i] = x[2*i];
    for(i=0; i<{half}; i++)
k2:     odd[i] = x[2*i + 1];
    for(i=0; i<{half // 2}; i++)
k3:     y[i] = even[i] + odd[i];
    for(i={half // 2}; i<{half}; i++)
k4:     y[i] = even[i] + odd[i];
}}
"""
    return KernelPair(
        "downsample",
        f"pairwise down-sampler over {n} samples; transformed by introducing even/odd "
        "temporaries (expression propagation), loop reversal and loop splitting — verifiable "
        "with the basic method (no algebraic laws needed)",
        parse_program(original),
        parse_program(transformed),
        uses_algebraic=False,
        uses_recurrence=False,
        interpreter_size_hint=n,
    )


#: Registry of kernel-pair builders, keyed by kernel name.
KERNEL_REGISTRY: Dict[str, Callable[..., KernelPair]] = {
    "fir": _fir,
    "conv2d": _conv2d,
    "matvec": _matvec,
    "wavelet_lift": _wavelet,
    "sad": _sad,
    "prefix_sum": _prefix_sum,
    "downsample": _downsample,
}

#: Shrunken size parameters per kernel, for consumers that execute kernels
#: repeatedly (the scenario engine's interpreter oracle, mutation kill
#: tests).  The checker's work depends on the ADDG shape, not the domain
#: size, so these keep every kernel's structure while cutting interpreter
#: time by an order of magnitude.
SMALL_KERNEL_PARAMS: Dict[str, Dict[str, int]] = {
    "fir": {"n": 12, "taps": 4},
    "conv2d": {"rows": 6, "cols": 6},
    "matvec": {"rows": 8, "cols": 6},
    "wavelet_lift": {"n": 16},
    "sad": {"blocks": 6, "width": 4},
    "prefix_sum": {"n": 12},
    "downsample": {"n": 16},
}


def kernel_names() -> List[str]:
    """The names of all registered kernels."""
    return sorted(KERNEL_REGISTRY)


def kernel_pair(name: str, **params) -> KernelPair:
    """Build the named kernel pair (optionally overriding its size parameters)."""
    if name not in KERNEL_REGISTRY:
        raise KeyError(f"unknown kernel {name!r}; available: {', '.join(kernel_names())}")
    return KERNEL_REGISTRY[name](**params)
