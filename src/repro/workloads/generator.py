"""Random generation of programs in the allowed class and of transformed variants.

The scaling experiments of the paper (Section 6.2) report verification times
on codes "whose control complexity and ADDG sizes were comparable to real-life
application kernels".  To sweep ADDG sizes systematically, this module
generates random multi-stage array programs in the allowed class, then derives

* *equivalent* variants by applying random equivalence-preserving
  transformations (loop transformations, expression propagation, algebraic
  reassociation) with :mod:`repro.transforms`, and
* *inequivalent* variants by additionally injecting one random error with
  :mod:`repro.transforms.mutate`.

Generation is fully deterministic given the seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..lang import Program, ProgramBuilder
from ..lang.ast import ArrayRef, BinOp, Expr, IntConst, VarRef
from ..transforms import Mutation, TransformStep, apply_random_transforms, random_mutation
from ..transforms.errors import TransformError

__all__ = ["GeneratedPair", "RandomProgramGenerator"]


@dataclass
class GeneratedPair:
    """A generated (original, transformed) pair with its provenance."""

    original: Program
    transformed: Program
    steps: List[TransformStep] = field(default_factory=list)
    mutation: Optional[Mutation] = None
    seed: int = 0

    @property
    def expected_equivalent(self) -> bool:
        return self.mutation is None


class RandomProgramGenerator:
    """Generates random multi-stage array programs in the allowed class.

    Each *stage* defines a fresh intermediate array over the full problem
    domain ``[0, size)`` from affine reads of the inputs and of previously
    defined stages; the final stage defines the output array.  The index
    patterns used for intermediate reads are bijections of the domain
    (``k`` and ``size-1-k``) so that the generated programs always satisfy
    the single-assignment and def-use prerequisites by construction.
    """

    INPUT_NAMES = ("in0", "in1")

    def __init__(
        self,
        seed: int = 0,
        stages: int = 4,
        size: int = 64,
        operands_per_stage: Tuple[int, int] = (2, 3),
        multiply_probability: float = 0.25,
    ):
        self.seed = seed
        self.stages = max(1, stages)
        self.size = size
        self.operands_per_stage = operands_per_stage
        self.multiply_probability = multiply_probability

    # ------------------------------------------------------------------ #
    def generate(self) -> Program:
        """Generate the original program."""
        rng = random.Random(self.seed)
        size = self.size
        builder = ProgramBuilder(
            f"gen{self.seed}",
            params=[(name, [2 * size + 4]) for name in self.INPUT_NAMES] + [("out", [size])],
        )
        available: List[str] = list(self.INPUT_NAMES)
        stage_arrays: List[str] = []
        for stage in range(self.stages):
            is_last = stage == self.stages - 1
            array = "out" if is_last else f"tmp{stage}"
            if not is_last:
                builder.add_local(array, [size])
            iterator = "k"
            with builder.loop(iterator, 0, size):
                rhs = self._stage_expression(rng, available, iterator, size)
                builder.assign(f"g{stage}", builder.at(array, builder.v(iterator)), rhs)
            available.append(array)
            stage_arrays.append(array)
        return builder.build()

    def _stage_expression(
        self, rng: random.Random, available: Sequence[str], iterator: str, size: int
    ) -> Expr:
        low, high = self.operands_per_stage
        count = rng.randint(low, high)
        operands = [self._operand(rng, available, iterator, size) for _ in range(count)]
        # Always read the most recently defined array so that every stage
        # contributes to the output (keeps injected errors observable and the
        # data-flow chain non-trivial).
        if available[-1] not in self.INPUT_NAMES:
            operands[0] = self._operand(rng, [available[-1]], iterator, size)
        expression = operands[0]
        for operand in operands[1:]:
            op = "*" if rng.random() < self.multiply_probability else "+"
            if rng.getrandbits(1):
                expression = BinOp(op, expression, operand)
            else:
                expression = BinOp(op, operand, expression)
        return expression

    def _operand(
        self, rng: random.Random, available: Sequence[str], iterator: str, size: int
    ) -> Expr:
        source = rng.choice(list(available))
        k = VarRef(iterator)
        if source in self.INPUT_NAMES:
            pattern = rng.choice(["k", "2k", "k+c", "rev"])
        else:
            pattern = rng.choice(["k", "rev"])
        if pattern == "k":
            index: Expr = k
        elif pattern == "2k":
            index = BinOp("*", IntConst(2), k)
        elif pattern == "k+c":
            index = BinOp("+", k, IntConst(rng.randint(1, 4)))
        else:  # rev
            index = BinOp("-", IntConst(size - 1), k)
        return ArrayRef(source, [index])

    # ------------------------------------------------------------------ #
    def generate_pair(
        self,
        transform_steps: int = 3,
        allow_algebraic: bool = True,
        inject_error: bool = False,
    ) -> GeneratedPair:
        """Generate an (original, transformed) pair.

        With ``inject_error=True`` the transformed program additionally
        receives one random mutation, making the pair inequivalent.
        """
        rng = random.Random(self.seed * 7919 + 13)
        original = self.generate()
        transformed, steps = apply_random_transforms(
            original, rng, steps=transform_steps, allow_algebraic=allow_algebraic
        )
        mutation = None
        if inject_error:
            try:
                transformed, mutation = random_mutation(transformed, rng)
            except TransformError:
                # Extremely unlikely; fall back to mutating the original copy.
                transformed, mutation = random_mutation(original, rng)
        return GeneratedPair(original, transformed, steps, mutation, self.seed)

    def generate_variants(
        self,
        count: int,
        transform_steps: int = 3,
        allow_algebraic: bool = True,
    ) -> List[GeneratedPair]:
        """Generate *count* transformed variants of ONE original program.

        Every returned :class:`GeneratedPair` shares the same ``original``
        object (generated from this generator's seed); each variant applies
        an independent, deterministically seeded random transformation
        pipeline.  This is the many-variants-of-one-program shape that the
        verifier session API amortises: the shared original is compiled once
        and reused across all ``count`` checks.
        """
        original = self.generate()
        variants: List[GeneratedPair] = []
        for index in range(count):
            rng = random.Random(self.seed * 104729 + index * 31 + 7)
            transformed, steps = apply_random_transforms(
                original, rng, steps=transform_steps, allow_algebraic=allow_algebraic
            )
            variants.append(GeneratedPair(original, transformed, steps, None, self.seed))
        return variants
