"""The four program versions of Fig. 1 of the paper.

All four functions take input arrays ``A`` and ``B`` and produce the output
array ``C``.  Versions (a), (b) and (c) are input–output equivalent and
compute ``C[k] = B[2k] + B[k] + A[2k] + A[k]`` for all ``k in [0, N)``;
version (d) was obtained by an erroneous transformation and is inequivalent
to the others on every even ``k`` (where it computes
``A[k] + B[k] + A[k] + B[k]``) but equivalent on every odd ``k``.

The sources are kept verbatim (modulo whitespace) from the paper so that the
integration tests exercise exactly the published example.
"""

from __future__ import annotations

from typing import Dict

from ..lang import Program, parse_program

__all__ = [
    "FIG1_SOURCES",
    "fig1_program",
    "fig1_original",
    "fig1_ver1",
    "fig1_ver2",
    "fig1_ver3_erroneous",
]

N = 1024

_ORIGINAL = """
/* Original function */
#define N 1024
foo(int A[], int B[], int C[])
{
    int k, tmp[N], buf[2*N];
    for(k=0; k<N; k++)
s1:     tmp[k] = B[2*k] + B[k];
    for(k=N; k>=1; k--)
s2:     buf[2*k-2] = A[2*k-2] + A[k-1];
    for(k=0; k<N; k++)
s3:     C[k] = tmp[k] + buf[2*k];
}
"""

_VER1 = """
/* Transformed function ver 1 */
#define N 1024
foo(int A[], int B[], int C[])
{
    int k, tmp[N], buf[N];
    for(k=0; k<512; k++)
t1:     tmp[k] = B[2*k] + B[k];
    for(k=0; k<N; k++){
t2:     buf[k] = A[2*k] + A[k];
        if (k < 512)
t3:         C[k] = tmp[k] + buf[k];
        else
t4:         C[k] = (B[2*k] + B[k]) + buf[k];
    }
}
"""

_VER2 = """
/* Transformed function ver 2 */
#define N 1024
foo(int A[], int B[], int C[])
{
    int k, buf[2*N];
    for(k=0; k<N; k++)
u1:     buf[k] = A[k] + B[k];
    for(k=N; k<=2*N-2; k+=2)
u2:     buf[k] = A[k] + B[k];
    for(k=0; k<N; k++)
u3:     C[k] = buf[k] + buf[2*k];
}
"""

_VER3_ERRONEOUS = """
/* Transformed function ver 3 (erroneously obtained) */
#define N 1024
foo(int A[], int B[], int C[])
{
    int k, tmp[N], buf[2*N];
    for(k=0; k<=2*N-2; k+=2)
v1:     buf[k] = A[k] + B[k];
    for(k=1; k<N; k+=2)
v2:     tmp[k] = A[k] + B[k];
    for(k=0; k<N-1; k+=2){
v3:     C[k] = buf[k] + buf[k];
v4:     C[k+1] = tmp[k+1] + buf[2*k+2];
    }
}
"""

#: The mini-C sources of the four versions, keyed "a" .. "d" as in the paper.
FIG1_SOURCES: Dict[str, str] = {
    "a": _ORIGINAL,
    "b": _VER1,
    "c": _VER2,
    "d": _VER3_ERRONEOUS,
}


def fig1_program(version: str, n: int = N) -> Program:
    """Parse and return one of the Fig. 1 programs ("a", "b", "c" or "d").

    The problem size defaults to the paper's ``N = 1024`` but can be reduced
    (e.g. for interpreter-based cross-checks); ``n`` must be even and at
    least 4 so the even/odd and first/second-half splits stay meaningful.
    """
    if version not in FIG1_SOURCES:
        raise KeyError(f"unknown Fig. 1 version {version!r} (expected 'a'..'d')")
    if n % 2 != 0 or n < 4:
        raise ValueError("the Fig. 1 problem size must be an even number >= 4")
    source = FIG1_SOURCES[version]
    if n != N:
        source = source.replace("#define N 1024", f"#define N {n}")
        source = source.replace("k<512", f"k<{n // 2}").replace("k < 512", f"k < {n // 2}")
    return parse_program(source)


def fig1_original(n: int = N) -> Program:
    """The original function (a)."""
    return fig1_program("a", n)


def fig1_ver1(n: int = N) -> Program:
    """Transformed version 1 (b): expression propagation + loop transformations."""
    return fig1_program("b", n)


def fig1_ver2(n: int = N) -> Program:
    """Transformed version 2 (c): additionally algebraic transformations."""
    return fig1_program("c", n)


def fig1_ver3_erroneous(n: int = N) -> Program:
    """Transformed version 3 (d): erroneous — inequivalent on even output indices."""
    return fig1_program("d", n)
