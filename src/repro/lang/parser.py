"""Recursive-descent parser for the mini-C input language.

The accepted language is the program class of Section 3.1 of the paper:
functions over ``int`` arrays, ``#define`` constants, ``for`` loops with
affine bounds and constant steps, ``if``/``else`` with affine conditions,
and labelled single assignments to array elements.  The Fig. 1 programs of
the paper parse verbatim.

The entry point is :func:`parse_program`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .ast import (
    And,
    ArrayDecl,
    ArrayRef,
    Assignment,
    BinOp,
    Call,
    Comparison,
    Condition,
    Expr,
    ForLoop,
    IfThenElse,
    IntConst,
    Program,
    Statement,
    UnaryOp,
    VarRef,
)
from .errors import ParseSyntaxError
from .lexer import Token, TokenStream, tokenize

__all__ = ["parse_program"]


class _ProgramParser:
    def __init__(self, source: str):
        self.stream = TokenStream(tokenize(source))
        self.defines: Dict[str, int] = {}
        self.declared: Dict[str, ArrayDecl] = {}

    # ------------------------------------------------------------------ #
    # Driver
    # ------------------------------------------------------------------ #
    def parse(self) -> Program:
        self._parse_defines()
        program = self._parse_function()
        if not self.stream.at_end():
            token = self.stream.peek()
            raise ParseSyntaxError(f"line {token.line}: trailing input after function body")
        return program

    def _parse_defines(self) -> None:
        while self.stream.peek() is not None and self.stream.peek().text == "#":
            self.stream.expect("#")
            keyword = self.stream.next()
            if keyword.text != "define":
                raise ParseSyntaxError(f"line {keyword.line}: only #define directives are supported")
            name = self.stream.expect_kind("ident").text
            value = self._parse_constant_expression()
            self.defines[name] = value

    def _parse_constant_expression(self) -> int:
        expr = self._parse_expression()
        value = _evaluate_constant(expr)
        if value is None:
            raise ParseSyntaxError("#define value must be a constant expression")
        return value

    # ------------------------------------------------------------------ #
    # Function, parameters, declarations
    # ------------------------------------------------------------------ #
    def _parse_function(self) -> Program:
        # Optional return type.
        token = self.stream.peek()
        if token is not None and token.text in ("void", "int"):
            self.stream.next()
        name = self.stream.expect_kind("ident").text
        self.stream.expect("(")
        params: List[ArrayDecl] = []
        if not self.stream.accept(")"):
            while True:
                params.append(self._parse_parameter())
                if self.stream.accept(")"):
                    break
                self.stream.expect(",")
        self.stream.expect("{")
        locals_: List[ArrayDecl] = []
        for decl in params:
            self.declared[decl.name] = decl
        while self.stream.peek() is not None and self.stream.peek().text == "int":
            locals_.extend(self._parse_local_declaration())
        body = self._parse_statement_list()
        self.stream.expect("}")
        return Program(name, params, locals_, body, self.defines)

    def _parse_parameter(self) -> ArrayDecl:
        self.stream.expect("int")
        name = self.stream.expect_kind("ident").text
        dims: List[int] = []
        while self.stream.accept("["):
            if self.stream.accept("]"):
                dims.append(0)  # unsized leading dimension, e.g. int A[]
                continue
            size = _evaluate_constant(self._substitute_defines(self._parse_expression()))
            if size is None:
                raise ParseSyntaxError(f"array parameter {name!r} has a non-constant dimension")
            dims.append(size)
            self.stream.expect("]")
        return ArrayDecl(name, dims)

    def _parse_local_declaration(self) -> List[ArrayDecl]:
        self.stream.expect("int")
        declarations: List[ArrayDecl] = []
        while True:
            name = self.stream.expect_kind("ident").text
            dims: List[int] = []
            while self.stream.accept("["):
                size = _evaluate_constant(self._substitute_defines(self._parse_expression()))
                if size is None:
                    raise ParseSyntaxError(f"array {name!r} has a non-constant dimension")
                dims.append(size)
                self.stream.expect("]")
            declaration = ArrayDecl(name, dims)
            declarations.append(declaration)
            self.declared[name] = declaration
            if self.stream.accept(","):
                continue
            self.stream.expect(";")
            break
        return declarations

    # ------------------------------------------------------------------ #
    # Statements
    # ------------------------------------------------------------------ #
    def _parse_statement_list(self) -> List[Statement]:
        statements: List[Statement] = []
        while True:
            token = self.stream.peek()
            if token is None or token.text == "}":
                return statements
            statements.append(self._parse_statement())

    def _parse_statement(self) -> Statement:
        token = self.stream.peek()
        if token is None:
            raise ParseSyntaxError("unexpected end of input in statement")

        if token.text == "{":
            self.stream.expect("{")
            inner = self._parse_statement_list()
            self.stream.expect("}")
            if len(inner) == 1:
                return inner[0]
            # A bare block is flattened into its parent by callers that accept
            # statement lists; represent it as an if(true)-like wrapper is not
            # needed because blocks only appear as loop / if bodies.
            raise ParseSyntaxError(
                f"line {token.line}: a brace-enclosed block may only appear as a loop or if body"
            )

        if token.text == "for":
            return self._parse_for()

        if token.text == "if":
            return self._parse_if()

        # Labelled statement:  label ':' statement
        next_token = self.stream.peek(1)
        if token.kind == "ident" and next_token is not None and next_token.text == ":":
            label = self.stream.next().text
            self.stream.expect(":")
            statement = self._parse_statement()
            if isinstance(statement, Assignment):
                statement.label = statement.label or label
                return Assignment(label, statement.target, statement.rhs, token.line)
            raise ParseSyntaxError(f"line {token.line}: only assignments may carry a label")

        return self._parse_assignment()

    def _parse_body(self) -> List[Statement]:
        """A loop or if body: either a braced statement list or a single statement."""
        if self.stream.accept("{"):
            inner = self._parse_statement_list()
            self.stream.expect("}")
            return inner
        return [self._parse_statement()]

    def _parse_for(self) -> ForLoop:
        start = self.stream.expect("for")
        self.stream.expect("(")
        # init:  var = expr   (an optional 'int' is tolerated)
        self.stream.accept("int")
        var = self.stream.expect_kind("ident").text
        self.stream.expect("=")
        init = self._substitute_defines(self._parse_expression())
        self.stream.expect(";")
        # condition:  var <op> expr
        cond_var = self.stream.expect_kind("ident").text
        if cond_var != var:
            raise ParseSyntaxError(
                f"line {start.line}: loop condition must test the loop variable {var!r}"
            )
        op_token = self.stream.next()
        if op_token.text not in ("<", "<=", ">", ">="):
            raise ParseSyntaxError(f"line {op_token.line}: unsupported loop condition {op_token.text!r}")
        bound = self._substitute_defines(self._parse_expression())
        self.stream.expect(";")
        # increment
        step = self._parse_increment(var, start.line)
        self.stream.expect(")")
        body = self._parse_body()
        return ForLoop(var, init, op_token.text, bound, step, body, start.line)

    def _parse_increment(self, var: str, line: int) -> int:
        name = self.stream.expect_kind("ident").text
        if name != var:
            raise ParseSyntaxError(f"line {line}: loop increment must update the loop variable {var!r}")
        token = self.stream.next()
        if token.text == "++":
            return 1
        if token.text == "--":
            return -1
        if token.text in ("+=", "-="):
            value = _evaluate_constant(self._substitute_defines(self._parse_expression()))
            if value is None:
                raise ParseSyntaxError(f"line {line}: loop step must be a constant")
            return value if token.text == "+=" else -value
        if token.text == "=":
            # var = var + c   or   var = var - c
            source = self.stream.expect_kind("ident").text
            if source != var:
                raise ParseSyntaxError(f"line {line}: loop increment must be var = var +/- constant")
            sign_token = self.stream.next()
            if sign_token.text not in ("+", "-"):
                raise ParseSyntaxError(f"line {line}: loop increment must be var = var +/- constant")
            value = _evaluate_constant(self._substitute_defines(self._parse_expression()))
            if value is None:
                raise ParseSyntaxError(f"line {line}: loop step must be a constant")
            return value if sign_token.text == "+" else -value
        raise ParseSyntaxError(f"line {line}: unsupported loop increment")

    def _parse_if(self) -> IfThenElse:
        start = self.stream.expect("if")
        self.stream.expect("(")
        condition = self._parse_condition()
        self.stream.expect(")")
        then_body = self._parse_body()
        else_body: List[Statement] = []
        if self.stream.accept("else"):
            else_body = self._parse_body()
        return IfThenElse(condition, then_body, else_body, start.line)

    def _parse_condition(self) -> Condition:
        comparisons: List[Condition] = [self._parse_comparison()]
        while self.stream.accept("&&"):
            comparisons.append(self._parse_comparison())
        if len(comparisons) == 1:
            return comparisons[0]
        return And(comparisons)

    def _parse_comparison(self) -> Comparison:
        lhs = self._substitute_defines(self._parse_expression())
        token = self.stream.next()
        if token.text not in Comparison.VALID_OPS:
            raise ParseSyntaxError(f"line {token.line}: expected a comparison operator, found {token.text!r}")
        rhs = self._substitute_defines(self._parse_expression())
        return Comparison(token.text, lhs, rhs)

    def _parse_assignment(self) -> Assignment:
        token = self.stream.peek()
        target = self._parse_primary()
        if not isinstance(target, ArrayRef):
            raise ParseSyntaxError(
                f"line {token.line}: assignment targets must be array elements (explicit indexing)"
            )
        self.stream.expect("=")
        rhs = self._substitute_defines(self._parse_expression())
        self.stream.expect(";")
        target = _substitute_defines_expr(target, self.defines)
        return Assignment(None, target, rhs, token.line)

    # ------------------------------------------------------------------ #
    # Expressions
    # ------------------------------------------------------------------ #
    def _parse_expression(self) -> Expr:
        expr = self._parse_multiplicative()
        while True:
            if self.stream.accept("+"):
                expr = BinOp("+", expr, self._parse_multiplicative())
            elif self.stream.accept("-"):
                expr = BinOp("-", expr, self._parse_multiplicative())
            else:
                return expr

    def _parse_multiplicative(self) -> Expr:
        expr = self._parse_unary()
        while True:
            if self.stream.accept("*"):
                expr = BinOp("*", expr, self._parse_unary())
            elif self.stream.accept("/"):
                expr = BinOp("/", expr, self._parse_unary())
            elif self.stream.accept("%"):
                expr = BinOp("%", expr, self._parse_unary())
            else:
                return expr

    def _parse_unary(self) -> Expr:
        if self.stream.accept("-"):
            return UnaryOp("-", self._parse_unary())
        if self.stream.accept("+"):
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self.stream.next()
        if token.kind == "number":
            return IntConst(int(token.text))
        if token.text == "(":
            expr = self._parse_expression()
            self.stream.expect(")")
            return expr
        if token.kind == "ident":
            name = token.text
            nxt = self.stream.peek()
            if nxt is not None and nxt.text == "(":
                self.stream.expect("(")
                args: List[Expr] = []
                if not self.stream.accept(")"):
                    while True:
                        args.append(self._parse_expression())
                        if self.stream.accept(")"):
                            break
                        self.stream.expect(",")
                return Call(name, args)
            indices: List[Expr] = []
            while self.stream.peek() is not None and self.stream.peek().text == "[":
                self.stream.expect("[")
                indices.append(self._parse_expression())
                self.stream.expect("]")
            if indices:
                return ArrayRef(name, indices)
            if name in self.defines:
                return IntConst(self.defines[name])
            return VarRef(name)
        raise ParseSyntaxError(f"line {token.line}: unexpected token {token.text!r} in expression")

    def _substitute_defines(self, expr: Expr) -> Expr:
        return _substitute_defines_expr(expr, self.defines)


# --------------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------------- #
def _substitute_defines_expr(expr: Expr, defines: Dict[str, int]) -> Expr:
    from .ast import map_expr

    def transform(node: Expr) -> Expr:
        if isinstance(node, VarRef) and node.name in defines:
            return IntConst(defines[node.name])
        # Fold constant sub-expressions (e.g. "N/2", "2*N-2") so that loop
        # bounds and index expressions written in terms of #define constants
        # remain affine after substitution.
        if isinstance(node, (BinOp, UnaryOp)):
            folded = _evaluate_constant(node)
            if folded is not None:
                return IntConst(folded)
        return node

    return map_expr(expr, transform)


def _evaluate_constant(expr: Expr) -> Optional[int]:
    """Evaluate a constant expression, returning ``None`` if it is not constant."""
    if isinstance(expr, IntConst):
        return expr.value
    if isinstance(expr, UnaryOp) and expr.op == "-":
        value = _evaluate_constant(expr.operand)
        return None if value is None else -value
    if isinstance(expr, BinOp):
        lhs = _evaluate_constant(expr.lhs)
        rhs = _evaluate_constant(expr.rhs)
        if lhs is None or rhs is None:
            return None
        if expr.op == "+":
            return lhs + rhs
        if expr.op == "-":
            return lhs - rhs
        if expr.op == "*":
            return lhs * rhs
        if expr.op == "/":
            if rhs == 0:
                return None
            return lhs // rhs
        if expr.op == "%":
            if rhs == 0:
                return None
            return lhs % rhs
    return None


def parse_program(source: str) -> Program:
    """Parse a mini-C function definition into a :class:`~repro.lang.ast.Program`."""
    from ..telemetry import TRACER

    if not TRACER.enabled:
        return _ProgramParser(source).parse()
    with TRACER.span("frontend.parse_program", "frontend", chars=len(source)):
        with TRACER.span("frontend.lex", "frontend"):
            parser = _ProgramParser(source)
        with TRACER.span("frontend.parse", "frontend"):
            return parser.parse()
