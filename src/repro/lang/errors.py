"""Exceptions raised by the mini-C frontend."""


class LangError(Exception):
    """Base class for all frontend errors."""


class LexError(LangError):
    """Raised when the source text cannot be tokenized or a token is unexpected."""


class ParseSyntaxError(LangError):
    """Raised when the token stream does not form a valid program."""


class NotAffineError(LangError):
    """Raised when an expression required to be affine is not."""


class ProgramClassError(LangError):
    """Raised when a program falls outside the allowed program class (Section 3.1)."""


class InterpreterError(LangError):
    """Raised by the reference interpreter (e.g. reading an unwritten element).

    ``statement_label`` names the assignment being executed when the error
    occurred (``None`` when the failure happened outside any labelled
    statement, e.g. while evaluating a loop bound).  The label lets witness
    traces map a runtime failure back to its source statement.
    """

    def __init__(self, message: str, statement_label: "str | None" = None):
        super().__init__(message)
        self.statement_label = statement_label
