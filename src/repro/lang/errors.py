"""Exceptions raised by the mini-C frontend."""


class LangError(Exception):
    """Base class for all frontend errors."""


class LexError(LangError):
    """Raised when the source text cannot be tokenized or a token is unexpected."""


class ParseSyntaxError(LangError):
    """Raised when the token stream does not form a valid program."""


class NotAffineError(LangError):
    """Raised when an expression required to be affine is not."""


class ProgramClassError(LangError):
    """Raised when a program falls outside the allowed program class (Section 3.1)."""


class InterpreterError(LangError):
    """Raised by the reference interpreter (e.g. reading an unwritten element)."""
