"""Syntactic checks for the allowed program class (Section 3.1 of the paper).

The paper assumes that programs have been preprocessed into a class with
four properties: dynamic single-assignment form, static control flow, affine
index expressions, and no pointer references.  The *syntactic* parts of those
properties are checked here; the *geometric* parts (single assignment of
array elements, def-before-use) require dependence analysis and live in
:mod:`repro.analysis.dataflow`.

:func:`check_program_class` returns a list of human-readable issues (empty
when the program is in the class); :func:`require_program_class` raises
:class:`ProgramClassError` instead.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from .ast import (
    And,
    ArrayRef,
    Assignment,
    Comparison,
    Condition,
    Expr,
    ForLoop,
    IfThenElse,
    Program,
    Statement,
    VarRef,
    walk_expr,
)
from .affine import expr_to_affine
from .errors import NotAffineError, ProgramClassError

__all__ = ["check_program_class", "require_program_class"]


def check_program_class(program: Program) -> List[str]:
    """Return a list of violations of the allowed program class (empty if none)."""
    issues: List[str] = []
    declarations = program.declarations()
    seen_labels: Set[str] = set()

    def describe(statement: Statement) -> str:
        if isinstance(statement, Assignment) and statement.label:
            return f"statement {statement.label!r}"
        if statement.line is not None:
            return f"statement at line {statement.line}"
        return "statement"

    def check_affine(expr: Expr, iterators: Sequence[str], context: str) -> None:
        try:
            affine = expr_to_affine(expr)
        except NotAffineError as exc:
            issues.append(f"{context}: not affine ({exc})")
            return
        for variable in affine.variables():
            if variable not in iterators:
                issues.append(
                    f"{context}: refers to {variable!r} which is not an enclosing loop iterator"
                )

    def check_condition(condition: Condition, iterators: Sequence[str], context: str) -> None:
        if isinstance(condition, Comparison):
            check_affine(condition.lhs, iterators, context)
            check_affine(condition.rhs, iterators, context)
        elif isinstance(condition, And):
            for part in condition.parts:
                check_condition(part, iterators, context)
        else:
            issues.append(f"{context}: unsupported condition of type {type(condition).__name__}")

    def check_data_expr(expr: Expr, iterators: Sequence[str], context: str) -> None:
        for node in walk_expr(expr):
            if isinstance(node, ArrayRef):
                if node.name not in declarations:
                    issues.append(f"{context}: reference to undeclared array {node.name!r}")
                else:
                    declared = declarations[node.name]
                    if declared.dims and len(node.indices) != len(declared.dims):
                        issues.append(
                            f"{context}: {node.name!r} is {len(declared.dims)}-dimensional "
                            f"but indexed with {len(node.indices)} subscript(s)"
                        )
                for index in node.indices:
                    check_affine(index, iterators, f"{context}: index of {node.name!r}")
            elif isinstance(node, VarRef):
                if node.name not in iterators and node.name not in program.defines:
                    if node.name in declarations and declarations[node.name].is_scalar:
                        issues.append(
                            f"{context}: scalar {node.name!r} is read as data "
                            "(scalars may only be loop iterators in the allowed class)"
                        )
                    else:
                        issues.append(f"{context}: reference to unknown variable {node.name!r}")

    def visit(statements: Sequence[Statement], iterators: List[str]) -> None:
        for statement in statements:
            if isinstance(statement, Assignment):
                context = describe(statement)
                if statement.label is not None:
                    if statement.label in seen_labels:
                        issues.append(f"duplicate statement label {statement.label!r}")
                    seen_labels.add(statement.label)
                if statement.target.name not in declarations:
                    issues.append(f"{context}: assignment to undeclared array {statement.target.name!r}")
                if not statement.target.indices:
                    issues.append(f"{context}: assignment target must be an array element")
                for index in statement.target.indices:
                    check_affine(index, iterators, f"{context}: target index")
                check_data_expr(statement.rhs, iterators, context)
            elif isinstance(statement, ForLoop):
                context = describe(statement)
                check_affine(statement.init, iterators, f"{context}: loop lower bound")
                check_affine(statement.bound, iterators, f"{context}: loop bound")
                if statement.step == 0:
                    issues.append(f"{context}: loop step must be non-zero")
                if statement.var in iterators:
                    issues.append(f"{context}: loop variable {statement.var!r} shadows an outer iterator")
                visit(statement.body, iterators + [statement.var])
            elif isinstance(statement, IfThenElse):
                context = describe(statement)
                check_condition(statement.condition, iterators, f"{context}: if-condition")
                visit(statement.then_body, iterators)
                visit(statement.else_body, iterators)
            else:
                issues.append(f"unsupported statement of type {type(statement).__name__}")

    visit(program.body, [])
    return issues


def require_program_class(program: Program) -> None:
    """Raise :class:`ProgramClassError` when the program is outside the allowed class."""
    issues = check_program_class(program)
    if issues:
        details = "\n  - ".join(issues)
        raise ProgramClassError(
            f"program {program.name!r} is outside the allowed program class:\n  - {details}"
        )
