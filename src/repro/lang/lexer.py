"""Tokenizer for the mini-C input language.

Handles the subset of C used by the allowed program class: ``#define``
constants, function definitions over ``int`` arrays, ``for`` loops, ``if`` /
``else``, labelled assignment statements, and arithmetic expressions.  Both
``//`` line comments and ``/* */`` block comments are accepted.
"""

from __future__ import annotations

from typing import Iterator, List, NamedTuple, Optional

from .errors import LexError


class Token(NamedTuple):
    kind: str  # "ident", "number", "punct", "keyword", "directive"
    text: str
    line: int
    column: int


KEYWORDS = {"int", "void", "for", "if", "else", "return", "define"}

_PUNCTUATION = (
    "<<=", ">>=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "==", "!=", "<=", ">=",
    "{", "}", "(", ")", "[", "]", ";", ",", ":", "=", "<", ">", "+", "-", "*", "/", "%", "!", "#", "?",
)


def tokenize(source: str) -> List[Token]:
    """Tokenize *source*, returning a list of tokens (without whitespace/comments)."""
    tokens: List[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(source)

    def error(message: str) -> LexError:
        return LexError(f"line {line}: {message}")

    while index < length:
        char = source[index]

        if char == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if char.isspace():
            index += 1
            column += 1
            continue

        # Comments
        if source.startswith("//", index):
            end = source.find("\n", index)
            index = length if end == -1 else end
            continue
        if source.startswith("/*", index):
            end = source.find("*/", index + 2)
            if end == -1:
                raise error("unterminated block comment")
            line += source.count("\n", index, end)
            index = end + 2
            continue

        # Numbers
        if char.isdigit():
            start = index
            while index < length and source[index].isdigit():
                index += 1
            text = source[start:index]
            tokens.append(Token("number", text, line, column))
            column += len(text)
            continue

        # Identifiers / keywords
        if char.isalpha() or char == "_":
            start = index
            while index < length and (source[index].isalnum() or source[index] == "_"):
                index += 1
            text = source[start:index]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, column))
            column += len(text)
            continue

        # Punctuation (longest match first)
        for punct in _PUNCTUATION:
            if source.startswith(punct, index):
                tokens.append(Token("punct", punct, line, column))
                index += len(punct)
                column += len(punct)
                break
        else:
            raise error(f"unexpected character {char!r}")

    return tokens


class TokenStream:
    """A cursor over a token list with convenient expect/accept helpers."""

    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.index = 0

    def peek(self, offset: int = 0) -> Optional[Token]:
        position = self.index + offset
        if position < len(self.tokens):
            return self.tokens[position]
        return None

    def next(self) -> Token:
        token = self.peek()
        if token is None:
            raise LexError("unexpected end of input")
        self.index += 1
        return token

    def at_end(self) -> bool:
        return self.index >= len(self.tokens)

    def accept(self, text: str) -> Optional[Token]:
        token = self.peek()
        if token is not None and token.text == text:
            self.index += 1
            return token
        return None

    def accept_kind(self, kind: str) -> Optional[Token]:
        token = self.peek()
        if token is not None and token.kind == kind:
            self.index += 1
            return token
        return None

    def expect(self, text: str) -> Token:
        token = self.peek()
        if token is None:
            raise LexError(f"expected {text!r}, found end of input")
        if token.text != text:
            raise LexError(f"line {token.line}: expected {text!r}, found {token.text!r}")
        self.index += 1
        return token

    def expect_kind(self, kind: str) -> Token:
        token = self.peek()
        if token is None:
            raise LexError(f"expected {kind}, found end of input")
        if token.kind != kind:
            raise LexError(f"line {token.line}: expected {kind}, found {token.text!r}")
        self.index += 1
        return token
