"""The mini-C frontend: AST, parser, printer, validator, interpreter, builder.

The language is the allowed program class of Section 3.1 of the paper:
single-assignment functions over integer arrays with static affine control
flow and explicit indexing.  The Fig. 1 programs of the paper parse verbatim
with :func:`parse_program`.
"""

from .ast import (
    And,
    ArrayDecl,
    ArrayRef,
    Assignment,
    BinOp,
    Call,
    Comparison,
    Condition,
    Expr,
    ForLoop,
    IfThenElse,
    IntConst,
    Program,
    Statement,
    UnaryOp,
    VarRef,
    array_reads,
    map_expr,
    substitute_vars,
    walk_expr,
)
from .affine import (
    condition_to_pieces,
    expr_to_affine,
    loop_constraints,
    negated_condition_pieces,
)
from .builder import ProgramBuilder
from .errors import (
    InterpreterError,
    LangError,
    LexError,
    NotAffineError,
    ParseSyntaxError,
    ProgramClassError,
)
from .interpreter import (
    ExecutionTrace,
    outputs_equal,
    random_input_provider,
    run_program,
    run_program_traced,
)
from .parser import parse_program
from .printer import condition_to_text, expr_to_text, program_to_text, statement_to_text
from .validate import check_program_class, require_program_class

__all__ = [
    "And",
    "ArrayDecl",
    "ArrayRef",
    "Assignment",
    "BinOp",
    "Call",
    "Comparison",
    "Condition",
    "ExecutionTrace",
    "Expr",
    "ForLoop",
    "IfThenElse",
    "IntConst",
    "InterpreterError",
    "LangError",
    "LexError",
    "NotAffineError",
    "ParseSyntaxError",
    "Program",
    "ProgramBuilder",
    "ProgramClassError",
    "Statement",
    "UnaryOp",
    "VarRef",
    "array_reads",
    "check_program_class",
    "condition_to_pieces",
    "condition_to_text",
    "expr_to_affine",
    "expr_to_text",
    "loop_constraints",
    "map_expr",
    "negated_condition_pieces",
    "outputs_equal",
    "parse_program",
    "program_to_text",
    "random_input_provider",
    "require_program_class",
    "run_program",
    "run_program_traced",
    "statement_to_text",
    "substitute_vars",
    "walk_expr",
]
