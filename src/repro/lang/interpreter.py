"""Reference interpreter (executable semantics) for the mini-C AST.

The interpreter provides the ground truth that the equivalence checker's
verdicts are cross-validated against in the test-suite: two programs that the
checker declares equivalent must produce identical outputs for any common
input, and a reported inequivalence must be witnessed by some input (the
Fig. 1(d) error, for instance, shows up on every even output index).

Arrays are represented sparsely as ``dict`` objects keyed by index tuples so
that reads of never-written elements are detected.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from .ast import (
    And,
    ArrayRef,
    Assignment,
    BinOp,
    Call,
    Comparison,
    Condition,
    Expr,
    ForLoop,
    IfThenElse,
    IntConst,
    Program,
    Statement,
    UnaryOp,
    VarRef,
)
from .errors import InterpreterError

__all__ = [
    "ExecutionTrace",
    "run_program",
    "run_program_traced",
    "random_input_provider",
    "outputs_equal",
    "InputProvider",
]

InputProvider = Callable[[str, Tuple[int, ...]], int]


class ExecutionTrace:
    """Per-cell provenance of one interpreter run.

    ``writers`` maps ``array -> index tuple -> statement label`` for every
    element written by a labelled assignment during the run.  In the allowed
    (single-assignment) program class each cell has exactly one writer, so
    the trace answers "which statement produced this value?" — the question
    witness replay needs when mapping a diverging output cell back to source.
    """

    __slots__ = ("writers",)

    def __init__(self) -> None:
        self.writers: Dict[str, Dict[Tuple[int, ...], str]] = {}

    def record(self, array: str, index: Tuple[int, ...], label: str) -> None:
        self.writers.setdefault(array, {})[index] = label

    def writer_of(self, array: str, index: Sequence[int]) -> Optional[str]:
        """The label of the statement that wrote ``array[index]`` (or ``None``)."""
        return self.writers.get(array, {}).get(tuple(int(i) for i in index))


_DEFAULT_FUNCTIONS: Dict[str, Callable[..., int]] = {
    "abs": lambda x: abs(x),
    "min": lambda a, b: min(a, b),
    "max": lambda a, b: max(a, b),
    "min3": lambda a, b, c: min(a, b, c),
    "sq": lambda x: x * x,
    "clip": lambda x, lo, hi: max(lo, min(hi, x)),
}


def random_input_provider(seed: int = 0, low: int = -100, high: int = 100) -> InputProvider:
    """A deterministic pseudo-random input provider.

    The value of element ``A[i, j]`` depends only on the array name, the index
    tuple and the seed, so two programs reading the same abstract input see
    exactly the same values regardless of their access order.
    """

    span = high - low + 1

    def provider(name: str, index: Tuple[int, ...]) -> int:
        key = f"{seed}:{name}:{','.join(str(i) for i in index)}".encode()
        digest = hashlib.sha256(key).digest()
        return low + int.from_bytes(digest[:4], "little") % span

    return provider


class _Machine:
    def __init__(
        self,
        program: Program,
        inputs: Union[Mapping[str, object], InputProvider],
        functions: Optional[Mapping[str, Callable[..., int]]] = None,
        check_single_assignment: bool = False,
        trace: Optional[ExecutionTrace] = None,
    ):
        self.program = program
        self.trace = trace
        self.functions = dict(_DEFAULT_FUNCTIONS)
        if functions:
            self.functions.update(functions)
        self.check_single_assignment = check_single_assignment
        self.scalars: Dict[str, int] = {}
        self.arrays: Dict[str, Dict[Tuple[int, ...], int]] = {}
        self.input_names = set(program.input_arrays())
        self.output_names = set(program.output_arrays())

        for name in program.declarations():
            self.arrays[name] = {}

        if callable(inputs) and not isinstance(inputs, Mapping):
            self.input_provider: Optional[InputProvider] = inputs
        else:
            self.input_provider = None
            for name, data in dict(inputs).items():
                self.arrays.setdefault(name, {})
                self.arrays[name].update(_flatten_array(name, data))

    # ------------------------------------------------------------------ #
    def run(self) -> Dict[str, Dict[Tuple[int, ...], int]]:
        for statement in self.program.body:
            self._execute(statement)
        return {name: dict(self.arrays[name]) for name in self.output_names}

    # ------------------------------------------------------------------ #
    def _execute(self, statement: Statement) -> None:
        if isinstance(statement, Assignment):
            try:
                indices = tuple(self._eval(index) for index in statement.target.indices)
                value = self._eval(statement.rhs)
            except InterpreterError as error:
                # Attribute the failure to the statement being executed; the
                # innermost labelled assignment wins (errors re-raised here
                # already carry their label and pass through unchanged).
                if error.statement_label is None and statement.label:
                    raise InterpreterError(
                        f"{error} (at statement {statement.label})",
                        statement_label=statement.label,
                    ) from None
                raise
            target = self.arrays.setdefault(statement.target.name, {})
            if self.check_single_assignment and indices in target:
                raise InterpreterError(
                    f"single-assignment violation: {statement.target.name}{list(indices)} written twice",
                    statement_label=statement.label,
                )
            target[indices] = value
            if self.trace is not None and statement.label:
                self.trace.record(statement.target.name, indices, statement.label)
            return
        if isinstance(statement, ForLoop):
            value = self._eval(statement.init)
            while self._loop_condition_holds(value, statement):
                self.scalars[statement.var] = value
                for child in statement.body:
                    self._execute(child)
                value += statement.step
                # The loop variable stays bound while the condition (whose
                # bound may reference outer iterators) is re-evaluated.
            self.scalars.pop(statement.var, None)
            return
        if isinstance(statement, IfThenElse):
            if self._eval_condition(statement.condition):
                for child in statement.then_body:
                    self._execute(child)
            else:
                for child in statement.else_body:
                    self._execute(child)
            return
        raise InterpreterError(f"cannot execute statement of type {type(statement).__name__}")

    def _loop_condition_holds(self, value: int, loop: ForLoop) -> bool:
        bound = self._eval(loop.bound)
        return {
            "<": value < bound,
            "<=": value <= bound,
            ">": value > bound,
            ">=": value >= bound,
        }[loop.cond_op]

    def _eval_condition(self, condition: Condition) -> bool:
        if isinstance(condition, Comparison):
            lhs = self._eval(condition.lhs)
            rhs = self._eval(condition.rhs)
            return {
                "<": lhs < rhs,
                "<=": lhs <= rhs,
                ">": lhs > rhs,
                ">=": lhs >= rhs,
                "==": lhs == rhs,
                "!=": lhs != rhs,
            }[condition.op]
        if isinstance(condition, And):
            return all(self._eval_condition(part) for part in condition.parts)
        raise InterpreterError(f"cannot evaluate condition of type {type(condition).__name__}")

    # ------------------------------------------------------------------ #
    def _eval(self, expr: Expr) -> int:
        if isinstance(expr, IntConst):
            return expr.value
        if isinstance(expr, VarRef):
            if expr.name in self.scalars:
                return self.scalars[expr.name]
            raise InterpreterError(f"read of undefined scalar {expr.name!r}")
        if isinstance(expr, ArrayRef):
            indices = tuple(self._eval(index) for index in expr.indices)
            return self._read_array(expr.name, indices)
        if isinstance(expr, UnaryOp):
            value = self._eval(expr.operand)
            if expr.op == "-":
                return -value
            raise InterpreterError(f"unsupported unary operator {expr.op!r}")
        if isinstance(expr, BinOp):
            lhs = self._eval(expr.lhs)
            rhs = self._eval(expr.rhs)
            if expr.op == "+":
                return lhs + rhs
            if expr.op == "-":
                return lhs - rhs
            if expr.op == "*":
                return lhs * rhs
            if expr.op == "/":
                if rhs == 0:
                    raise InterpreterError("division by zero")
                quotient = abs(lhs) // abs(rhs)
                return quotient if (lhs >= 0) == (rhs >= 0) else -quotient
            if expr.op == "%":
                if rhs == 0:
                    raise InterpreterError("modulo by zero")
                return lhs - rhs * (abs(lhs) // abs(rhs) if (lhs >= 0) == (rhs >= 0) else -(abs(lhs) // abs(rhs)))
            raise InterpreterError(f"unsupported binary operator {expr.op!r}")
        if isinstance(expr, Call):
            if expr.func not in self.functions:
                raise InterpreterError(f"call of unknown function {expr.func!r}")
            return int(self.functions[expr.func](*(self._eval(arg) for arg in expr.args)))
        raise InterpreterError(f"cannot evaluate expression of type {type(expr).__name__}")

    def _read_array(self, name: str, indices: Tuple[int, ...]) -> int:
        storage = self.arrays.setdefault(name, {})
        if indices in storage:
            return storage[indices]
        if name in self.input_names and self.input_provider is not None:
            value = int(self.input_provider(name, indices))
            storage[indices] = value
            return value
        raise InterpreterError(f"read of undefined element {name}{list(indices)}")


def _flatten_array(name: str, data: object, prefix: Tuple[int, ...] = ()) -> Dict[Tuple[int, ...], int]:
    result: Dict[Tuple[int, ...], int] = {}
    if isinstance(data, Mapping):
        for key, value in data.items():
            index = key if isinstance(key, tuple) else (key,)
            result[tuple(int(i) for i in index)] = int(value)
        return result
    if isinstance(data, (list, tuple)):
        for position, item in enumerate(data):
            if isinstance(item, (list, tuple)):
                result.update(_flatten_array(name, item, prefix + (position,)))
            else:
                result[prefix + (position,)] = int(item)
        return result
    raise InterpreterError(f"cannot interpret input data for array {name!r}")


def run_program(
    program: Program,
    inputs: Union[Mapping[str, object], InputProvider],
    functions: Optional[Mapping[str, Callable[..., int]]] = None,
    check_single_assignment: bool = False,
) -> Dict[str, Dict[Tuple[int, ...], int]]:
    """Execute *program* and return its output arrays (sparse dictionaries).

    ``inputs`` is either a mapping from input array names to (nested) lists /
    dicts of values, or an :data:`InputProvider` callable such as the one
    returned by :func:`random_input_provider`.
    """
    machine = _Machine(program, inputs, functions, check_single_assignment)
    return machine.run()


def run_program_traced(
    program: Program,
    inputs: Union[Mapping[str, object], InputProvider],
    functions: Optional[Mapping[str, Callable[..., int]]] = None,
    check_single_assignment: bool = False,
) -> Tuple[Dict[str, Dict[Tuple[int, ...], int]], ExecutionTrace]:
    """Like :func:`run_program`, additionally returning an :class:`ExecutionTrace`.

    The trace records, for every written array element, the label of the
    assignment that produced it; :mod:`repro.diagnostics` uses it to map a
    diverging output cell of a witness replay back to the source statement.
    """
    trace = ExecutionTrace()
    machine = _Machine(program, inputs, functions, check_single_assignment, trace=trace)
    return machine.run(), trace


def outputs_equal(
    first: Mapping[str, Mapping[Tuple[int, ...], int]],
    second: Mapping[str, Mapping[Tuple[int, ...], int]],
) -> bool:
    """True when two output environments define the same elements with the same values."""
    if set(first) != set(second):
        return False
    for name in first:
        if dict(first[name]) != dict(second[name]):
            return False
    return True
