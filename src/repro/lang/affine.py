"""Bridging the AST's affine fragment to the Presburger library.

Index expressions, loop bounds and ``if`` conditions of the allowed program
class are (piece-wise) affine in the enclosing loop iterators.  This module
converts them to :class:`~repro.presburger.linexpr.LinExpr` values and
constraint lists so that the geometric analyses can build iteration domains
and access maps.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..presburger import AffineConstraint, LinExpr, eq_, ge_, gt_, le_, lt_
from .ast import (
    And,
    ArrayRef,
    BinOp,
    Call,
    Comparison,
    Condition,
    Expr,
    IntConst,
    UnaryOp,
    VarRef,
)
from .errors import NotAffineError

__all__ = [
    "expr_to_affine",
    "comparison_to_constraints",
    "condition_to_pieces",
    "negated_condition_pieces",
    "loop_constraints",
]


def expr_to_affine(expr: Expr, constants: Optional[Dict[str, int]] = None) -> LinExpr:
    """Convert an AST expression to an affine :class:`LinExpr`.

    Scalar variable references become affine variables; ``#define`` constants
    can be supplied through *constants*.  Raises :class:`NotAffineError` when
    the expression involves array reads, calls, division, or non-linear
    products.
    """
    constants = constants or {}
    if isinstance(expr, IntConst):
        return LinExpr.constant(expr.value)
    if isinstance(expr, VarRef):
        if expr.name in constants:
            return LinExpr.constant(constants[expr.name])
        return LinExpr.var(expr.name)
    if isinstance(expr, UnaryOp) and expr.op == "-":
        return -expr_to_affine(expr.operand, constants)
    if isinstance(expr, BinOp):
        if expr.op == "+":
            return expr_to_affine(expr.lhs, constants) + expr_to_affine(expr.rhs, constants)
        if expr.op == "-":
            return expr_to_affine(expr.lhs, constants) - expr_to_affine(expr.rhs, constants)
        if expr.op == "*":
            lhs = expr_to_affine(expr.lhs, constants)
            rhs = expr_to_affine(expr.rhs, constants)
            if lhs.is_constant():
                return rhs * lhs.const
            if rhs.is_constant():
                return lhs * rhs.const
            raise NotAffineError(f"non-linear product in affine context: {expr!r}")
        raise NotAffineError(f"operator {expr.op!r} is not affine")
    if isinstance(expr, (ArrayRef, Call)):
        raise NotAffineError(f"{type(expr).__name__} is not allowed in an affine context: {expr!r}")
    raise NotAffineError(f"cannot convert {expr!r} to an affine expression")


def comparison_to_constraints(
    comparison: Comparison, constants: Optional[Dict[str, int]] = None
) -> List[List[AffineConstraint]]:
    """Lower a comparison to a disjunction (list) of conjunctions (inner lists)."""
    lhs = expr_to_affine(comparison.lhs, constants)
    rhs = expr_to_affine(comparison.rhs, constants)
    if comparison.op == "<":
        return [[lt_(lhs, rhs)]]
    if comparison.op == "<=":
        return [[le_(lhs, rhs)]]
    if comparison.op == ">":
        return [[gt_(lhs, rhs)]]
    if comparison.op == ">=":
        return [[ge_(lhs, rhs)]]
    if comparison.op == "==":
        return [[eq_(lhs, rhs)]]
    if comparison.op == "!=":
        return [[lt_(lhs, rhs)], [gt_(lhs, rhs)]]
    raise ValueError(f"unknown comparison operator {comparison.op!r}")


def condition_to_pieces(
    condition: Condition, constants: Optional[Dict[str, int]] = None
) -> List[List[AffineConstraint]]:
    """Lower a condition to disjunctive normal form over affine constraints."""
    if isinstance(condition, Comparison):
        return comparison_to_constraints(condition, constants)
    if isinstance(condition, And):
        pieces: List[List[AffineConstraint]] = [[]]
        for part in condition.parts:
            part_pieces = condition_to_pieces(part, constants)
            pieces = [existing + new for existing in pieces for new in part_pieces]
        return pieces
    raise TypeError(f"unsupported condition node {type(condition).__name__}")


def negated_condition_pieces(
    condition: Condition, constants: Optional[Dict[str, int]] = None
) -> List[List[AffineConstraint]]:
    """DNF of the *negation* of a condition (used for ``else`` branches)."""
    if isinstance(condition, Comparison):
        return comparison_to_constraints(condition.negated(), constants)
    if isinstance(condition, And):
        # not (a and b and ...)  =  (not a) or (a and not b) or ...
        pieces: List[List[AffineConstraint]] = []
        prefix: List[List[AffineConstraint]] = [[]]
        for part in condition.parts:
            negated = negated_condition_pieces(part, constants)
            pieces.extend(
                existing + negative for existing in prefix for negative in negated
            )
            positive = condition_to_pieces(part, constants)
            prefix = [existing + pos for existing in prefix for pos in positive]
        return pieces
    raise TypeError(f"unsupported condition node {type(condition).__name__}")


def loop_constraints(
    var: str,
    init: Expr,
    cond_op: str,
    bound: Expr,
    step: int,
    constants: Optional[Dict[str, int]] = None,
) -> Tuple[List[AffineConstraint], List[str]]:
    """Constraints describing the iteration values of a ``for`` loop.

    Returns ``(constraints, existentials)``.  For unit steps the constraints
    involve only the loop variable and the bounds; for larger steps a fresh
    existential trip-count variable ``__t_<var>`` expresses the stride:
    ``var = init + step * t  and  t >= 0``.
    """
    init_expr = expr_to_affine(init, constants)
    bound_expr = expr_to_affine(bound, constants)
    variable = LinExpr.var(var)
    constraints: List[AffineConstraint] = []
    existentials: List[str] = []

    if cond_op == "<":
        constraints.append(lt_(variable, bound_expr))
    elif cond_op == "<=":
        constraints.append(le_(variable, bound_expr))
    elif cond_op == ">":
        constraints.append(gt_(variable, bound_expr))
    elif cond_op == ">=":
        constraints.append(ge_(variable, bound_expr))
    else:
        raise ValueError(f"unsupported loop condition operator {cond_op!r}")

    if step > 0:
        constraints.append(ge_(variable, init_expr))
    else:
        constraints.append(le_(variable, init_expr))

    if abs(step) != 1:
        trip = f"__t_{var}"
        existentials.append(trip)
        constraints.append(eq_(variable, init_expr + step * LinExpr.var(trip)))
        constraints.append(ge_(LinExpr.var(trip), 0))

    return constraints, existentials
