"""Pretty-printer: regenerate mini-C source text from the AST.

The printer is the inverse of :func:`repro.lang.parser.parse_program` (up to
whitespace and ``#define`` folding): ``parse_program(program_to_text(p))``
yields a program equal to ``p``.  It is used by the transformation engine to
emit transformed source and by the examples and diagnostics to show code to
the user.
"""

from __future__ import annotations

from typing import List

from .ast import (
    And,
    ArrayRef,
    Assignment,
    BinOp,
    Call,
    Comparison,
    Condition,
    Expr,
    ForLoop,
    IfThenElse,
    IntConst,
    Program,
    Statement,
    UnaryOp,
    VarRef,
)

__all__ = ["program_to_text", "statement_to_text", "expr_to_text", "condition_to_text"]

_PRECEDENCE = {"+": 1, "-": 1, "*": 2, "/": 2, "%": 2}


def expr_to_text(expr: Expr, parent_precedence: int = 0) -> str:
    """Render an expression as C source text."""
    if isinstance(expr, IntConst):
        return str(expr.value)
    if isinstance(expr, VarRef):
        return expr.name
    if isinstance(expr, ArrayRef):
        return expr.name + "".join(f"[{expr_to_text(index)}]" for index in expr.indices)
    if isinstance(expr, Call):
        return f"{expr.func}({', '.join(expr_to_text(arg) for arg in expr.args)})"
    if isinstance(expr, UnaryOp):
        inner = expr_to_text(expr.operand, 3)
        return f"{expr.op}{inner}"
    if isinstance(expr, BinOp):
        precedence = _PRECEDENCE.get(expr.op, 1)
        left = expr_to_text(expr.lhs, precedence)
        right = expr_to_text(expr.rhs, precedence + 1)
        text = f"{left} {expr.op} {right}"
        if precedence < parent_precedence:
            return f"({text})"
        return text
    raise TypeError(f"cannot print expression of type {type(expr).__name__}")


def condition_to_text(condition: Condition) -> str:
    """Render an affine condition as C source text."""
    if isinstance(condition, Comparison):
        return f"{expr_to_text(condition.lhs)} {condition.op} {expr_to_text(condition.rhs)}"
    if isinstance(condition, And):
        return " && ".join(condition_to_text(part) for part in condition.parts)
    raise TypeError(f"cannot print condition of type {type(condition).__name__}")


def statement_to_text(statement: Statement, indent: int = 0) -> str:
    """Render a statement (and its body) as C source text."""
    pad = "    " * indent
    if isinstance(statement, Assignment):
        label = f"{statement.label}: " if statement.label else ""
        return f"{pad}{label}{expr_to_text(statement.target)} = {expr_to_text(statement.rhs)};\n"
    if isinstance(statement, ForLoop):
        step = statement.step
        if step == 1:
            increment = f"{statement.var}++"
        elif step == -1:
            increment = f"{statement.var}--"
        elif step > 0:
            increment = f"{statement.var} += {step}"
        else:
            increment = f"{statement.var} -= {-step}"
        header = (
            f"{pad}for ({statement.var} = {expr_to_text(statement.init)}; "
            f"{statement.var} {statement.cond_op} {expr_to_text(statement.bound)}; {increment}) {{\n"
        )
        body = "".join(statement_to_text(child, indent + 1) for child in statement.body)
        return header + body + f"{pad}}}\n"
    if isinstance(statement, IfThenElse):
        header = f"{pad}if ({condition_to_text(statement.condition)}) {{\n"
        then_body = "".join(statement_to_text(child, indent + 1) for child in statement.then_body)
        text = header + then_body + f"{pad}}}\n"
        if statement.else_body:
            text = text[:-1] + " else {\n"
            text += "".join(statement_to_text(child, indent + 1) for child in statement.else_body)
            text += f"{pad}}}\n"
        return text
    raise TypeError(f"cannot print statement of type {type(statement).__name__}")


def program_to_text(program: Program) -> str:
    """Render a whole program as compilable mini-C source text."""
    lines: List[str] = []
    for name, value in program.defines.items():
        lines.append(f"#define {name} {value}")
    if program.defines:
        lines.append("")
    params = []
    for decl in program.params:
        dims = "".join("[]" if extent == 0 else f"[{extent}]" for extent in decl.dims) or "[]"
        params.append(f"int {decl.name}{dims}")
    lines.append(f"void {program.name}({', '.join(params)})")
    lines.append("{")
    scalars = [decl.name for decl in program.locals if decl.is_scalar]
    arrays = [decl for decl in program.locals if not decl.is_scalar]
    declaration_parts = list(scalars) + [
        decl.name + "".join(f"[{extent}]" for extent in decl.dims) for decl in arrays
    ]
    if declaration_parts:
        lines.append(f"    int {', '.join(declaration_parts)};")
    body = "".join(statement_to_text(statement, 1) for statement in program.body)
    lines.append(body.rstrip("\n"))
    lines.append("}")
    return "\n".join(lines) + "\n"
