"""A small Python DSL for constructing programs programmatically.

The workload generator and several tests construct programs directly rather
than going through C source text.  :class:`ProgramBuilder` provides a compact
way to do that::

    from repro.lang import ProgramBuilder

    b = ProgramBuilder("scale", params=[("A", [64]), ("C", [64])])
    with b.loop("i", 0, 64):
        b.assign("s1", b.at("C", b.v("i")), b.mul(2, b.at("A", b.v("i"))))
    program = b.build()
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from .ast import (
    And,
    ArrayDecl,
    ArrayRef,
    Assignment,
    BinOp,
    Call,
    Comparison,
    Condition,
    Expr,
    ForLoop,
    IfThenElse,
    IntConst,
    Program,
    Statement,
    UnaryOp,
    VarRef,
)

__all__ = ["ProgramBuilder"]

ExprLike = Union[Expr, int, str]


def _coerce(value: ExprLike) -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, int):
        return IntConst(value)
    if isinstance(value, str):
        return VarRef(value)
    raise TypeError(f"cannot convert {value!r} to an expression")


class ProgramBuilder:
    """Incrementally build a :class:`~repro.lang.ast.Program`."""

    def __init__(
        self,
        name: str,
        params: Sequence[Tuple[str, Sequence[int]]] = (),
        locals_: Sequence[Tuple[str, Sequence[int]]] = (),
        defines: Optional[Dict[str, int]] = None,
    ):
        self.name = name
        self.params = [ArrayDecl(n, dims) for n, dims in params]
        self.locals = [ArrayDecl(n, dims) for n, dims in locals_]
        self.defines = dict(defines or {})
        self.body: List[Statement] = []
        self._scopes: List[List[Statement]] = [self.body]
        self._label_counter = 0

    # ------------------------- expression helpers ------------------------ #
    @staticmethod
    def v(name: str) -> VarRef:
        """A scalar (iterator) reference."""
        return VarRef(name)

    @staticmethod
    def c(value: int) -> IntConst:
        """An integer constant."""
        return IntConst(value)

    @staticmethod
    def at(array: str, *indices: ExprLike) -> ArrayRef:
        """An array element reference ``array[indices...]``."""
        return ArrayRef(array, [_coerce(index) for index in indices])

    @staticmethod
    def add(lhs: ExprLike, rhs: ExprLike) -> BinOp:
        return BinOp("+", _coerce(lhs), _coerce(rhs))

    @staticmethod
    def sub(lhs: ExprLike, rhs: ExprLike) -> BinOp:
        return BinOp("-", _coerce(lhs), _coerce(rhs))

    @staticmethod
    def mul(lhs: ExprLike, rhs: ExprLike) -> BinOp:
        return BinOp("*", _coerce(lhs), _coerce(rhs))

    @staticmethod
    def neg(operand: ExprLike) -> UnaryOp:
        return UnaryOp("-", _coerce(operand))

    @staticmethod
    def call(func: str, *args: ExprLike) -> Call:
        return Call(func, [_coerce(arg) for arg in args])

    @staticmethod
    def cmp(op: str, lhs: ExprLike, rhs: ExprLike) -> Comparison:
        return Comparison(op, _coerce(lhs), _coerce(rhs))

    @staticmethod
    def both(*parts: Condition) -> And:
        return And(list(parts))

    # ------------------------- declaration helpers ------------------------ #
    def add_param(self, name: str, dims: Sequence[int]) -> None:
        self.params.append(ArrayDecl(name, dims))

    def add_local(self, name: str, dims: Sequence[int]) -> None:
        self.locals.append(ArrayDecl(name, dims))

    # -------------------------- statement helpers ------------------------- #
    def _fresh_label(self) -> str:
        self._label_counter += 1
        return f"s{self._label_counter}"

    def assign(self, label: Optional[str], target: ArrayRef, rhs: ExprLike) -> Assignment:
        """Append a labelled assignment to the current scope."""
        statement = Assignment(label or self._fresh_label(), target, _coerce(rhs))
        self._scopes[-1].append(statement)
        return statement

    @contextmanager
    def loop(
        self,
        var: str,
        lower: ExprLike,
        upper: ExprLike,
        step: int = 1,
        cond_op: Optional[str] = None,
    ) -> Iterator[VarRef]:
        """A ``for`` loop scope.

        With a positive step the loop runs ``for (var = lower; var < upper; var += step)``;
        with a negative step it runs ``for (var = lower; var >= upper; var += step)``.
        A different condition operator can be forced with *cond_op*.
        """
        if cond_op is None:
            cond_op = "<" if step > 0 else ">="
        loop = ForLoop(var, _coerce(lower), cond_op, _coerce(upper), step, [])
        self._scopes[-1].append(loop)
        self._scopes.append(loop.body)
        try:
            yield VarRef(var)
        finally:
            self._scopes.pop()

    @contextmanager
    def if_(self, condition: Condition) -> Iterator[None]:
        """An ``if`` scope (without else)."""
        statement = IfThenElse(condition, [], [])
        self._scopes[-1].append(statement)
        self._scopes.append(statement.then_body)
        try:
            yield
        finally:
            self._scopes.pop()

    @contextmanager
    def if_else(self, condition: Condition) -> Iterator[Tuple[List[Statement], List[Statement]]]:
        """An ``if``/``else`` scope: yields the two bodies; fill them explicitly."""
        statement = IfThenElse(condition, [], [])
        self._scopes[-1].append(statement)
        try:
            yield statement.then_body, statement.else_body
        finally:
            pass

    @contextmanager
    def then_scope(self, statement: IfThenElse) -> Iterator[None]:
        self._scopes.append(statement.then_body)
        try:
            yield
        finally:
            self._scopes.pop()

    @contextmanager
    def else_scope(self, statement: IfThenElse) -> Iterator[None]:
        self._scopes.append(statement.else_body)
        try:
            yield
        finally:
            self._scopes.pop()

    def if_stmt(self, condition: Condition) -> IfThenElse:
        """Append an empty ``if``/``else`` and return it (use with then/else scopes)."""
        statement = IfThenElse(condition, [], [])
        self._scopes[-1].append(statement)
        return statement

    # ------------------------------- build -------------------------------- #
    def build(self) -> Program:
        """Produce the finished :class:`Program` (the builder can keep being used)."""
        program = Program(self.name, self.params, self.locals, self.body, self.defines)
        return program.clone()
