"""Abstract syntax tree for the allowed program class.

The program class follows Section 3.1 of the paper: C functions over integer
arrays in dynamic single-assignment form, with static affine control flow
(``for`` loops with affine bounds and steps, ``if`` conditions on iterators
only), affine (piece-wise affine) index expressions, and explicit indexing
(no pointer arithmetic).

The AST is deliberately small and regular so that the geometric analyses
(:mod:`repro.analysis`) and the transformation engine (:mod:`repro.transforms`)
can pattern-match on it easily.  All nodes are plain dataclass-like objects
with value equality, a ``children()`` method for generic traversals, and a
``clone()`` method producing an independent copy (transformations never
mutate shared nodes).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union


# --------------------------------------------------------------------------- #
# Expressions
# --------------------------------------------------------------------------- #
class Expr:
    """Base class of all expression nodes."""

    __slots__ = ()

    def children(self) -> Tuple["Expr", ...]:
        return ()

    def clone(self) -> "Expr":
        raise NotImplementedError

    def __repr__(self) -> str:
        from .printer import expr_to_text

        return f"{type(self).__name__}({expr_to_text(self)!r})"


class IntConst(Expr):
    """An integer literal."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        self.value = int(value)

    def clone(self) -> "IntConst":
        return IntConst(self.value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IntConst) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("IntConst", self.value))


class VarRef(Expr):
    """A reference to a scalar variable (in practice: a loop iterator)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def clone(self) -> "VarRef":
        return VarRef(self.name)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VarRef) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("VarRef", self.name))


class ArrayRef(Expr):
    """A subscripted array access ``name[e0][e1]...``."""

    __slots__ = ("name", "indices")

    def __init__(self, name: str, indices: Sequence[Expr]):
        self.name = name
        self.indices: Tuple[Expr, ...] = tuple(indices)

    def children(self) -> Tuple[Expr, ...]:
        return self.indices

    def clone(self) -> "ArrayRef":
        return ArrayRef(self.name, [index.clone() for index in self.indices])

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ArrayRef)
            and self.name == other.name
            and self.indices == other.indices
        )

    def __hash__(self) -> int:
        return hash(("ArrayRef", self.name, self.indices))


class BinOp(Expr):
    """A binary operation on data values (``+``, ``-``, ``*``, ``/``, ...)."""

    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op: str, lhs: Expr, rhs: Expr):
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def children(self) -> Tuple[Expr, ...]:
        return (self.lhs, self.rhs)

    def clone(self) -> "BinOp":
        return BinOp(self.op, self.lhs.clone(), self.rhs.clone())

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BinOp)
            and self.op == other.op
            and self.lhs == other.lhs
            and self.rhs == other.rhs
        )

    def __hash__(self) -> int:
        return hash(("BinOp", self.op, self.lhs, self.rhs))


class UnaryOp(Expr):
    """A unary operation (only ``-`` in practice)."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr):
        self.op = op
        self.operand = operand

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def clone(self) -> "UnaryOp":
        return UnaryOp(self.op, self.operand.clone())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, UnaryOp) and self.op == other.op and self.operand == other.operand

    def __hash__(self) -> int:
        return hash(("UnaryOp", self.op, self.operand))


class Call(Expr):
    """A call of a (possibly uninterpreted) function, e.g. ``f(A[i], 3)``."""

    __slots__ = ("func", "args")

    def __init__(self, func: str, args: Sequence[Expr]):
        self.func = func
        self.args: Tuple[Expr, ...] = tuple(args)

    def children(self) -> Tuple[Expr, ...]:
        return self.args

    def clone(self) -> "Call":
        return Call(self.func, [arg.clone() for arg in self.args])

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Call) and self.func == other.func and self.args == other.args

    def __hash__(self) -> int:
        return hash(("Call", self.func, self.args))


# --------------------------------------------------------------------------- #
# Conditions (affine guards of if statements)
# --------------------------------------------------------------------------- #
class Condition:
    """Base class of affine conditions used in ``if`` statements."""

    __slots__ = ()

    def clone(self) -> "Condition":
        raise NotImplementedError


class Comparison(Condition):
    """An affine comparison ``lhs op rhs`` with op in ``< <= > >= == !=``."""

    __slots__ = ("op", "lhs", "rhs")

    VALID_OPS = ("<", "<=", ">", ">=", "==", "!=")

    def __init__(self, op: str, lhs: Expr, rhs: Expr):
        if op not in self.VALID_OPS:
            raise ValueError(f"invalid comparison operator {op!r}")
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def clone(self) -> "Comparison":
        return Comparison(self.op, self.lhs.clone(), self.rhs.clone())

    def negated(self) -> "Comparison":
        """The logical negation of the comparison."""
        opposites = {"<": ">=", "<=": ">", ">": "<=", ">=": "<", "==": "!=", "!=": "=="}
        return Comparison(opposites[self.op], self.lhs.clone(), self.rhs.clone())

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Comparison)
            and self.op == other.op
            and self.lhs == other.lhs
            and self.rhs == other.rhs
        )

    def __hash__(self) -> int:
        return hash(("Comparison", self.op, self.lhs, self.rhs))

    def __repr__(self) -> str:
        from .printer import condition_to_text

        return f"Comparison({condition_to_text(self)!r})"


class And(Condition):
    """A conjunction of comparisons (``a && b && ...``)."""

    __slots__ = ("parts",)

    def __init__(self, parts: Sequence[Condition]):
        self.parts: Tuple[Condition, ...] = tuple(parts)

    def clone(self) -> "And":
        return And([part.clone() for part in self.parts])

    def __eq__(self, other: object) -> bool:
        return isinstance(other, And) and self.parts == other.parts

    def __hash__(self) -> int:
        return hash(("And", self.parts))

    def __repr__(self) -> str:
        from .printer import condition_to_text

        return f"And({condition_to_text(self)!r})"


# --------------------------------------------------------------------------- #
# Statements
# --------------------------------------------------------------------------- #
class Statement:
    """Base class of statement nodes."""

    __slots__ = ("line",)

    def __init__(self, line: Optional[int] = None):
        self.line = line

    def clone(self) -> "Statement":
        raise NotImplementedError

    def body_statements(self) -> Tuple["Statement", ...]:
        return ()


class Assignment(Statement):
    """A labelled single assignment to an array element."""

    __slots__ = ("label", "target", "rhs")

    def __init__(self, label: Optional[str], target: ArrayRef, rhs: Expr, line: Optional[int] = None):
        super().__init__(line)
        self.label = label
        self.target = target
        self.rhs = rhs

    def clone(self) -> "Assignment":
        return Assignment(self.label, self.target.clone(), self.rhs.clone(), self.line)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Assignment)
            and self.label == other.label
            and self.target == other.target
            and self.rhs == other.rhs
        )

    def __hash__(self) -> int:
        return hash(("Assignment", self.label, self.target, self.rhs))

    def __repr__(self) -> str:
        from .printer import statement_to_text

        return f"Assignment({statement_to_text(self).strip()!r})"


class ForLoop(Statement):
    """A counted loop ``for (var = init; var <op> bound; var += step)``.

    ``cond_op`` is one of ``<``, ``<=``, ``>``, ``>=``; ``step`` is a non-zero
    integer constant.  ``init`` and ``bound`` must be affine in the enclosing
    iterators and program constants.
    """

    __slots__ = ("var", "init", "cond_op", "bound", "step", "body")

    def __init__(
        self,
        var: str,
        init: Expr,
        cond_op: str,
        bound: Expr,
        step: int,
        body: Sequence[Statement],
        line: Optional[int] = None,
    ):
        super().__init__(line)
        if cond_op not in ("<", "<=", ">", ">="):
            raise ValueError(f"invalid loop condition operator {cond_op!r}")
        if step == 0:
            raise ValueError("loop step must be non-zero")
        self.var = var
        self.init = init
        self.cond_op = cond_op
        self.bound = bound
        self.step = int(step)
        self.body: List[Statement] = list(body)

    def clone(self) -> "ForLoop":
        return ForLoop(
            self.var,
            self.init.clone(),
            self.cond_op,
            self.bound.clone(),
            self.step,
            [statement.clone() for statement in self.body],
            self.line,
        )

    def body_statements(self) -> Tuple[Statement, ...]:
        return tuple(self.body)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ForLoop)
            and self.var == other.var
            and self.init == other.init
            and self.cond_op == other.cond_op
            and self.bound == other.bound
            and self.step == other.step
            and self.body == other.body
        )

    def __hash__(self) -> int:
        return hash(("ForLoop", self.var, self.init, self.cond_op, self.bound, self.step, tuple(self.body)))

    def __repr__(self) -> str:
        return f"ForLoop(var={self.var!r}, step={self.step}, body={len(self.body)} stmt(s))"


class IfThenElse(Statement):
    """A two-armed conditional guarded by an affine condition on iterators."""

    __slots__ = ("condition", "then_body", "else_body")

    def __init__(
        self,
        condition: Condition,
        then_body: Sequence[Statement],
        else_body: Sequence[Statement] = (),
        line: Optional[int] = None,
    ):
        super().__init__(line)
        self.condition = condition
        self.then_body: List[Statement] = list(then_body)
        self.else_body: List[Statement] = list(else_body)

    def clone(self) -> "IfThenElse":
        return IfThenElse(
            self.condition.clone(),
            [statement.clone() for statement in self.then_body],
            [statement.clone() for statement in self.else_body],
            self.line,
        )

    def body_statements(self) -> Tuple[Statement, ...]:
        return tuple(self.then_body) + tuple(self.else_body)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, IfThenElse)
            and self.condition == other.condition
            and self.then_body == other.then_body
            and self.else_body == other.else_body
        )

    def __hash__(self) -> int:
        return hash(("IfThenElse", self.condition, tuple(self.then_body), tuple(self.else_body)))

    def __repr__(self) -> str:
        return (
            f"IfThenElse(condition={self.condition!r}, then={len(self.then_body)} stmt(s), "
            f"else={len(self.else_body)} stmt(s))"
        )


# --------------------------------------------------------------------------- #
# Declarations and programs
# --------------------------------------------------------------------------- #
class ArrayDecl:
    """Declaration of an integer array (or scalar when ``dims`` is empty)."""

    __slots__ = ("name", "dims")

    def __init__(self, name: str, dims: Sequence[int] = ()):
        self.name = name
        self.dims: Tuple[int, ...] = tuple(int(d) for d in dims)

    @property
    def is_scalar(self) -> bool:
        return not self.dims

    def clone(self) -> "ArrayDecl":
        return ArrayDecl(self.name, self.dims)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ArrayDecl) and self.name == other.name and self.dims == other.dims

    def __hash__(self) -> int:
        return hash(("ArrayDecl", self.name, self.dims))

    def __repr__(self) -> str:
        dims = "".join(f"[{d}]" for d in self.dims)
        return f"ArrayDecl(int {self.name}{dims})"


class Program:
    """A single C function in the allowed program class.

    Parameters
    ----------
    name:
        The function name.
    params:
        Declarations of the formal array parameters, in order.  Which of them
        are inputs and which are outputs is determined by usage (see
        :meth:`input_arrays` / :meth:`output_arrays`).
    locals_:
        Declarations of local arrays and scalars.
    body:
        The statement list of the function body.
    defines:
        Symbolic constants (``#define``) recorded for pretty-printing.
    """

    __slots__ = ("name", "params", "locals", "body", "defines")

    def __init__(
        self,
        name: str,
        params: Sequence[ArrayDecl],
        locals_: Sequence[ArrayDecl],
        body: Sequence[Statement],
        defines: Optional[Dict[str, int]] = None,
    ):
        self.name = name
        self.params: List[ArrayDecl] = list(params)
        self.locals: List[ArrayDecl] = list(locals_)
        self.body: List[Statement] = list(body)
        self.defines: Dict[str, int] = dict(defines or {})

    # ------------------------------------------------------------------ #
    def clone(self) -> "Program":
        return Program(
            self.name,
            [decl.clone() for decl in self.params],
            [decl.clone() for decl in self.locals],
            [statement.clone() for statement in self.body],
            dict(self.defines),
        )

    def declarations(self) -> Dict[str, ArrayDecl]:
        """All declarations (parameters and locals) by name."""
        return {decl.name: decl for decl in list(self.params) + list(self.locals)}

    def param_names(self) -> Tuple[str, ...]:
        return tuple(decl.name for decl in self.params)

    def local_names(self) -> Tuple[str, ...]:
        return tuple(decl.name for decl in self.locals)

    # ------------------------------------------------------------------ #
    # Array role classification (inputs / outputs / intermediates)
    # ------------------------------------------------------------------ #
    def written_arrays(self) -> Tuple[str, ...]:
        names: List[str] = []
        for assignment in self.assignments():
            if assignment.target.name not in names:
                names.append(assignment.target.name)
        return tuple(names)

    def read_arrays(self) -> Tuple[str, ...]:
        names: List[str] = []

        def visit(expr: Expr) -> None:
            if isinstance(expr, ArrayRef) and expr.name not in names:
                names.append(expr.name)
            for child in expr.children():
                visit(child)

        for assignment in self.assignments():
            visit(assignment.rhs)
            for index in assignment.target.indices:
                visit(index)
        return tuple(names)

    def input_arrays(self) -> Tuple[str, ...]:
        """Parameters that are read but never written (the function inputs)."""
        written = set(self.written_arrays())
        return tuple(name for name in self.param_names() if name not in written)

    def output_arrays(self) -> Tuple[str, ...]:
        """Parameters that are written (the function outputs)."""
        written = set(self.written_arrays())
        return tuple(name for name in self.param_names() if name in written)

    def intermediate_arrays(self) -> Tuple[str, ...]:
        """Local arrays holding intermediate values."""
        return tuple(decl.name for decl in self.locals if not decl.is_scalar)

    # ------------------------------------------------------------------ #
    # Traversal helpers
    # ------------------------------------------------------------------ #
    def assignments(self) -> List[Assignment]:
        """All assignment statements, in textual order."""
        result: List[Assignment] = []

        def visit(statements: Iterable[Statement]) -> None:
            for statement in statements:
                if isinstance(statement, Assignment):
                    result.append(statement)
                else:
                    visit(statement.body_statements())

        visit(self.body)
        return result

    def assignment_by_label(self, label: str) -> Assignment:
        for assignment in self.assignments():
            if assignment.label == label:
                return assignment
        raise KeyError(f"no assignment labelled {label!r}")

    def statements(self) -> List[Statement]:
        """All statements (of every kind), pre-order."""
        result: List[Statement] = []

        def visit(statements: Iterable[Statement]) -> None:
            for statement in statements:
                result.append(statement)
                visit(statement.body_statements())

        visit(self.body)
        return result

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Program)
            and self.name == other.name
            and self.params == other.params
            and self.locals == other.locals
            and self.body == other.body
        )

    def __repr__(self) -> str:
        return (
            f"Program({self.name!r}, params={[d.name for d in self.params]}, "
            f"locals={[d.name for d in self.locals]}, {len(self.assignments())} assignment(s))"
        )


# --------------------------------------------------------------------------- #
# Generic expression utilities
# --------------------------------------------------------------------------- #
def walk_expr(expr: Expr) -> Iterable[Expr]:
    """Pre-order traversal of an expression tree."""
    yield expr
    for child in expr.children():
        yield from walk_expr(child)


def array_reads(expr: Expr) -> List[ArrayRef]:
    """All array references appearing in *expr*, left to right."""
    return [node for node in walk_expr(expr) if isinstance(node, ArrayRef)]


def map_expr(expr: Expr, transform) -> Expr:
    """Rebuild an expression bottom-up, applying *transform* to every node.

    ``transform`` receives a node whose children have already been rebuilt and
    must return a node (possibly the same one).
    """
    if isinstance(expr, ArrayRef):
        rebuilt: Expr = ArrayRef(expr.name, [map_expr(index, transform) for index in expr.indices])
    elif isinstance(expr, BinOp):
        rebuilt = BinOp(expr.op, map_expr(expr.lhs, transform), map_expr(expr.rhs, transform))
    elif isinstance(expr, UnaryOp):
        rebuilt = UnaryOp(expr.op, map_expr(expr.operand, transform))
    elif isinstance(expr, Call):
        rebuilt = Call(expr.func, [map_expr(arg, transform) for arg in expr.args])
    else:
        rebuilt = expr.clone()
    return transform(rebuilt)


def substitute_vars(expr: Expr, bindings: Dict[str, Expr]) -> Expr:
    """Substitute scalar variable references by expressions."""

    def transform(node: Expr) -> Expr:
        if isinstance(node, VarRef) and node.name in bindings:
            return bindings[node.name].clone()
        return node

    return map_expr(expr, transform)
