"""Iteration domains and schedules of assignment statements.

For every assignment statement the geometric analysis computes

* the ordered tuple of enclosing loop iterators,
* the **iteration domain**: the set of iterator vectors for which the
  statement instance executes (loop bounds, strides and ``if`` guards),
* a **schedule**: a ``2d+1``-style multidimensional timestamp (alternating
  static statement positions and loop "time" expressions) used by the
  def-use order checker.

These are bundled in :class:`StatementContext`, the unit the ADDG extractor
and the dependency-mapping construction work from.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..presburger import AffineConstraint, LinExpr, Set
from ..lang.ast import Assignment, ForLoop, IfThenElse, Program, Statement
from ..lang.affine import (
    condition_to_pieces,
    expr_to_affine,
    loop_constraints,
    negated_condition_pieces,
)

__all__ = ["StatementContext", "statement_contexts"]


class StatementContext:
    """An assignment statement together with its geometric context."""

    def __init__(
        self,
        assignment: Assignment,
        label: str,
        iterators: Tuple[str, ...],
        domain: Set,
        schedule: Tuple[LinExpr, ...],
        position: int,
    ):
        self.assignment = assignment
        self.label = label
        self.iterators = iterators
        self.domain = domain
        self.schedule = schedule
        self.position = position

    @property
    def target_array(self) -> str:
        return self.assignment.target.name

    def __repr__(self) -> str:
        return (
            f"StatementContext({self.label!r}, target={self.target_array!r}, "
            f"iterators={list(self.iterators)})"
        )


def statement_contexts(program: Program) -> List[StatementContext]:
    """Compute the :class:`StatementContext` of every assignment in *program*."""
    contexts: List[StatementContext] = []
    fresh_counter = [0]

    def fresh_label(assignment: Assignment) -> str:
        if assignment.label:
            return assignment.label
        fresh_counter[0] += 1
        return f"__stmt{fresh_counter[0]}"

    def visit(
        statements: Sequence[Statement],
        iterators: List[str],
        pieces: List[List[AffineConstraint]],
        existentials: List[str],
        schedule_prefix: List[LinExpr],
    ) -> None:
        for position, statement in enumerate(statements):
            if isinstance(statement, Assignment):
                domain = Set.empty(tuple(iterators)) if iterators else Set.empty(())
                built = None
                for piece in pieces:
                    piece_set = Set.build(tuple(iterators), piece, exists=tuple(existentials))
                    built = piece_set if built is None else built.union(piece_set)
                domain = built if built is not None else Set.universe(tuple(iterators))
                schedule = tuple(schedule_prefix + [LinExpr.constant(position)])
                contexts.append(
                    StatementContext(
                        statement,
                        fresh_label(statement),
                        tuple(iterators),
                        domain,
                        schedule,
                        position,
                    )
                )
            elif isinstance(statement, ForLoop):
                constraints, extra_exists = loop_constraints(
                    statement.var, statement.init, statement.cond_op, statement.bound, statement.step
                )
                new_pieces = [piece + constraints for piece in pieces]
                init_affine = expr_to_affine(statement.init)
                direction = 1 if statement.step > 0 else -1
                time_expr = (LinExpr.var(statement.var) - init_affine) * direction
                visit(
                    statement.body,
                    iterators + [statement.var],
                    new_pieces,
                    existentials + extra_exists,
                    schedule_prefix + [LinExpr.constant(position), time_expr],
                )
            elif isinstance(statement, IfThenElse):
                then_pieces = condition_to_pieces(statement.condition)
                combined_then = [piece + extra for piece in pieces for extra in then_pieces]
                visit(
                    statement.then_body,
                    iterators,
                    combined_then,
                    existentials,
                    schedule_prefix + [LinExpr.constant(position)],
                )
                if statement.else_body:
                    else_pieces = negated_condition_pieces(statement.condition)
                    combined_else = [piece + extra for piece in pieces for extra in else_pieces]
                    visit(
                        statement.else_body,
                        iterators,
                        combined_else,
                        existentials,
                        schedule_prefix + [LinExpr.constant(position)],
                    )
            else:
                raise TypeError(f"unsupported statement type {type(statement).__name__}")

    visit(program.body, [], [[]], [], [])
    return contexts
