"""Geometric program analysis: domains, access maps, dependency mappings, data-flow checks."""

from .access import (
    access_map,
    defined_set,
    dependency_map,
    element_dim_names,
    write_access_map,
)
from .dataflow import (
    check_coverage,
    check_dataflow,
    check_def_use_order,
    check_single_assignment,
    written_set_by_array,
)
from .domains import StatementContext, statement_contexts

__all__ = [
    "StatementContext",
    "access_map",
    "check_coverage",
    "check_dataflow",
    "check_def_use_order",
    "check_single_assignment",
    "defined_set",
    "dependency_map",
    "element_dim_names",
    "statement_contexts",
    "write_access_map",
    "written_set_by_array",
]
