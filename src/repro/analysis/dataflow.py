"""Array data-flow checks: single assignment, coverage, and def-use order.

The verification scheme of Fig. 6 of the paper runs a *def-use checker* on
both programs before equivalence checking, because the sufficient condition
assumes the code is correctly scheduled ("all the reads for values follow
their writes").  This module implements that prerequisite with standard array
data-flow analysis on the statement contexts:

* :func:`check_single_assignment` — every array element is written at most
  once (the dynamic single-assignment property of the program class);
* :func:`check_coverage` — every element read from a non-input array is
  written by some statement (no reads of undefined values);
* :func:`check_def_use_order` — every read happens after the write of the
  element it reads, under the sequential schedule of the program;
* :func:`check_dataflow` — all of the above, returning a list of issues.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..presburger import AffineConstraint, LinExpr, Map, Set, eq_, lt_
from ..lang.ast import ArrayRef, Program, array_reads
from .access import access_map, defined_set, write_access_map
from .domains import StatementContext, statement_contexts

__all__ = [
    "check_single_assignment",
    "check_coverage",
    "check_def_use_order",
    "check_dataflow",
    "written_set_by_array",
]


def written_set_by_array(contexts: Sequence[StatementContext]) -> Dict[str, Set]:
    """The union of written elements per array over all statements."""
    result: Dict[str, Set] = {}
    for context in contexts:
        elements = defined_set(context)
        name = context.target_array
        if name in result:
            result[name] = result[name].union(elements)
        else:
            result[name] = elements
    return result


# --------------------------------------------------------------------------- #
# Single assignment
# --------------------------------------------------------------------------- #
def check_single_assignment(program: Program, contexts: Optional[Sequence[StatementContext]] = None) -> List[str]:
    """Verify the dynamic single-assignment property at the element level."""
    contexts = list(contexts) if contexts is not None else statement_contexts(program)
    issues: List[str] = []
    by_array: Dict[str, List[StatementContext]] = {}
    for context in contexts:
        by_array.setdefault(context.target_array, []).append(context)

    for array, writers in by_array.items():
        for index, writer in enumerate(writers):
            write_map = write_access_map(writer)
            if not write_map.is_injective():
                issues.append(
                    f"statement {writer.label!r} writes some element of {array!r} "
                    "in more than one iteration (single-assignment violation)"
                )
            for other in writers[index + 1 :]:
                if not defined_set(writer).is_disjoint(defined_set(other)):
                    issues.append(
                        f"statements {writer.label!r} and {other.label!r} both write "
                        f"some element of {array!r} (single-assignment violation)"
                    )
    return issues


# --------------------------------------------------------------------------- #
# Coverage (no reads of undefined elements)
# --------------------------------------------------------------------------- #
def check_coverage(program: Program, contexts: Optional[Sequence[StatementContext]] = None) -> List[str]:
    """Verify that every read of a non-input array reads a written element."""
    contexts = list(contexts) if contexts is not None else statement_contexts(program)
    issues: List[str] = []
    inputs = set(program.input_arrays())
    written = written_set_by_array(contexts)

    for context in contexts:
        for ref in array_reads(context.assignment.rhs):
            if ref.name in inputs:
                continue
            read_elements = access_map(context, ref).range()
            if read_elements.is_empty():
                continue
            available = written.get(ref.name)
            if available is None:
                issues.append(
                    f"statement {context.label!r} reads {ref.name!r} which is never written"
                )
                continue
            uncovered = read_elements.subtract(available.rename(read_elements.names))
            if not uncovered.is_empty():
                issues.append(
                    f"statement {context.label!r} reads undefined elements of {ref.name!r}: {uncovered}"
                )
    return issues


# --------------------------------------------------------------------------- #
# Def-use order
# --------------------------------------------------------------------------- #
def _schedule_map(context: StatementContext, length: int, prefix: str) -> Map:
    """Map from the statement's iteration vector to its (padded) timestamp vector."""
    iterators = context.iterators
    out_names = tuple(f"{prefix}{i}" for i in range(length))
    constraints: List[AffineConstraint] = []
    renaming = {it: f"{prefix}_{it}" for it in iterators}
    in_names = tuple(renaming[it] for it in iterators)
    for index in range(length):
        if index < len(context.schedule):
            expr = context.schedule[index].rename(renaming)
        else:
            expr = LinExpr.constant(0)
        constraints.append(eq_(LinExpr.var(out_names[index]), expr))
    relation = Map.build(in_names, out_names, constraints)
    domain = context.domain.rename(in_names)
    return relation.restrict_domain(domain)


def _lexicographic_before(length: int) -> Map:
    """The relation ``a lex< b`` over two timestamp vectors of the given length."""
    a_names = tuple(f"a{i}" for i in range(length))
    b_names = tuple(f"b{i}" for i in range(length))
    result = Map.empty(a_names, b_names)
    for position in range(length):
        constraints: List[AffineConstraint] = []
        for index in range(position):
            constraints.append(eq_(LinExpr.var(a_names[index]), LinExpr.var(b_names[index])))
        constraints.append(lt_(LinExpr.var(a_names[position]), LinExpr.var(b_names[position])))
        result = result.union(Map.build(a_names, b_names, constraints))
    return result


def check_def_use_order(program: Program, contexts: Optional[Sequence[StatementContext]] = None) -> List[str]:
    """Verify that every read of a written element executes after its write.

    For each (writer statement, reader reference) pair on the same array, the
    conflict relation ``{ i_w -> i_r : w(i_w) = r(i_r) }`` must be contained
    in the happens-before relation derived from the ``2d+1`` schedules.
    """
    contexts = list(contexts) if contexts is not None else statement_contexts(program)
    issues: List[str] = []
    inputs = set(program.input_arrays())
    writers_by_array: Dict[str, List[StatementContext]] = {}
    for context in contexts:
        writers_by_array.setdefault(context.target_array, []).append(context)

    max_schedule = max((len(c.schedule) for c in contexts), default=0)

    for reader in contexts:
        for ref in array_reads(reader.assignment.rhs):
            if ref.name in inputs or ref.name not in writers_by_array:
                continue
            read_map = access_map(reader, ref)
            for writer in writers_by_array[ref.name]:
                write_map = write_access_map(writer)
                # conflict: writer iteration -> reader iteration touching the same element
                conflict = write_map.compose(read_map.inverse())
                if conflict.is_empty():
                    continue
                writer_schedule = _schedule_map(writer, max_schedule, "w")
                reader_schedule = _schedule_map(reader, max_schedule, "r")
                before = _lexicographic_before(max_schedule)
                # writer iteration -> reader iteration pairs that are correctly ordered
                ordered = writer_schedule.compose(before).compose(reader_schedule.inverse())
                if not conflict.is_subset(ordered):
                    violation = conflict.subtract(ordered)
                    issues.append(
                        f"statement {reader.label!r} reads elements of {ref.name!r} before "
                        f"statement {writer.label!r} writes them (violating instances: {violation})"
                    )
    return issues


def check_dataflow(program: Program) -> List[str]:
    """Run all data-flow prerequisites of the verification scheme (Fig. 6)."""
    contexts = statement_contexts(program)
    issues: List[str] = []
    issues.extend(check_single_assignment(program, contexts))
    issues.extend(check_coverage(program, contexts))
    issues.extend(check_def_use_order(program, contexts))
    return issues
