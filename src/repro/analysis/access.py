"""Array access maps and dependency mappings.

Given a :class:`~repro.analysis.domains.StatementContext`, this module builds

* the **write access map** of the statement (iteration vector -> written
  element),
* **read access maps** for each array reference in the right-hand side,
* the **defined set** (the elements of the target array written by the
  statement), and
* the paper's **dependency mappings**: relations from elements of the defined
  array to the elements of an operand array read to compute them
  (Section 3.2, e.g. ``M_buf,A2 = {[x] -> [y] : x = 2k-2 and y = k-1 and k in D}``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..presburger import AffineConstraint, LinExpr, Map, Set, eq_
from ..lang.ast import ArrayRef
from ..lang.affine import expr_to_affine
from .domains import StatementContext

__all__ = [
    "element_dim_names",
    "access_map",
    "write_access_map",
    "defined_set",
    "dependency_map",
]


def element_dim_names(array: str, rank: int, prefix: str = "e") -> Tuple[str, ...]:
    """Canonical dimension names for the element space of an array."""
    return tuple(f"{prefix}{index}" for index in range(rank))


def _iteration_dim_names(context: StatementContext) -> Tuple[str, ...]:
    return context.iterators


def access_map(context: StatementContext, ref: ArrayRef, prefix: str = "e") -> Map:
    """The access map of *ref* inside *context*: iteration vector -> element.

    The map is restricted to the statement's iteration domain.
    """
    iterators = _iteration_dim_names(context)
    rank = len(ref.indices)
    out_names = element_dim_names(ref.name, rank, prefix)
    constraints: List[AffineConstraint] = []
    for out_name, index_expr in zip(out_names, ref.indices):
        constraints.append(eq_(LinExpr.var(out_name), expr_to_affine(index_expr)))
    relation = Map.build(iterators, out_names, constraints)
    return relation.restrict_domain(context.domain)


def write_access_map(context: StatementContext) -> Map:
    """The access map of the statement's assignment target."""
    return access_map(context, context.assignment.target, prefix="w")


def defined_set(context: StatementContext) -> Set:
    """The set of elements of the target array written by the statement."""
    return write_access_map(context).range()


def dependency_map(context: StatementContext, ref: ArrayRef) -> Map:
    """The dependency mapping from defined elements to the elements read by *ref*.

    For the statement ``s`` with target access ``w(i)`` and the operand
    reference ``r(i)``, this is ``{ w(i) -> r(i) : i in D_s }``, built directly
    with the iteration vector as existential dimensions (the construction of
    Section 3.2 of the paper).
    """
    iterators = list(_iteration_dim_names(context))
    target = context.assignment.target
    in_names = element_dim_names(target.name, len(target.indices), prefix="x")
    out_names = element_dim_names(ref.name, len(ref.indices), prefix="y")

    used = set(in_names) | set(out_names)
    renaming = {}
    for iterator in iterators:
        fresh = iterator
        while fresh in used:
            fresh = f"{fresh}_it"
        renaming[iterator] = fresh
        used.add(fresh)

    constraints: List[AffineConstraint] = []
    for name, index_expr in zip(in_names, target.indices):
        affine = expr_to_affine(index_expr).rename(renaming)
        constraints.append(eq_(LinExpr.var(name), affine))
    for name, index_expr in zip(out_names, ref.indices):
        affine = expr_to_affine(index_expr).rename(renaming)
        constraints.append(eq_(LinExpr.var(name), affine))

    pieces: Optional[Map] = None
    for conjunct in context.domain.conjuncts:
        piece_constraints = list(constraints)
        exists = [renaming[i] for i in iterators]
        # Lower the domain conjunct into constraints over the renamed iterators.
        div_names = [f"__dom_div{i}" for i in range(conjunct.n_div)]
        exists = exists + div_names
        order = [renaming[i] for i in iterators] + div_names
        for eq in conjunct.eqs:
            expr = _vector_to_linexpr(eq, order)
            piece_constraints.append(AffineConstraint(expr, "=="))
        for ineq in conjunct.ineqs:
            expr = _vector_to_linexpr(ineq, order)
            piece_constraints.append(AffineConstraint(expr, ">="))
        piece = Map.build(in_names, out_names, piece_constraints, exists=exists)
        pieces = piece if pieces is None else pieces.union(piece)
    if pieces is None:
        return Map.empty(in_names, out_names)
    return pieces


def _vector_to_linexpr(vector: Sequence[int], order: Sequence[str]) -> LinExpr:
    coeffs = {name: coefficient for name, coefficient in zip(order, vector[:-1]) if coefficient}
    return LinExpr(coeffs, vector[-1])
