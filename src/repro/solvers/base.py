"""The decision-procedure backend protocol and its wire format.

A :class:`SolverBackend` answers the five *decision queries* the checker
stack actually issues against the Presburger layer:

* ``is_feasible(conjunct)`` — satisfiability of one conjunct (membership
  tests substitute a concrete point first);
* ``is_subset(a, b)`` / ``is_equal(a, b)`` / ``is_disjoint(a, b)`` — over
  two unions of conjuncts (the bodies of a :class:`~repro.presburger.Set`
  or :class:`~repro.presburger.Map`);
* ``sample_point(set_like, seed, limit)`` — model extraction: a concrete
  integer point of a non-empty set.

Construction-time simplification (``_clean``), projection, composition and
the rest of the relation *algebra* stay on the omega core unconditionally —
backends second-source the *verdicts*, not the rewriting.

Every query increments ``query_counts["<backend>.<kind>"]`` so reports can
say which procedure (and how often) produced a verdict.  Queries are
serialisable (:func:`serialize_query` / :func:`replay_query`): a
:class:`BackendDisagreement` carries the serialized query that diverged, so
it can be replayed against any backend offline.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..presburger.conjunct import Conjunct

__all__ = [
    "SolverBackend",
    "BackendDisagreement",
    "SolverError",
    "SolverUnavailableError",
    "conjunct_to_dict",
    "conjunct_from_dict",
    "serialize_query",
    "replay_query",
]


class SolverError(RuntimeError):
    """A backend failed to answer a query (solver crash, unparsable reply, ...)."""


class SolverUnavailableError(SolverError):
    """The requested backend cannot run here (missing binary or module)."""


class BackendDisagreement(BaseException):
    """Two backends returned different verdicts for the same decision query.

    Inherits :class:`BaseException` (not :class:`Exception`) for the same
    reason :class:`~repro.service.executor.JobTimeoutError` does: a
    disagreement is a soundness alarm that must reach the executor even
    through the checker's broad internal ``except Exception`` recovery
    paths.  The serialized query rides along for offline replay
    (:func:`replay_query`).
    """

    def __init__(self, query: Dict[str, Any], primary: str, secondary: str,
                 primary_result: Any, secondary_result: Any) -> None:
        super().__init__(
            f"backend disagreement on {query.get('kind')!r}: "
            f"{primary}={primary_result!r} vs {secondary}={secondary_result!r}"
        )
        self.query = query
        self.primary = primary
        self.secondary = secondary
        self.primary_result = primary_result
        self.secondary_result = secondary_result

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable rendering (embedded in ERROR job results)."""
        return {
            "query": self.query,
            "primary": self.primary,
            "secondary": self.secondary,
            "primary_result": _jsonable(self.primary_result),
            "secondary_result": _jsonable(self.secondary_result),
        }


def _jsonable(value: Any) -> Any:
    if isinstance(value, tuple):
        return list(value)
    return value


class SolverBackend(abc.ABC):
    """Abstract decision-procedure backend.

    Subclasses set :attr:`name` and implement the five queries over raw
    :class:`~repro.presburger.conjunct.Conjunct` tuples.  The base class
    owns the per-kind query counters.
    """

    name: str = "abstract"

    def __init__(self) -> None:
        self.query_counts: Dict[str, int] = {}

    def _count(self, kind: str) -> None:
        key = f"{self.name}.{kind}"
        self.query_counts[key] = self.query_counts.get(key, 0) + 1

    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def is_feasible(self, conjunct: Conjunct) -> bool:
        """Does *conjunct* have an integer solution?"""

    @abc.abstractmethod
    def is_subset(self, a: Sequence[Conjunct], b: Sequence[Conjunct]) -> bool:
        """Is the union *a* contained in the union *b*?"""

    @abc.abstractmethod
    def is_equal(self, a: Sequence[Conjunct], b: Sequence[Conjunct]) -> bool:
        """Do the unions *a* and *b* describe the same integer set?"""

    @abc.abstractmethod
    def is_disjoint(self, a: Sequence[Conjunct], b: Sequence[Conjunct]) -> bool:
        """Is the intersection of the unions *a* and *b* empty?"""

    @abc.abstractmethod
    def sample_point(self, set_like: Any, seed: int = 0, limit: int = 4096) -> Tuple[int, ...]:
        """A concrete integer point of the non-empty :class:`Set` *set_like*."""


# --------------------------------------------------------------------------- #
# Query wire format
# --------------------------------------------------------------------------- #
def conjunct_to_dict(conjunct: Conjunct) -> Dict[str, Any]:
    """JSON-serialisable rendering of a conjunct; inverse of :func:`conjunct_from_dict`."""
    return {
        "n_vars": conjunct.n_vars,
        "n_div": conjunct.n_div,
        "eqs": [list(vec) for vec in conjunct.eqs],
        "ineqs": [list(vec) for vec in conjunct.ineqs],
    }


def conjunct_from_dict(data: Dict[str, Any]) -> Conjunct:
    return Conjunct(
        int(data["n_vars"]),
        int(data.get("n_div", 0)),
        eqs=tuple(tuple(int(x) for x in vec) for vec in data.get("eqs", ())),
        ineqs=tuple(tuple(int(x) for x in vec) for vec in data.get("ineqs", ())),
    )


def serialize_query(
    kind: str,
    a: Sequence[Conjunct],
    b: Optional[Sequence[Conjunct]] = None,
    *,
    seed: Optional[int] = None,
    limit: Optional[int] = None,
) -> Dict[str, Any]:
    """The portable form of one decision query (carried by disagreements)."""
    payload: Dict[str, Any] = {
        "kind": kind,
        "a": [conjunct_to_dict(c) for c in a],
    }
    if b is not None:
        payload["b"] = [conjunct_to_dict(c) for c in b]
    if seed is not None:
        payload["seed"] = seed
    if limit is not None:
        payload["limit"] = limit
    return payload


def replay_query(query: Dict[str, Any], backend: "SolverBackend") -> Any:
    """Run a serialized query against *backend* and return its answer.

    The inverse of :func:`serialize_query`: replays the exact decision that
    produced a :class:`BackendDisagreement` so divergences can be reduced
    offline against any backend.
    """
    kind = query["kind"]
    a: List[Conjunct] = [conjunct_from_dict(c) for c in query.get("a", ())]
    b: List[Conjunct] = [conjunct_from_dict(c) for c in query.get("b", ())]
    if kind == "is_feasible":
        if len(a) != 1:
            raise ValueError("is_feasible query must carry exactly one conjunct")
        return backend.is_feasible(a[0])
    if kind == "is_subset":
        return backend.is_subset(tuple(a), tuple(b))
    if kind == "is_equal":
        return backend.is_equal(tuple(a), tuple(b))
    if kind == "is_disjoint":
        return backend.is_disjoint(tuple(a), tuple(b))
    if kind == "sample_point":
        from ..presburger.setmap import Set

        arity = a[0].n_vars if a else 0
        names = tuple(f"d{i}" for i in range(arity))
        set_like = Set(names, tuple(a), _clean_input=False)
        return backend.sample_point(
            set_like, seed=int(query.get("seed", 0)), limit=int(query.get("limit", 4096))
        )
    raise ValueError(f"unknown query kind {kind!r}")
