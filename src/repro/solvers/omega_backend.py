"""The omega core wrapped as a :class:`SolverBackend` (the default).

This backend delegates to the *same* memoized helpers the inline Presburger
path uses (``_union_subtract`` / ``_union_intersect`` /
``omega.is_feasible`` and the default sampling body), so activating it
changes nothing about any verdict, any cache key, or any operation-cache
traffic beyond the query counters — ``--backend omega`` is byte-identical
to the pre-backend code path by construction.
"""

from __future__ import annotations

from typing import Any, Sequence, Tuple

from ..presburger import omega
from ..presburger.conjunct import Conjunct

# The memoized union helpers are deliberately the private spellings from
# setmap: reusing them (rather than re-deriving the algorithms) is what makes
# "OmegaBackend == inline path" true by construction.
from ..presburger.setmap import _union_intersect, _union_subtract

from .base import SolverBackend

__all__ = ["OmegaBackend"]


class OmegaBackend(SolverBackend):
    """Fourier–Motzkin / omega-test decision procedure (exact, stdlib-only)."""

    name = "omega"

    def is_feasible(self, conjunct: Conjunct) -> bool:
        self._count("is_feasible")
        return omega.is_feasible(conjunct)

    def is_subset(self, a: Sequence[Conjunct], b: Sequence[Conjunct]) -> bool:
        self._count("is_subset")
        return not _union_subtract(tuple(a), tuple(b))

    def is_equal(self, a: Sequence[Conjunct], b: Sequence[Conjunct]) -> bool:
        self._count("is_equal")
        a, b = tuple(a), tuple(b)
        return not _union_subtract(a, b) and not _union_subtract(b, a)

    def is_disjoint(self, a: Sequence[Conjunct], b: Sequence[Conjunct]) -> bool:
        self._count("is_disjoint")
        return not _union_intersect(tuple(a), tuple(b))

    def sample_point(self, set_like: Any, seed: int = 0, limit: int = 4096) -> Tuple[int, ...]:
        self._count("sample_point")
        return set_like._sample_point_default(seed=seed, limit=limit)
