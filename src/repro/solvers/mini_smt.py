"""A stdlib interpreter for the SMT-LIB2 subset this package emits.

``--backend smtlib`` should work on a bare install, where no ``z3`` or
``cvc5`` binary exists.  This module is the ``builtin`` solver that makes
that true: it parses the scripts produced by :mod:`repro.solvers.smtlib`
(``LIA``: integer constants, linear atoms, ``and`` / ``not`` /
``exists``), reconstructs the constraint systems as
:class:`~repro.presburger.conjunct.Conjunct` unions, and decides
satisfiability with the omega core.

That makes the builtin cross-check a genuine *round-trip* test — emission,
text, parsing, reconstruction and the algebraic subset/complement reduction
all have to agree with the inline Presburger path for the verdicts to match
— while an external ``--smt-solver`` binary upgrades it to a fully
independent second opinion.

Also runnable as a subprocess solver (the same contract as ``z3 file.smt2``)::

    python -m repro.solvers.mini_smt script.smt2
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..presburger import hooks as _hooks
from ..presburger import omega
from ..presburger.conjunct import Conjunct
from ..presburger.errors import UnboundedSetError, UnsupportedOperationError
from ..presburger.setmap import Set, _clean

from .base import SolverError

__all__ = ["SmtResult", "solve_text", "parse_sexprs"]

Sexpr = Union[str, List["Sexpr"]]

_ATOM_OPS = ("=", ">=", "<=", ">", "<")


# --------------------------------------------------------------------------- #
# S-expression reader
# --------------------------------------------------------------------------- #
def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    i, n = 0, len(text)
    while i < n:
        char = text[i]
        if char in "()":
            tokens.append(char)
            i += 1
        elif char == ";":
            while i < n and text[i] != "\n":
                i += 1
        elif char.isspace():
            i += 1
        else:
            j = i
            while j < n and not text[j].isspace() and text[j] not in "();":
                j += 1
            tokens.append(text[i:j])
            i = j
    return tokens


def parse_sexprs(text: str) -> List[Sexpr]:
    """Parse *text* into a list of nested lists/atom strings."""
    tokens = _tokenize(text)
    forms: List[Sexpr] = []
    stack: List[List[Sexpr]] = []
    for token in tokens:
        if token == "(":
            stack.append([])
        elif token == ")":
            if not stack:
                raise SolverError("unbalanced ')' in SMT input")
            done = stack.pop()
            (stack[-1] if stack else forms).append(done)
        else:
            (stack[-1] if stack else forms).append(token)
    if stack:
        raise SolverError("unbalanced '(' in SMT input")
    return forms


# --------------------------------------------------------------------------- #
# Linear-term evaluation
# --------------------------------------------------------------------------- #
def _const_value(expr: Sexpr, env: Dict[str, int]) -> Optional[int]:
    """The integer value of a constant expression, or ``None`` if symbolic."""
    if isinstance(expr, str):
        if expr in env:
            return None
        try:
            return int(expr)
        except ValueError:
            raise SolverError(f"unknown symbol {expr!r}")
    if not expr:
        raise SolverError("empty term")
    op = expr[0]
    values = [_const_value(arg, env) for arg in expr[1:]]
    if any(value is None for value in values):
        return None
    if op == "-":
        if len(values) == 1:
            return -values[0]
        return values[0] - sum(values[1:])
    if op == "+":
        return sum(values)
    if op == "*":
        product = 1
        for value in values:
            product *= value
        return product
    raise SolverError(f"unsupported operator {op!r} in term")


def _add_term(expr: Sexpr, scale: int, vector: List[int], env: Dict[str, int]) -> None:
    """Accumulate ``scale * expr`` into the dense coefficient *vector*."""
    if isinstance(expr, str):
        if expr in env:
            vector[env[expr]] += scale
            return
        try:
            vector[-1] += scale * int(expr)
        except ValueError:
            raise SolverError(f"unknown symbol {expr!r}")
        return
    if not expr:
        raise SolverError("empty term")
    op = expr[0]
    if op == "+":
        for arg in expr[1:]:
            _add_term(arg, scale, vector, env)
    elif op == "-":
        if len(expr) == 2:
            _add_term(expr[1], -scale, vector, env)
        else:
            _add_term(expr[1], scale, vector, env)
            for arg in expr[2:]:
                _add_term(arg, -scale, vector, env)
    elif op == "*":
        constant = 1
        symbolic: Optional[Sexpr] = None
        for arg in expr[1:]:
            value = _const_value(arg, env)
            if value is not None:
                constant *= value
            elif symbolic is None:
                symbolic = arg
            else:
                raise SolverError("nonlinear product is outside LIA")
        if symbolic is None:
            vector[-1] += scale * constant
        else:
            _add_term(symbolic, scale * constant, vector, env)
    else:
        raise SolverError(f"unsupported operator {op!r} in term")


def _atom_vector(expr: List[Sexpr], env: Dict[str, int], width: int) -> Tuple[str, Tuple[int, ...]]:
    """One relational atom as ``("eq" | "ineq", dense vector)`` (``>= 0`` form)."""
    if len(expr) != 3:
        raise SolverError(f"expected binary atom, got {expr!r}")
    op, left, right = expr
    vector = [0] * (width + 1)
    _add_term(left, 1, vector, env)
    _add_term(right, -1, vector, env)
    if op == "=":
        return "eq", tuple(vector)
    if op == ">=":
        return "ineq", tuple(vector)
    if op == "<=":
        return "ineq", tuple(-x for x in vector)
    if op == ">":
        vector[-1] -= 1
        return "ineq", tuple(vector)
    if op == "<":
        negated = [-x for x in vector]
        negated[-1] -= 1
        return "ineq", tuple(negated)
    raise SolverError(f"unsupported atom {op!r}")


# --------------------------------------------------------------------------- #
# Formula → union of conjuncts
# --------------------------------------------------------------------------- #
def _is_atom(expr: Sexpr) -> bool:
    return isinstance(expr, list) and bool(expr) and expr[0] in _ATOM_OPS


def _intersect_unions(
    left: Tuple[Conjunct, ...], right: Tuple[Conjunct, ...]
) -> Tuple[Conjunct, ...]:
    return _clean(omega.conjunct_intersect(a, b) for a in left for b in right)


def _negate_union(pieces: Sequence[Conjunct], n_public: int) -> Tuple[Conjunct, ...]:
    """``¬(C1 ∨ ... ∨ Ck)`` over the public space, via omega complement."""
    result: Tuple[Conjunct, ...] = (Conjunct.universe(n_public),)
    for piece in pieces:
        negations = tuple(omega.complement(piece))
        result = _clean(
            omega.conjunct_intersect(kept, negation)
            for kept in result
            for negation in negations
        )
        if not result:
            break
    return result


def _to_union(
    expr: Sexpr, columns: List[str], env: Dict[str, int], n_public: int
) -> Tuple[Conjunct, ...]:
    """The set of solutions of *expr* as a union of conjuncts.

    Conjuncts are over ``n_public`` public columns (the script's declared
    constants, in declaration order); ``exists``-bound variables become
    existential (div) columns.
    """
    if expr == "true":
        return (Conjunct.universe(n_public),)
    if expr == "false":
        return ()
    if _is_atom(expr):
        return _atoms_to_union([expr], columns, env, n_public)
    if not isinstance(expr, list) or not expr:
        raise SolverError(f"unsupported formula {expr!r}")
    op = expr[0]
    if op == "and":
        atoms = [child for child in expr[1:] if _is_atom(child) or child in ("true", "false")]
        complex_children = [
            child for child in expr[1:] if not (_is_atom(child) or child in ("true", "false"))
        ]
        union = _atoms_to_union(atoms, columns, env, n_public)
        for child in complex_children:
            union = _intersect_unions(union, _to_union(child, columns, env, n_public))
            if not union:
                break
        return union
    if op == "or":
        pieces: List[Conjunct] = []
        for child in expr[1:]:
            pieces.extend(_to_union(child, columns, env, n_public))
        return _clean(pieces)
    if op == "not":
        if len(expr) != 2:
            raise SolverError("'not' takes one argument")
        if len(columns) != n_public:
            raise SolverError("negation under a quantifier is not supported")
        return _negate_union(_to_union(expr[1], columns, env, n_public), n_public)
    if op == "exists":
        if len(expr) != 3:
            raise SolverError("'exists' takes a binder list and a body")
        bound = [binder[0] for binder in expr[1]]
        new_columns = columns + bound
        new_env = dict(env)
        for name in bound:
            if name in new_env:
                raise SolverError(f"shadowed binder {name!r} is not supported")
            new_env[name] = len(columns) + bound.index(name)
        return _to_union(expr[2], new_columns, new_env, n_public)
    raise SolverError(f"unsupported formula operator {op!r}")


def _atoms_to_union(
    atoms: Sequence[Sexpr], columns: List[str], env: Dict[str, int], n_public: int
) -> Tuple[Conjunct, ...]:
    """A conjunction of relational atoms at one scope as a single conjunct."""
    if "false" in atoms:
        return ()
    width = len(columns)
    eqs: List[Tuple[int, ...]] = []
    ineqs: List[Tuple[int, ...]] = []
    for atom in atoms:
        if atom == "true":
            continue
        kind, vector = _atom_vector(atom, env, width)
        (eqs if kind == "eq" else ineqs).append(vector)
    conjunct = Conjunct(n_public, width - n_public, eqs=tuple(eqs), ineqs=tuple(ineqs))
    return _clean([conjunct])


# --------------------------------------------------------------------------- #
# Script execution
# --------------------------------------------------------------------------- #
@dataclass
class SmtResult:
    """Outcome of one script: verdict, and model values if requested."""

    status: str
    values: Optional[Tuple[int, ...]] = None
    names: Tuple[str, ...] = ()


def solve_text(text: str) -> SmtResult:
    """Execute an SMT-LIB2 script and return its ``(check-sat)`` verdict.

    Supports exactly the command and formula subset the emitter produces
    (plus ``or`` and chained ``declare-fun`` for robustness); anything else
    raises :class:`~repro.solvers.base.SolverError`.
    """
    declared: List[str] = []
    asserts: List[Sexpr] = []
    wanted: Tuple[str, ...] = ()
    check_requested = False
    for form in parse_sexprs(text):
        if not isinstance(form, list) or not form:
            raise SolverError(f"unsupported top-level form {form!r}")
        command = form[0]
        if command in ("set-logic", "set-option", "set-info", "exit", "push", "pop"):
            continue
        if command == "declare-const":
            declared.append(form[1])
        elif command == "declare-fun":
            if len(form) == 4 and form[2] == []:
                declared.append(form[1])
            else:
                raise SolverError("only 0-ary declare-fun is supported")
        elif command == "assert":
            asserts.append(form[1])
        elif command == "check-sat":
            check_requested = True
        elif command == "get-value":
            wanted = tuple(form[1])
        else:
            raise SolverError(f"unsupported command {command!r}")
    if not check_requested:
        check_requested = True  # headless scripts (commands=False) still want a verdict

    env = {name: index for index, name in enumerate(declared)}
    n_public = len(declared)
    union: Tuple[Conjunct, ...] = (Conjunct.universe(n_public),)
    for formula in asserts:
        union = _intersect_unions(union, _to_union(formula, list(declared), env, n_public))
        if not union:
            break
    # _clean already dropped infeasible pieces, so non-empty means sat.
    status = "sat" if union else "unsat"
    if status != "sat" or not wanted:
        return SmtResult(status=status, names=wanted)
    point = _model_point(declared, union)
    for name in wanted:
        if name not in env:
            raise SolverError(f"get-value of undeclared symbol {name!r}")
    return SmtResult(
        status=status,
        values=tuple(point[env[name]] for name in wanted),
        names=wanted,
    )


def _model_point(declared: Sequence[str], union: Tuple[Conjunct, ...]) -> Tuple[int, ...]:
    """A concrete solution of the final union, via the inline sampling path."""
    names = tuple(declared) if declared else ()
    with _hooks.suspended():
        set_like = Set(names, union, _clean_input=False)
        try:
            return set_like.sample_point(seed=0)
        except (UnboundedSetError, UnsupportedOperationError, ValueError) as error:
            raise SolverError(f"builtin solver could not extract a model: {error}") from error


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 1:
        print("usage: python -m repro.solvers.mini_smt script.smt2", file=sys.stderr)
        return 2
    with open(argv[0], "r", encoding="utf-8") as handle:
        text = handle.read()
    try:
        result = solve_text(text)
    except SolverError as error:
        print(f"(error \"{error}\")")
        return 1
    print(result.status)
    if result.values is not None:
        rendered = " ".join(
            f"({name} {value if value >= 0 else f'(- {-value})'})"
            for name, value in zip(result.names, result.values)
        )
        print(f"({rendered})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
