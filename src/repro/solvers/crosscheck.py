"""Differential execution of two decision backends on every query.

The PR 4 scenario engine compares the checker against an interpreter
oracle; this backend applies the same idea one layer down and compares two
decision procedures against each other.  Every query runs on both backends;
agreement and divergence are counted in telemetry
(``solvers.crosscheck.agreements`` / ``.disagreements``) and a divergence
raises :class:`~repro.solvers.base.BackendDisagreement` with the serialized
query, so the exact constraint system that split the solvers can be
replayed offline (:func:`~repro.solvers.base.replay_query`).

``sample_point`` is cross-checked by *membership*, not by point identity:
both backends may legitimately return different witnesses of the same set,
so the secondary verifies that the primary's point satisfies the
constraints instead of re-deriving it.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

from ..presburger.conjunct import Conjunct
from ..telemetry import METRICS

from .base import BackendDisagreement, SolverBackend, serialize_query

__all__ = ["CrossCheckBackend"]


class CrossCheckBackend(SolverBackend):
    """Run *primary* and *secondary* on each query; alarm on any divergence."""

    name = "crosscheck"

    def __init__(self, primary: SolverBackend, secondary: SolverBackend) -> None:
        super().__init__()
        self.primary = primary
        self.secondary = secondary

    # ------------------------------------------------------------------ #
    @property
    def query_counts(self) -> Dict[str, int]:  # type: ignore[override]
        """Own counters merged with both children's (distinct name prefixes)."""
        merged = dict(self._own_counts)
        merged.update(self.primary.query_counts)
        merged.update(self.secondary.query_counts)
        return merged

    @query_counts.setter
    def query_counts(self, value: Dict[str, int]) -> None:
        self._own_counts = value

    def _count(self, kind: str) -> None:
        # The merged `query_counts` view is a copy; counters live in
        # `_own_counts` so increments are not lost.
        key = f"{self.name}.{kind}"
        self._own_counts[key] = self._own_counts.get(key, 0) + 1

    # ------------------------------------------------------------------ #
    def _compare(self, kind: str, first: Any, second: Any, query: Dict[str, Any]) -> Any:
        if first == second:
            self._count("agreements")
            if METRICS.enabled:
                METRICS.inc("solvers.crosscheck.agreements")
            return first
        self._count("disagreements")
        if METRICS.enabled:
            METRICS.inc("solvers.crosscheck.disagreements")
        raise BackendDisagreement(
            query, self.primary.name, self.secondary.name, first, second
        )

    def is_feasible(self, conjunct: Conjunct) -> bool:
        return self._compare(
            "is_feasible",
            self.primary.is_feasible(conjunct),
            self.secondary.is_feasible(conjunct),
            serialize_query("is_feasible", (conjunct,)),
        )

    def is_subset(self, a: Sequence[Conjunct], b: Sequence[Conjunct]) -> bool:
        return self._compare(
            "is_subset",
            self.primary.is_subset(a, b),
            self.secondary.is_subset(a, b),
            serialize_query("is_subset", a, b),
        )

    def is_equal(self, a: Sequence[Conjunct], b: Sequence[Conjunct]) -> bool:
        return self._compare(
            "is_equal",
            self.primary.is_equal(a, b),
            self.secondary.is_equal(a, b),
            serialize_query("is_equal", a, b),
        )

    def is_disjoint(self, a: Sequence[Conjunct], b: Sequence[Conjunct]) -> bool:
        return self._compare(
            "is_disjoint",
            self.primary.is_disjoint(a, b),
            self.secondary.is_disjoint(a, b),
            serialize_query("is_disjoint", a, b),
        )

    def sample_point(self, set_like: Any, seed: int = 0, limit: int = 4096) -> Tuple[int, ...]:
        point = self.primary.sample_point(set_like, seed=seed, limit=limit)
        member = any(
            self.secondary.is_feasible(conjunct.substitute_vars(list(point)))
            for conjunct in set_like.conjuncts
        )
        query = serialize_query(
            "sample_point", set_like.conjuncts, seed=seed, limit=limit
        )
        self._compare("sample_point", True, member, query)
        return point
