"""SMT-LIB2 (``LIA``) emission and the subprocess / in-process SMT backends.

The mapping from the Presburger layer onto SMT-LIB2:

* every public dimension of a :class:`~repro.presburger.conjunct.Conjunct`
  becomes a free ``Int`` constant ``x0, x1, ...``;
* the conjunct's existential (divisibility witness) columns become either
  free constants ``d0, ...`` (feasibility — satisfiability is preserved) or
  ``(exists ((e0 Int) ...) ...)`` binders (when the conjunct appears under a
  negation, where the quantifier is semantically required);
* equalities ``v · (x, d, 1) = 0`` become ``(= affine 0)``, inequalities
  become ``(>= affine 0)`` — divisibility/mod constraints need no special
  casing because they are already linear equalities over witness columns;
* ``a ⊆ b`` over unions is one UNSAT check per conjunct ``Ai`` of ``a``:
  ``Ai ∧ ¬∃(B1) ∧ ... ∧ ¬∃(Bm)``, and disjointness is one SAT check per
  pair ``(Ai, Bj)``.

:class:`SmtLibBackend` feeds the scripts to any SMT-LIB2 solver binary
(z3, cvc5) via a subprocess, or to the bundled stdlib interpreter
:mod:`repro.solvers.mini_smt` when no binary is available (``builtin``).
:class:`Z3Backend` reuses the same scripts through the optional
``z3-solver`` Python module, in process.  Query results are memoized in the
operation cache under keys qualified by the solver command, so answers can
never alias across solvers.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import tempfile
from typing import Any, List, Optional, Sequence, Tuple

from ..presburger import opcache as _opcache
from ..presburger.conjunct import Conjunct

from .base import SolverBackend, SolverError, SolverUnavailableError

__all__ = [
    "SmtLibBackend",
    "Z3Backend",
    "resolve_solver_command",
    "conjunct_formula",
    "feasibility_script",
    "subset_scripts",
    "disjoint_scripts",
]


# --------------------------------------------------------------------------- #
# Emission
# --------------------------------------------------------------------------- #
def _int(value: int) -> str:
    """An SMT-LIB integer literal (negatives are ``(- n)``, not ``-n``)."""
    return str(value) if value >= 0 else f"(- {-value})"


def _affine(vector: Sequence[int], symbols: Sequence[str]) -> str:
    """``(+ (* c0 s0) ... constant)`` for a dense constraint vector."""
    terms: List[str] = []
    for coefficient, symbol in zip(vector, symbols):
        if coefficient == 0:
            continue
        if coefficient == 1:
            terms.append(symbol)
        elif coefficient == -1:
            terms.append(f"(- {symbol})")
        else:
            terms.append(f"(* {_int(coefficient)} {symbol})")
    constant = vector[-1]
    if constant != 0 or not terms:
        terms.append(_int(constant))
    if len(terms) == 1:
        return terms[0]
    return "(+ " + " ".join(terms) + ")"


def conjunct_formula(conjunct: Conjunct, var_symbols: Sequence[str], div_prefix: str = "d") -> Tuple[str, List[str]]:
    """The quantifier-free body of *conjunct* and its existential symbol names.

    Returns ``(body, div_symbols)``; the caller decides whether the
    existential columns are free constants (feasibility) or ``exists``-bound
    (negation).
    """
    if len(var_symbols) != conjunct.n_vars:
        raise ValueError("symbol count does not match conjunct arity")
    div_symbols = [f"{div_prefix}{i}" for i in range(conjunct.n_div)]
    symbols = list(var_symbols) + div_symbols
    atoms = [f"(= {_affine(eq, symbols)} 0)" for eq in conjunct.eqs]
    atoms += [f"(>= {_affine(ineq, symbols)} 0)" for ineq in conjunct.ineqs]
    if not atoms:
        body = "true"
    elif len(atoms) == 1:
        body = atoms[0]
    else:
        body = "(and " + " ".join(atoms) + ")"
    return body, div_symbols


def _exists(body: str, div_symbols: Sequence[str]) -> str:
    if not div_symbols:
        return body
    binders = " ".join(f"({name} Int)" for name in div_symbols)
    return f"(exists ({binders}) {body})"


def _declares(symbols: Sequence[str]) -> List[str]:
    return [f"(declare-const {name} Int)" for name in symbols]


def _script(lines: Sequence[str], *, commands: bool = True, get_values: Sequence[str] = ()) -> str:
    header = ["(set-logic LIA)"]
    if commands and get_values:
        header.insert(0, "(set-option :produce-models true)")
    footer: List[str] = []
    if commands:
        footer.append("(check-sat)")
        if get_values:
            footer.append("(get-value (" + " ".join(get_values) + "))")
    return "\n".join(header + list(lines) + footer) + "\n"


def feasibility_script(conjunct: Conjunct, *, get_model: bool = False, commands: bool = True) -> str:
    """A SAT check of one conjunct (optionally extracting its public point)."""
    var_symbols = [f"x{i}" for i in range(conjunct.n_vars)]
    body, div_symbols = conjunct_formula(conjunct, var_symbols)
    lines = _declares(var_symbols + div_symbols) + [f"(assert {body})"]
    return _script(lines, commands=commands, get_values=var_symbols if get_model else ())


def subset_scripts(a: Sequence[Conjunct], b: Sequence[Conjunct], *, commands: bool = True) -> List[str]:
    """One script per conjunct of *a*; ``a ⊆ b`` iff every script is UNSAT."""
    scripts: List[str] = []
    for left in a:
        var_symbols = [f"x{i}" for i in range(left.n_vars)]
        left_body, left_divs = conjunct_formula(left, var_symbols, div_prefix="d")
        lines = _declares(var_symbols + left_divs) + [f"(assert {left_body})"]
        for right in b:
            right_body, right_divs = conjunct_formula(right, var_symbols, div_prefix="e")
            lines.append(f"(assert (not {_exists(right_body, right_divs)}))")
        scripts.append(_script(lines, commands=commands))
    return scripts


def disjoint_scripts(a: Sequence[Conjunct], b: Sequence[Conjunct], *, commands: bool = True) -> List[str]:
    """One script per pair; the unions are disjoint iff every script is UNSAT."""
    scripts: List[str] = []
    for left in a:
        var_symbols = [f"x{i}" for i in range(left.n_vars)]
        left_body, left_divs = conjunct_formula(left, var_symbols, div_prefix="d")
        for right in b:
            right_body, right_divs = conjunct_formula(right, var_symbols, div_prefix="e")
            lines = _declares(var_symbols + left_divs + right_divs)
            lines.append(f"(assert {left_body})")
            lines.append(f"(assert {right_body})")
            scripts.append(_script(lines, commands=commands))
    return scripts


# --------------------------------------------------------------------------- #
# Solver resolution
# --------------------------------------------------------------------------- #
def resolve_solver_command(spec: Optional[str] = None) -> str:
    """The solver command to use: explicit *spec* > ``z3`` > ``cvc5`` > ``builtin``.

    ``builtin`` selects the in-process stdlib interpreter
    (:mod:`repro.solvers.mini_smt`) — always available, so ``--backend
    smtlib`` and ``--backend crosscheck`` work on a bare install.
    """
    if spec:
        return spec
    for candidate in ("z3", "cvc5"):
        if shutil.which(candidate):
            return candidate
    return "builtin"


def _run_solver(command: str, script: str) -> str:
    """Feed *script* to the solver binary and return its stdout."""
    argv = command.split()
    with tempfile.NamedTemporaryFile("w", suffix=".smt2", delete=False) as handle:
        handle.write(script)
        path = handle.name
    try:
        completed = subprocess.run(
            argv + [path], capture_output=True, text=True, timeout=300
        )
    except FileNotFoundError as error:
        raise SolverUnavailableError(f"solver binary not found: {argv[0]!r}") from error
    except subprocess.TimeoutExpired as error:
        raise SolverError(f"solver {argv[0]!r} timed out") from error
    finally:
        try:
            os.unlink(path)
        except OSError:
            pass
    output = completed.stdout
    if "sat" not in output:
        raise SolverError(
            f"solver {argv[0]!r} produced no verdict "
            f"(exit {completed.returncode}): {completed.stderr.strip()[:200]}"
        )
    return output


def _parse_values(output_tail: str, symbols: Sequence[str]) -> Tuple[int, ...]:
    """Extract ``(get-value ...)`` integers from solver output."""
    from .mini_smt import parse_sexprs

    forms = parse_sexprs(output_tail)
    values = {}
    for form in forms:
        if not isinstance(form, list):
            continue
        for pair in form:
            if isinstance(pair, list) and len(pair) == 2:
                name, value = pair
                values[name] = _sexpr_int(value)
    try:
        return tuple(values[symbol] for symbol in symbols)
    except KeyError as error:
        raise SolverError(f"solver model is missing {error.args[0]!r}") from error


def _sexpr_int(value: Any) -> int:
    if isinstance(value, list):
        if len(value) == 2 and value[0] == "-":
            return -_sexpr_int(value[1])
        raise SolverError(f"unexpected model value {value!r}")
    return int(value)


# --------------------------------------------------------------------------- #
# Backends
# --------------------------------------------------------------------------- #
class SmtLibBackend(SolverBackend):
    """Decide queries by emitting SMT-LIB2 and running an external solver."""

    name = "smtlib"

    def __init__(self, solver_cmd: Optional[str] = None) -> None:
        super().__init__()
        self.solver_cmd = resolve_solver_command(solver_cmd)
        self._tag = f"{self.name}:{self.solver_cmd}"

    # ---- raw solving (memoized on the script text) -------------------- #
    def _solve(self, script: str, model_symbols: Sequence[str] = ()) -> Tuple[str, Optional[Tuple[int, ...]]]:
        if self.solver_cmd == "builtin":
            from . import mini_smt

            result = mini_smt.solve_text(script)
            return result.status, result.values
        output = _run_solver(self.solver_cmd, script)
        lines = [line.strip() for line in output.splitlines() if line.strip()]
        status = next((line for line in lines if line in ("sat", "unsat", "unknown")), None)
        if status is None:
            raise SolverError(f"unparsable solver output: {output[:200]!r}")
        if status == "unknown":
            raise SolverError(f"solver {self.solver_cmd!r} returned 'unknown'")
        values: Optional[Tuple[int, ...]] = None
        if status == "sat" and model_symbols:
            tail = output.split(status, 1)[1]
            values = _parse_values(tail, model_symbols)
        return status, values

    def _query(self, script: str, model_symbols: Sequence[str] = ()) -> Tuple[str, Optional[Tuple[int, ...]]]:
        return _opcache.memoized(
            "smt.query", (self._tag, script, tuple(model_symbols)),
            lambda: self._solve(script, model_symbols),
        )

    def _is_sat(self, script: str) -> bool:
        return self._query(script)[0] == "sat"

    # ---- the decision queries ----------------------------------------- #
    def is_feasible(self, conjunct: Conjunct) -> bool:
        self._count("is_feasible")
        return self._is_sat(feasibility_script(conjunct))

    def _subset(self, a: Sequence[Conjunct], b: Sequence[Conjunct]) -> bool:
        return all(not self._is_sat(script) for script in subset_scripts(a, b))

    def is_subset(self, a: Sequence[Conjunct], b: Sequence[Conjunct]) -> bool:
        self._count("is_subset")
        return self._subset(a, b)

    def is_equal(self, a: Sequence[Conjunct], b: Sequence[Conjunct]) -> bool:
        self._count("is_equal")
        return self._subset(a, b) and self._subset(b, a)

    def is_disjoint(self, a: Sequence[Conjunct], b: Sequence[Conjunct]) -> bool:
        self._count("is_disjoint")
        return all(not self._is_sat(script) for script in disjoint_scripts(a, b))

    def sample_point(self, set_like: Any, seed: int = 0, limit: int = 4096) -> Tuple[int, ...]:
        self._count("sample_point")
        for conjunct in set_like.conjuncts:
            symbols = [f"x{i}" for i in range(conjunct.n_vars)]
            status, values = self._query(
                feasibility_script(conjunct, get_model=True), tuple(symbols)
            )
            if status == "sat":
                if values is None:
                    raise SolverError("solver reported sat but produced no model")
                return tuple(values)
        raise ValueError("cannot sample a point from an empty set")


class Z3Backend(SmtLibBackend):
    """In-process variant through the optional ``z3-solver`` module.

    Shares the emission layer with :class:`SmtLibBackend` (scripts are
    parsed with ``parse_smt2_string`` instead of shelled out), so the two
    agree by construction on what is being asked.  Constructed only when
    ``import z3`` succeeds; the default install never requires it.
    """

    name = "z3"

    def __init__(self) -> None:
        try:
            import z3
        except ImportError as error:
            raise SolverUnavailableError(
                "the 'z3' backend needs the optional z3-solver package "
                "(pip install z3-solver); use --backend smtlib for the "
                "subprocess/builtin path"
            ) from error
        SolverBackend.__init__(self)
        self._z3 = z3
        self.solver_cmd = "z3-inprocess"
        self._tag = f"{self.name}:in-process"

    def _solve(self, script: str, model_symbols: Sequence[str] = ()) -> Tuple[str, Optional[Tuple[int, ...]]]:
        z3 = self._z3
        solver = z3.Solver()
        solver.add(z3.parse_smt2_string(script))
        verdict = solver.check()
        if verdict == z3.sat:
            values: Optional[Tuple[int, ...]] = None
            if model_symbols:
                model = solver.model()
                values = tuple(
                    model.eval(z3.Int(symbol), model_completion=True).as_long()
                    for symbol in model_symbols
                )
            return "sat", values
        if verdict == z3.unsat:
            return "unsat", None
        raise SolverError("z3 returned 'unknown'")

    def is_feasible(self, conjunct: Conjunct) -> bool:
        self._count("is_feasible")
        return self._is_sat(feasibility_script(conjunct, commands=False))

    def _subset(self, a: Sequence[Conjunct], b: Sequence[Conjunct]) -> bool:
        return all(
            not self._is_sat(script) for script in subset_scripts(a, b, commands=False)
        )

    def is_disjoint(self, a: Sequence[Conjunct], b: Sequence[Conjunct]) -> bool:
        self._count("is_disjoint")
        return all(
            not self._is_sat(script) for script in disjoint_scripts(a, b, commands=False)
        )

    def sample_point(self, set_like: Any, seed: int = 0, limit: int = 4096) -> Tuple[int, ...]:
        self._count("sample_point")
        for conjunct in set_like.conjuncts:
            symbols = [f"x{i}" for i in range(conjunct.n_vars)]
            status, values = self._query(
                feasibility_script(conjunct, commands=False), tuple(symbols)
            )
            if status == "sat":
                if values is None:
                    raise SolverError("z3 reported sat but produced no model")
                return tuple(values)
        raise ValueError("cannot sample a point from an empty set")
