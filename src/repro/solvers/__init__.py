"""Pluggable decision-procedure backends for the Presburger layer.

The paper's verdicts ultimately rest on one decision procedure: the
hand-rolled omega / Fourier–Motzkin core of :mod:`repro.presburger`.  This
package second-sources those decisions behind a small protocol:

* :class:`OmegaBackend` — the existing omega core (default; activating it
  is byte-identical to the inline path);
* :class:`SmtLibBackend` — compiles the queries to SMT-LIB2 ``LIA`` text
  and solves via any external solver binary (z3, cvc5) or the bundled
  stdlib interpreter (:mod:`repro.solvers.mini_smt`, ``builtin``);
* :class:`Z3Backend` — the same scripts through the optional ``z3-solver``
  Python module, in process;
* :class:`CrossCheckBackend` — runs two backends on every query and raises
  :class:`BackendDisagreement` (carrying the serialized query, replayable
  with :func:`replay_query`) on any divergence.

Selection travels as ``CheckOptions.backend`` (``--backend`` on the CLI)
and is folded into the options fingerprint, so verdicts never alias across
backends in any cache.  Activation is scoped:
:func:`use_backend` installs the backend on the Presburger layer's
context-local hook for the duration of one check.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional, Tuple

from ..presburger import hooks as _hooks

from .base import (
    BackendDisagreement,
    SolverBackend,
    SolverError,
    SolverUnavailableError,
    conjunct_from_dict,
    conjunct_to_dict,
    replay_query,
    serialize_query,
)
from .crosscheck import CrossCheckBackend
from .omega_backend import OmegaBackend
from .smtlib import SmtLibBackend, Z3Backend, resolve_solver_command

__all__ = [
    "BACKEND_NAMES",
    "BackendDisagreement",
    "CrossCheckBackend",
    "OmegaBackend",
    "SmtLibBackend",
    "SolverBackend",
    "SolverError",
    "SolverUnavailableError",
    "Z3Backend",
    "available_backends",
    "conjunct_from_dict",
    "conjunct_to_dict",
    "get_backend",
    "replay_query",
    "resolve_solver_command",
    "serialize_query",
    "use_backend",
]

#: Every selectable ``CheckOptions.backend`` / ``--backend`` value.
BACKEND_NAMES: Tuple[str, ...] = ("omega", "smtlib", "z3", "crosscheck")


def get_backend(name: str, smt_solver: Optional[str] = None) -> SolverBackend:
    """Construct the backend *name* (a fresh instance with zeroed counters).

    ``smt_solver`` picks the external solver command for the SMT-based
    backends (default: ``z3`` > ``cvc5`` on PATH, else the in-process
    ``builtin`` interpreter).  ``crosscheck`` pairs the omega core with the
    SMT path.  Raises :class:`SolverUnavailableError` when the requested
    backend cannot run here and :class:`ValueError` for unknown names.
    """
    if name == "omega":
        return OmegaBackend()
    if name == "smtlib":
        return SmtLibBackend(smt_solver)
    if name == "z3":
        return Z3Backend()
    if name == "crosscheck":
        return CrossCheckBackend(OmegaBackend(), SmtLibBackend(smt_solver))
    raise ValueError(f"unknown backend {name!r} (expected one of {BACKEND_NAMES})")


def available_backends() -> Tuple[str, ...]:
    """The backend names that can actually be constructed on this machine."""
    names = ["omega", "smtlib", "crosscheck"]
    try:
        import z3  # noqa: F401

        names.insert(2, "z3")
    except ImportError:
        pass
    return tuple(names)


@contextlib.contextmanager
def use_backend(
    name: str, smt_solver: Optional[str] = None
) -> Iterator[Optional[SolverBackend]]:
    """Route Presburger decision queries to backend *name* within the block.

    Yields the live backend instance (for counter inspection), or ``None``
    for ``"omega"`` — the default backend *is* the inline path, so nothing
    is installed and the pre-backend behaviour is preserved exactly,
    including zero counter overhead.
    """
    if name == "omega":
        yield None
        return
    backend = get_backend(name, smt_solver)
    with _hooks.activate(backend):
        yield backend
