"""Concrete replay: execute both programs and pin down the divergence.

The checker decides equivalence symbolically; this module re-decides it
*operationally* on synthesized inputs (the same deterministic pseudo-random
providers the scenario oracle uses, so witness seeds are interchangeable
between the two layers).  A replay yields

* the full map of diverging cells between the two output environments,
* the first diverging cell in deterministic ``(array, index)`` order, with
  the labels of the statements that wrote it on each side (recorded by the
  traced interpreter), and
* for any concrete cell, its **dependency path** through an ADDG: element →
  defining statement → read element → … down to the input arrays, following
  the statements' dependency mappings exactly.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..addg.graph import ADDG
from ..lang import Program, random_input_provider, run_program_traced
from ..lang.errors import InterpreterError
from ..presburger import Set
from ..presburger.errors import PresburgerError
from .report import ReplayResult, WitnessCell

__all__ = ["dependency_path", "divergent_cells", "replay_divergence"]

#: index tuple -> (original value | None, transformed value | None)
CellDiffs = Dict[str, Dict[Tuple[int, ...], Tuple[Optional[int], Optional[int]]]]


def divergent_cells(
    original_outputs: Mapping[str, Mapping[Tuple[int, ...], int]],
    transformed_outputs: Mapping[str, Mapping[Tuple[int, ...], int]],
) -> CellDiffs:
    """Every output cell on which the two environments disagree.

    Cells defined on one side only are diverging (a missing value is
    observable behaviour in the allowed class) and carry ``None`` for the
    side that never wrote them.
    """
    diffs: CellDiffs = {}
    for array in sorted(set(original_outputs) | set(transformed_outputs)):
        first = dict(original_outputs.get(array, {}))
        second = dict(transformed_outputs.get(array, {}))
        cells = {}
        for index in set(first) | set(second):
            left, right = first.get(index), second.get(index)
            if left != right:
                cells[index] = (left, right)
        if cells:
            diffs[array] = cells
    return diffs


def _first_cell(diffs: CellDiffs) -> Optional[Tuple[str, Tuple[int, ...]]]:
    best: Optional[Tuple[str, Tuple[int, ...]]] = None
    for array, cells in diffs.items():
        index = min(cells)
        if best is None or (array, index) < best:
            best = (array, index)
    return best


def replay_divergence(
    original: Program,
    transformed: Program,
    seeds: Sequence[int],
    low: int = -64,
    high: int = 64,
) -> Tuple[ReplayResult, CellDiffs]:
    """Run both programs on the given input seeds until one distinguishes them.

    Returns the :class:`ReplayResult` of the first distinguishing seed (or of
    the last seed, with ``diverged=False``, when none does) together with the
    full cell-difference map of that run.  The input providers are pure
    functions of ``(seed, array, index)``, so re-running under the reported
    seed reproduces the divergence exactly.
    """
    if not seeds:
        raise ValueError("replay needs at least one input seed")
    last: Optional[ReplayResult] = None
    inconclusive: Optional[ReplayResult] = None
    for seed in seeds:
        provider = random_input_provider(seed, low, high)
        try:
            reference, reference_trace = run_program_traced(original, provider)
        except InterpreterError as error:
            # Remember the first original-side failure: if no later seed
            # distinguishes the pair, the report must still say the sweep
            # was partly inconclusive rather than silently "no divergence".
            result = ReplayResult(
                seed=seed,
                diverged=False,
                original_error=str(error),
                original_error_statement=error.statement_label,
            )
            if inconclusive is None:
                inconclusive = result
            last = result
            continue
        provider = random_input_provider(seed, low, high)
        try:
            candidate, candidate_trace = run_program_traced(transformed, provider)
        except InterpreterError as error:
            # A runtime failure of the transformed program on an input the
            # original handles is itself an observable divergence.
            return (
                ReplayResult(
                    seed=seed,
                    diverged=True,
                    transformed_error=str(error),
                    transformed_error_statement=error.statement_label,
                ),
                {},
            )
        diffs = divergent_cells(reference, candidate)
        if diffs:
            array, index = _first_cell(diffs)
            left, right = diffs[array][index]
            cell = WitnessCell(
                array=array,
                index=index,
                original_value=left,
                transformed_value=right,
                original_statement=reference_trace.writer_of(array, index),
                transformed_statement=candidate_trace.writer_of(array, index),
            )
            count = sum(len(cells) for cells in diffs.values())
            return (
                ReplayResult(
                    seed=seed, diverged=True, divergence_count=count, first_divergence=cell
                ),
                diffs,
            )
        last = ReplayResult(seed=seed, diverged=False)
    assert last is not None
    return inconclusive if inconclusive is not None else last, {}


def dependency_path(
    addg: ADDG, array: str, index: Sequence[int], limit: int = 12
) -> Tuple[str, ...]:
    """The cell's provenance chain through *addg*, rendered as path entries.

    Starting from ``array[index]``, each hop finds the statement whose
    iteration domain defines the cell and follows the statement's first
    dependency mapping to a concrete read element, until an input array (or
    a cycle / the *limit*) stops the walk.  Entries alternate between cells
    (``"A[2, 3]"``) and statement labels (``"s4"``).
    """
    path: List[str] = []
    current_array = array
    current_index = tuple(int(i) for i in index)
    seen = set()
    while len(path) < 2 * limit:
        path.append(f"{current_array}[{', '.join(str(i) for i in current_index)}]")
        if addg.is_input(current_array) or (current_array, current_index) in seen:
            break
        seen.add((current_array, current_index))
        defining = None
        for statement in addg.defining_statements(current_array):
            try:
                if statement.written.contains(current_index):
                    defining = statement
                    break
            except PresburgerError:
                continue
        if defining is None:
            break
        path.append(defining.label)
        reads = defining.reads()
        if not reads:
            break
        next_hop = None
        for read in reads:
            try:
                point = Set.from_points(read.dependency.in_names, [current_index])
                image = read.dependency.apply(point)
                if not image.is_empty():
                    next_hop = (read.array, image.lexmin())
                    break
            except (PresburgerError, ValueError):
                continue
        if next_hop is None:
            break
        current_array, current_index = next_hop
    return tuple(path)
