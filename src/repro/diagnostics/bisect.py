"""Pipeline bisection: name the transformation step that broke equivalence.

Scenario pairs carry their full transformation trace, and every
:class:`~repro.transforms.pipeline.TransformStep` produced by
:func:`~repro.transforms.pipeline.compose_random_pipeline` (and the scenario
engine's mutation steps) records a source snapshot of the program *after*
the step.  That makes the trace replayable: this module reconstructs the
intermediate programs and binary-searches for the first prefix the judge
distinguishes from the original.

The default judge is the differential interpreter oracle
(:class:`~repro.scenarios.oracle.OracleReference`), so bisection costs
``O(log n)`` differential runs — against a corpus mutation it names the
injected step exactly, because every proper prefix of the trace is
equivalence-preserving by construction.  Bisection assumes the usual
monotonicity ("once broken, stays broken"); for traces where a later step
accidentally re-repairs an earlier break it still names *a* breaking step.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..lang import Program, parse_program
from ..lang.errors import LangError
from ..transforms import TransformStep
from .report import BisectionOutcome

__all__ = ["bisect_trace"]

#: ``judge(program) -> bool`` — True when *program* is distinguishable from
#: the original the judge was built for.
Judge = Callable[[Program], bool]


def _oracle_judge(original: Program, trials: int, base_seed: int) -> Judge:
    from ..scenarios.oracle import LABEL_NOT_EQUIVALENT, OracleReference

    reference = OracleReference(original, trials=trials, base_seed=base_seed)

    def judge(program: Program) -> bool:
        return reference.label(program).label == LABEL_NOT_EQUIVALENT

    return judge


def bisect_trace(
    original: Program,
    trace: Sequence[TransformStep],
    *,
    trials: int = 3,
    base_seed: int = 0,
    judge: Optional[Judge] = None,
) -> Optional[BisectionOutcome]:
    """Find the first step of *trace* whose program the judge distinguishes.

    Returns ``None`` for an empty trace and an inconclusive
    :class:`BisectionOutcome` (``step_index=None``) when the trace carries no
    usable snapshots or the judge cannot distinguish even the final program
    (oracle incompleteness, or a pair that is in fact equivalent).
    """
    steps = list(trace)
    if not steps:
        return None

    programs: List[Optional[Program]] = []
    for step in steps:
        if not step.snapshot_source:
            programs.append(None)
            continue
        try:
            programs.append(parse_program(step.snapshot_source))
        except LangError:
            programs.append(None)
    if all(program is None for program in programs):
        return BisectionOutcome(
            step_index=None, detail="trace carries no replayable snapshots"
        )

    if judge is None:
        judge = _oracle_judge(original, trials, base_seed)

    judged = 0
    verdicts: List[Optional[bool]] = [None] * len(steps)

    def broken(position: int) -> Optional[bool]:
        """Judge the program after step *position* (0-based); memoized."""
        nonlocal judged
        if programs[position] is None:
            return None
        if verdicts[position] is None:
            judged += 1
            verdicts[position] = judge(programs[position])
        return verdicts[position]

    def nearest(position: int, direction: int) -> Optional[int]:
        """The closest snapshot-bearing index from *position* towards *direction*."""
        while 0 <= position < len(steps):
            if programs[position] is not None:
                return position
            position += direction
        return None

    last = nearest(len(steps) - 1, -1)
    assert last is not None
    if not broken(last):
        return BisectionOutcome(
            step_index=None,
            judged=judged,
            detail="judge cannot distinguish the final program from the original",
        )

    # Invariant: everything at or before `low` judges equivalent (or is the
    # original), everything at or after `high` judges broken.
    low, high = -1, last
    while True:
        candidates = [i for i in range(low + 1, high) if programs[i] is not None]
        if not candidates:
            break
        middle = candidates[len(candidates) // 2]
        if broken(middle):
            high = middle
        else:
            low = middle
    step = steps[high]
    return BisectionOutcome(
        step_index=high,
        step_name=step.name,
        step_detail=step.detail,
        judged=judged,
    )
