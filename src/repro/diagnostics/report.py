"""The failure-report model: every non-equivalent verdict made actionable.

A :class:`FailureReport` is the diagnosis of one failed equivalence check.
It closes the loop the paper opens in its error-localization section: the
checker's *symbolic* evidence (the Presburger mismatch sets behind each
failing output) is turned into *concrete* evidence a designer can replay —

* an :class:`OutputWitness` per failing output array: a concrete element
  sampled from the mismatch set, whether interpreter replay confirmed that
  very cell diverges, and the cell's dependency path through each ADDG;
* a :class:`ReplayResult`: the seeded input on which the two programs were
  executed, the first diverging cell with its values and the labels of the
  statements that wrote it on both sides (or the runtime error, attributed
  to its statement, when one side crashes);
* a :class:`BisectionOutcome`: for pairs produced by a recorded
  transformation pipeline, the exact step that broke equivalence.

All values are plain serialisable dataclasses (``to_dict``/``from_dict``
round-trips), so reports travel through the service JSONL reports and the
``diagnose --json`` CLI unchanged.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "BisectionOutcome",
    "FailureReport",
    "OutputWitness",
    "ReplayResult",
    "WitnessCell",
]


def _as_index(value: Optional[Any]) -> Optional[Tuple[int, ...]]:
    return None if value is None else tuple(int(x) for x in value)


def _render_cell(array: str, index: Tuple[int, ...]) -> str:
    return f"{array}[{', '.join(str(i) for i in index)}]"


@dataclass
class WitnessCell:
    """One concrete array element on which the two programs disagree.

    ``None`` values mean "this side never wrote the element" (an observable
    difference in the allowed program class); the statement fields carry the
    labels of the writing assignments recorded by the traced interpreter.
    """

    array: str
    index: Tuple[int, ...]
    original_value: Optional[int] = None
    transformed_value: Optional[int] = None
    original_statement: Optional[str] = None
    transformed_statement: Optional[str] = None

    def describe(self) -> str:
        def side(value: Optional[int], statement: Optional[str]) -> str:
            rendered = "undefined" if value is None else str(value)
            return f"{rendered} (by {statement})" if statement else rendered

        return (
            f"{_render_cell(self.array, self.index)}: "
            f"{side(self.original_value, self.original_statement)} in the original vs "
            f"{side(self.transformed_value, self.transformed_statement)} in the transformed program"
        )

    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        data["index"] = list(self.index)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WitnessCell":
        return cls(
            array=data["array"],
            index=_as_index(data["index"]) or (),
            original_value=data.get("original_value"),
            transformed_value=data.get("transformed_value"),
            original_statement=data.get("original_statement"),
            transformed_statement=data.get("transformed_statement"),
        )


@dataclass
class ReplayResult:
    """The concrete differential run that (dis)confirmed the verdict.

    ``seed`` names the :func:`repro.lang.random_input_provider` input on
    which the divergence was observed — re-running both programs under that
    provider reproduces it exactly.  A runtime failure of the transformed
    program counts as a divergence (the error message and its originating
    statement label are recorded); a failure of the *original* program makes
    the replay inconclusive (``diverged`` stays false, the error is noted).
    """

    seed: int
    diverged: bool
    divergence_count: int = 0
    first_divergence: Optional[WitnessCell] = None
    original_error: Optional[str] = None
    transformed_error: Optional[str] = None
    original_error_statement: Optional[str] = None
    transformed_error_statement: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "diverged": self.diverged,
            "divergence_count": self.divergence_count,
            "first_divergence": (
                None if self.first_divergence is None else self.first_divergence.to_dict()
            ),
            "original_error": self.original_error,
            "transformed_error": self.transformed_error,
            "original_error_statement": self.original_error_statement,
            "transformed_error_statement": self.transformed_error_statement,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ReplayResult":
        cell = data.get("first_divergence")
        return cls(
            seed=int(data["seed"]),
            diverged=bool(data["diverged"]),
            divergence_count=int(data.get("divergence_count", 0)),
            first_divergence=None if cell is None else WitnessCell.from_dict(cell),
            original_error=data.get("original_error"),
            transformed_error=data.get("transformed_error"),
            original_error_statement=data.get("original_error_statement"),
            transformed_error_statement=data.get("transformed_error_statement"),
        )


@dataclass
class OutputWitness:
    """The symbolic-to-concrete bridge for one failing output array.

    ``witness_point`` is an element sampled from the checker's Presburger
    mismatch set (``failing_domain``); ``point_confirmed`` records whether
    the interpreter replay observed a divergence *at that very cell* — the
    cross-check between the symbolic and concrete layers.  The dependency
    paths walk the cell backwards through each ADDG (array element →
    defining statement → read element → …) down to the input arrays.
    """

    array: str
    failing_domain: Optional[str] = None
    witness_point: Optional[Tuple[int, ...]] = None
    point_confirmed: Optional[bool] = None
    original_path: Tuple[str, ...] = ()
    transformed_path: Tuple[str, ...] = ()
    note: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "array": self.array,
            "failing_domain": self.failing_domain,
            "witness_point": None if self.witness_point is None else list(self.witness_point),
            "point_confirmed": self.point_confirmed,
            "original_path": list(self.original_path),
            "transformed_path": list(self.transformed_path),
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "OutputWitness":
        return cls(
            array=data["array"],
            failing_domain=data.get("failing_domain"),
            witness_point=_as_index(data.get("witness_point")),
            point_confirmed=data.get("point_confirmed"),
            original_path=tuple(data.get("original_path", ())),
            transformed_path=tuple(data.get("transformed_path", ())),
            note=data.get("note", ""),
        )


@dataclass
class BisectionOutcome:
    """Which step of a recorded transformation pipeline broke equivalence.

    ``step_index`` is the 0-based position in the trace (``None`` when the
    trace could not be bisected — no snapshots, or the judge cannot
    distinguish even the final program).  ``judged`` counts judge
    evaluations: bisection pays ``O(log n)`` differential runs instead of
    ``n``.
    """

    step_index: Optional[int]
    step_name: str = ""
    step_detail: str = ""
    judged: int = 0
    judge: str = "oracle"
    detail: str = ""

    @property
    def localized(self) -> bool:
        return self.step_index is not None

    def describe(self) -> str:
        if not self.localized:
            return f"bisection inconclusive: {self.detail or 'no step could be blamed'}"
        return (
            f"step {self.step_index + 1} broke equivalence: "
            f"{self.step_name} ({self.step_detail}) "
            f"[{self.judged} {self.judge} evaluation(s)]"
        )

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BisectionOutcome":
        return cls(
            step_index=data.get("step_index"),
            step_name=data.get("step_name", ""),
            step_detail=data.get("step_detail", ""),
            judged=int(data.get("judged", 0)),
            judge=data.get("judge", "oracle"),
            detail=data.get("detail", ""),
        )


@dataclass
class FailureReport:
    """The full diagnosis of one non-equivalent verdict.

    ``confirmed`` is the end-to-end guarantee: the interpreter replay
    reproduced an observable divergence on a concrete input, so the checker's
    NOT-EQUIVALENT verdict is backed by executable evidence (when it stays
    false the verdict may still be right — the checker is conservative — but
    the report says so via ``notes``).
    """

    equivalent: bool
    confirmed: bool
    outputs: List[OutputWitness] = field(default_factory=list)
    replay: Optional[ReplayResult] = None
    bisection: Optional[BisectionOutcome] = None
    notes: Tuple[str, ...] = ()

    def format(self) -> str:
        """A multi-line human readable rendering (what the CLI prints)."""
        lines: List[str] = []
        if self.equivalent:
            lines.append("EQUIVALENT — nothing to diagnose")
        elif self.confirmed:
            lines.append("NOT EQUIVALENT — witness confirmed by interpreter replay")
        else:
            lines.append("NOT EQUIVALENT — no concrete witness found (verdict may be conservative)")
        if self.replay is not None:
            lines.append(f"  replay seed      : {self.replay.seed}")
            if self.replay.first_divergence is not None:
                lines.append(f"  first divergence : {self.replay.first_divergence.describe()}")
                lines.append(f"  diverging cells  : {self.replay.divergence_count}")
            if self.replay.transformed_error:
                lines.append(f"  transformed error: {self.replay.transformed_error}")
            if self.replay.original_error:
                lines.append(f"  original error   : {self.replay.original_error}")
        for witness in self.outputs:
            lines.append(f"  output {witness.array}:")
            if witness.failing_domain:
                lines.append(f"    mismatch set    : {witness.failing_domain}")
            if witness.witness_point is not None:
                confirmed = {True: "confirmed", False: "NOT confirmed", None: "not checked"}[
                    witness.point_confirmed
                ]
                lines.append(
                    f"    sampled witness : {_render_cell(witness.array, witness.witness_point)}"
                    f"  ({confirmed} by replay)"
                )
            if witness.original_path:
                lines.append(f"    original path   : {' -> '.join(witness.original_path)}")
            if witness.transformed_path:
                lines.append(f"    transformed path: {' -> '.join(witness.transformed_path)}")
            if witness.note:
                lines.append(f"    note            : {witness.note}")
        if self.bisection is not None:
            lines.append(f"  bisection        : {self.bisection.describe()}")
        for note in self.notes:
            lines.append(f"  note             : {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "equivalent": self.equivalent,
            "confirmed": self.confirmed,
            "outputs": [witness.to_dict() for witness in self.outputs],
            "replay": None if self.replay is None else self.replay.to_dict(),
            "bisection": None if self.bisection is None else self.bisection.to_dict(),
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FailureReport":
        replay = data.get("replay")
        bisection = data.get("bisection")
        return cls(
            equivalent=bool(data["equivalent"]),
            confirmed=bool(data["confirmed"]),
            outputs=[OutputWitness.from_dict(entry) for entry in data.get("outputs", [])],
            replay=None if replay is None else ReplayResult.from_dict(replay),
            bisection=None if bisection is None else BisectionOutcome.from_dict(bisection),
            notes=tuple(data.get("notes", ())),
        )
