"""Witness synthesis, fault localization and pipeline bisection.

The paper's headline advantage over simulation is that ADDG-based checking
not only decides equivalence but *pinpoints where* transformed code
diverges.  This package closes that loop: every non-equivalent verdict is
turned into an actionable :class:`FailureReport` —

* :mod:`~repro.diagnostics.witness` — sample concrete integer points from
  the Presburger mismatch sets behind each failing output
  (:meth:`repro.presburger.Set.sample_point` / :meth:`~repro.presburger.Set.lexmin`);
* :mod:`~repro.diagnostics.replay` — execute both programs through the
  traced reference interpreter on synthesized inputs, record the first
  diverging array cell with the labels of the statements that wrote it, and
  walk the cell's dependency path through each ADDG;
* :mod:`~repro.diagnostics.bisect` — binary-search a recorded
  transformation trace for the exact step that broke equivalence;
* :mod:`~repro.diagnostics.report` — the serialisable report model;
* :mod:`~repro.diagnostics.api` — :func:`build_failure_report`,
  :func:`diagnose` and the service hook :func:`attach_failure_report`.

Entry points: the ``repro-eqcheck diagnose`` CLI subcommand,
:meth:`repro.verifier.Verifier.diagnose` (session API, streams the report
through the observer protocol) and the ``fuzz`` pipeline, which diagnoses
every non-equivalent pair and hard-gates on checker-witness vs
oracle-witness agreement.  See ``docs/diagnostics.md``.
"""

from .api import attach_failure_report, build_failure_report, diagnose
from .bisect import bisect_trace
from .replay import dependency_path, divergent_cells, replay_divergence
from .report import BisectionOutcome, FailureReport, OutputWitness, ReplayResult, WitnessCell
from .witness import sample_failing_domain, synthesize_witnesses

__all__ = [
    "BisectionOutcome",
    "FailureReport",
    "OutputWitness",
    "ReplayResult",
    "WitnessCell",
    "attach_failure_report",
    "bisect_trace",
    "build_failure_report",
    "dependency_path",
    "diagnose",
    "divergent_cells",
    "replay_divergence",
    "sample_failing_domain",
    "synthesize_witnesses",
]
