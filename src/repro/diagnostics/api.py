"""Assembling failure reports: the public entry points of the subsystem.

:func:`build_failure_report` turns one non-equivalent
:class:`~repro.checker.result.EquivalenceResult` into a
:class:`~repro.diagnostics.report.FailureReport` by running the three
diagnosis stages (witness synthesis → concrete replay → pipeline bisection)
and cross-linking their evidence.  :func:`diagnose` is the one-shot
convenience over a throwaway :class:`~repro.verifier.session.Verifier`;
sessions call :meth:`~repro.verifier.session.Verifier.diagnose` directly.
:func:`attach_failure_report` is the service-side hook that decorates a
batch :class:`~repro.service.job.JobResult` with its diagnosis (used by the
``fuzz`` CLI and the report aggregator's witness gates).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Union

from ..addg import ADDG, build_addg
from ..checker.result import EquivalenceResult
from ..lang import Program, parse_program
from ..transforms import TransformStep
from .bisect import bisect_trace
from .replay import CellDiffs, dependency_path, replay_divergence
from .report import FailureReport, OutputWitness
from .witness import synthesize_witnesses

__all__ = ["attach_failure_report", "build_failure_report", "diagnose"]

ProgramOrSource = Union[Program, str]


def _as_program(value: ProgramOrSource) -> Program:
    return parse_program(value) if isinstance(value, str) else value


def _replay_seeds(trials: int, base_seed: int, witness_seed: Optional[int]) -> List[int]:
    """Witness seed first (when the oracle already holds one), then the sweep."""
    seeds = [] if witness_seed is None else [int(witness_seed)]
    seeds.extend(base_seed + trial for trial in range(max(1, trials)))
    return list(dict.fromkeys(seeds))


def _attach_paths(
    witness: OutputWitness,
    diffs: CellDiffs,
    original_addg: Optional[ADDG],
    transformed_addg: Optional[ADDG],
) -> None:
    """Confirm the sampled point against the replay and walk its provenance."""
    cells = diffs.get(witness.array, {})
    if witness.witness_point is not None and diffs:
        witness.point_confirmed = witness.witness_point in cells
    anchor = None
    if witness.witness_point is not None and witness.witness_point in cells:
        anchor = witness.witness_point
    elif cells:
        anchor = min(cells)
    elif witness.witness_point is not None:
        anchor = witness.witness_point
    if anchor is None:
        return
    if original_addg is not None:
        witness.original_path = dependency_path(original_addg, witness.array, anchor)
    if transformed_addg is not None:
        witness.transformed_path = dependency_path(transformed_addg, witness.array, anchor)


def build_failure_report(
    original: ProgramOrSource,
    transformed: ProgramOrSource,
    result: EquivalenceResult,
    *,
    trace: Optional[Sequence[TransformStep]] = None,
    trials: int = 3,
    base_seed: int = 0,
    witness_seed: Optional[int] = None,
    original_addg: Optional[ADDG] = None,
    transformed_addg: Optional[ADDG] = None,
    bisect: bool = True,
) -> FailureReport:
    """Diagnose one checked pair: witnesses, replay, dependency paths, bisection.

    *result* is the verdict to explain (an equivalent verdict yields an empty
    report).  ``witness_seed`` seeds the replay first when an external oracle
    already distinguished the pair (its witness then replays before the
    ``base_seed`` sweep); ``trace`` enables pipeline bisection when its steps
    carry snapshots.  Pre-extracted ADDGs are accepted so sessions can reuse
    their compiled artifacts.
    """
    original = _as_program(original)
    transformed = _as_program(transformed)
    if result.equivalent:
        return FailureReport(
            equivalent=True,
            confirmed=False,
            notes=("check verdict was EQUIVALENT; nothing to diagnose",),
        )

    notes: List[str] = []
    seeds = _replay_seeds(trials, base_seed, witness_seed)
    replay, diffs = replay_divergence(original, transformed, seeds)
    if replay.original_error is not None:
        notes.append(
            "original program fails at runtime on the sampled inputs; replay is inconclusive"
        )

    if original_addg is None:
        original_addg = _safe_addg(original, "original", notes)
    if transformed_addg is None:
        transformed_addg = _safe_addg(transformed, "transformed", notes)

    witnesses = synthesize_witnesses(result, seed=base_seed)
    for witness in witnesses:
        _attach_paths(witness, diffs, original_addg, transformed_addg)

    bisection = None
    if bisect and trace:
        bisection = bisect_trace(original, trace, trials=trials, base_seed=base_seed)

    return FailureReport(
        equivalent=False,
        confirmed=replay.diverged,
        outputs=witnesses,
        replay=replay,
        bisection=bisection,
        notes=tuple(notes),
    )


def _safe_addg(program: Program, side: str, notes: List[str]) -> Optional[ADDG]:
    try:
        return build_addg(program)
    except Exception as error:  # extraction can fail outside the allowed class
        notes.append(f"cannot extract the {side} ADDG for dependency paths: {error}")
        return None


def diagnose(
    original: ProgramOrSource,
    transformed: ProgramOrSource,
    options: Optional[Any] = None,
    **kwargs: Any,
) -> FailureReport:
    """Check the pair and diagnose the verdict in one shot.

    A convenience over a throwaway :class:`~repro.verifier.session.Verifier`
    session — see :meth:`Verifier.diagnose` for the keyword arguments.
    """
    from ..verifier import Verifier

    return Verifier(options=options).diagnose(original, transformed, **kwargs)


def attach_failure_report(
    outcome: Any,
    job: Any,
    *,
    trials: int = 3,
    base_seed: int = 0,
    verifier: Optional[Any] = None,
) -> Optional[FailureReport]:
    """Diagnose a completed batch job and store the report in its metadata.

    *outcome* is a :class:`~repro.service.job.JobResult` and *job* the
    :class:`~repro.service.job.VerificationJob` it came from (matched by the
    caller).  Only completed, non-equivalent outcomes with a retained checker
    result are diagnosed; the transformation trace and the oracle witness
    seed are picked up from the job metadata when present.  Pass a shared
    :class:`~repro.verifier.session.Verifier` so a batch of related pairs
    (e.g. twins of one base original) reuses compiled frontend artifacts.
    Returns the report (also serialised into
    ``outcome.metadata["failure_report"]``), or ``None`` when the outcome is
    not diagnosable.
    """
    if job is None or outcome.result is None or outcome.equivalent is not False:
        return None
    if verifier is None:
        from ..verifier import Verifier

        verifier = Verifier()
    metadata = outcome.metadata or {}
    trace = [TransformStep.from_dict(step) for step in metadata.get("trace") or []]
    witness_seed = (metadata.get("oracle") or {}).get("witness_seed")
    report = verifier.diagnose(
        job.original_source,
        job.transformed_source,
        result=outcome.result,
        trace=trace or None,
        replay_trials=trials,
        replay_seed=base_seed,
        witness_seed=witness_seed,
    )
    outcome.metadata["failure_report"] = report.to_dict()
    return report
