"""Witness synthesis: concrete points from the checker's mismatch sets.

Each failing :class:`~repro.checker.result.OutputReport` carries the
Presburger set on which the checker could not match the two programs
(``failing_domain``, in the textual OMEGA notation the whole project uses).
This module parses that set back and samples a concrete element from it via
:meth:`repro.presburger.Set.sample_point` — the symbolic half of the witness
that the replay layer then confirms (or refutes) operationally.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..checker.result import EquivalenceResult, OutputReport
from ..presburger import ParseError, Set, parse_set
from ..presburger.errors import PresburgerError
from .report import OutputWitness

__all__ = ["sample_failing_domain", "synthesize_witnesses"]


def sample_failing_domain(
    domain_text: str, seed: int = 0
) -> Tuple[Optional[Tuple[int, ...]], str]:
    """Sample one concrete point from a rendered mismatch set.

    Returns ``(point, note)``; ``point`` is ``None`` when the text does not
    parse back into a sampleable set (exotic renderings, empty or unbounded
    domains), in which case ``note`` says why.  Never raises.
    """
    try:
        domain: Set = parse_set(domain_text)
    except (ParseError, PresburgerError) as error:
        return None, f"mismatch set does not parse back: {error}"
    if domain.is_empty():
        return None, "mismatch set is empty after simplification"
    try:
        return domain.sample_point(seed), ""
    except (PresburgerError, ValueError) as error:
        return None, f"cannot sample the mismatch set: {error}"


def synthesize_witnesses(result: EquivalenceResult, seed: int = 0) -> list:
    """One :class:`OutputWitness` skeleton per failing output of *result*.

    The witnesses carry the sampled point and parse/sample notes; the caller
    (:func:`repro.diagnostics.api.build_failure_report`) fills in replay
    confirmation and dependency paths.
    """
    witnesses = []
    for report in result.outputs:
        if report.equivalent:
            continue
        witnesses.append(_witness_for(report, seed))
    return witnesses


def _witness_for(report: OutputReport, seed: int) -> OutputWitness:
    if not report.failing_domain:
        return OutputWitness(
            array=report.array,
            note="no mismatch set recorded (output missing on one side or structural failure)",
        )
    point, note = sample_failing_domain(report.failing_domain, seed)
    return OutputWitness(
        array=report.array,
        failing_domain=report.failing_domain,
        witness_point=point,
        note=note,
    )
