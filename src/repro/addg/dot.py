"""Graphviz (DOT) export of ADDGs, for visual inspection of Fig. 2-style graphs."""

from __future__ import annotations

from typing import Dict, List

from .graph import ADDG, ConstNode, ExprNode, OpNode, ReadNode

__all__ = ["addg_to_dot"]


def _escape(text: str) -> str:
    return text.replace("\"", "\\\"")


def addg_to_dot(addg: ADDG, name: str = "addg") -> str:
    """Render the ADDG in Graphviz DOT syntax.

    Array variables become boxes (inputs double-bordered, outputs bold),
    operator occurrences become circles, and edges carry the statement label
    (for array -> operator edges) or the operand position (for operator ->
    operand edges), matching the conventions of Fig. 2 of the paper.
    """
    lines: List[str] = [f"digraph {name} {{", "  rankdir=TB;"]

    array_names = addg.array_nodes()
    for array in array_names:
        shape = "box"
        style = []
        if addg.is_input(array):
            style.append("peripheries=2")
        if addg.is_output(array):
            style.append("penwidth=2")
        attributes = ", ".join([f'label="{_escape(array)}"', f"shape={shape}"] + style)
        lines.append(f'  "arr_{_escape(array)}" [{attributes}];')

    node_ids: Dict[int, str] = {}
    counter = [0]

    def node_id(node: ExprNode) -> str:
        key = id(node)
        if key not in node_ids:
            counter[0] += 1
            node_ids[key] = f"n{counter[0]}"
        return node_ids[key]

    def emit(node: ExprNode) -> str:
        if isinstance(node, ReadNode):
            return f"arr_{_escape(node.array)}"
        if isinstance(node, ConstNode):
            identifier = node_id(node)
            lines.append(f'  "{identifier}" [label="{node.value}", shape=plaintext];')
            return identifier
        if isinstance(node, OpNode):
            identifier = node_id(node)
            lines.append(f'  "{identifier}" [label="{_escape(node.op)}", shape=circle];')
            for position, child in enumerate(node.operands, start=1):
                child_id = emit(child)
                lines.append(f'  "{identifier}" -> "{child_id}" [label="{position}"];')
            return identifier
        raise TypeError(f"unexpected node type {type(node).__name__}")

    for statement in addg.statements:
        root_id = emit(statement.rhs)
        lines.append(
            f'  "arr_{_escape(statement.target)}" -> "{root_id}" '
            f'[label="{_escape(statement.label)}", style=bold];'
        )

    lines.append("}")
    return "\n".join(lines) + "\n"
