"""The array data dependence graph (ADDG) data structure.

An ADDG (Section 3.2 of the paper) has nodes for the array variables and for
the occurrences of operators in the program, and edges directed against the
flow of data:

* a *statement edge* from the defined array variable to the root of the
  statement's right-hand-side expression, labelled with the statement, and
* *operand edges* from an operator node to its operands, labelled with the
  operand position.

Edges into array variables carry **dependency mappings**: integer tuple
relations from the elements of the defined array to the elements of the
operand array (Section 3.2).  In this implementation each statement is stored
as a :class:`StatementNode` whose right-hand side is an explicit expression
tree (:class:`OpNode` / :class:`ReadNode` / :class:`ConstNode`), and the
dependency mapping is attached to every :class:`ReadNode`.  The classic
"nodes and labelled edges" view used for Fig. 2-style inventories and DOT
export is derived from this structure on demand.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set as PySet, Tuple

from ..presburger import Map, Set
from ..lang.ast import ArrayRef, Expr, Program
from ..analysis.domains import StatementContext

__all__ = ["ExprNode", "OpNode", "ReadNode", "ConstNode", "StatementNode", "ADDG"]


class ExprNode:
    """Base class of right-hand-side expression nodes inside an ADDG."""

    __slots__ = ()

    def children(self) -> Tuple["ExprNode", ...]:
        return ()


class OpNode(ExprNode):
    """An occurrence of an operator (or of an uninterpreted function call)."""

    __slots__ = ("op", "operands", "statement_label", "path")

    def __init__(self, op: str, operands: Sequence[ExprNode], statement_label: str, path: Tuple[int, ...]):
        self.op = op
        self.operands: Tuple[ExprNode, ...] = tuple(operands)
        self.statement_label = statement_label
        self.path = path

    def children(self) -> Tuple[ExprNode, ...]:
        return self.operands

    @property
    def name(self) -> str:
        """A unique display name for this operator occurrence."""
        suffix = "_".join(str(i) for i in self.path)
        return f"{self.op}@{self.statement_label}" + (f".{suffix}" if suffix else "")

    def __repr__(self) -> str:
        return f"OpNode({self.op!r}, {len(self.operands)} operand(s), stmt={self.statement_label!r})"


class ReadNode(ExprNode):
    """A read of an array element; carries the dependency mapping of its edge."""

    __slots__ = ("array", "ref", "dependency", "statement_label", "path", "position")

    def __init__(
        self,
        array: str,
        ref: ArrayRef,
        dependency: Map,
        statement_label: str,
        path: Tuple[int, ...],
        position: int,
    ):
        self.array = array
        self.ref = ref
        self.dependency = dependency
        self.statement_label = statement_label
        self.path = path
        self.position = position

    def __repr__(self) -> str:
        return f"ReadNode({self.array!r}, stmt={self.statement_label!r}, dep={self.dependency})"


class ConstNode(ExprNode):
    """An integer constant appearing as a data operand."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        self.value = int(value)

    def __repr__(self) -> str:
        return f"ConstNode({self.value})"


class StatementNode:
    """One assignment statement of the program inside the ADDG."""

    __slots__ = ("context", "rhs", "write_map", "written")

    def __init__(self, context: StatementContext, rhs: ExprNode, write_map: Map, written: Set):
        self.context = context
        self.rhs = rhs
        self.write_map = write_map
        self.written = written

    @property
    def label(self) -> str:
        return self.context.label

    @property
    def target(self) -> str:
        return self.context.target_array

    def reads(self) -> List[ReadNode]:
        """All read nodes of the right-hand side, left to right."""
        result: List[ReadNode] = []

        def visit(node: ExprNode) -> None:
            if isinstance(node, ReadNode):
                result.append(node)
            for child in node.children():
                visit(child)

        visit(self.rhs)
        return result

    def operator_nodes(self) -> List[OpNode]:
        result: List[OpNode] = []

        def visit(node: ExprNode) -> None:
            if isinstance(node, OpNode):
                result.append(node)
            for child in node.children():
                visit(child)

        visit(self.rhs)
        return result

    def __repr__(self) -> str:
        return f"StatementNode({self.label!r}: {self.target!r} <- ...)"


class ADDG:
    """The array data dependence graph of one program function."""

    _cyclic_cache: Optional[Tuple[str, ...]]

    def __init__(self, program: Program, statements: Sequence[StatementNode]):
        self._cyclic_cache = None
        self.program = program
        self.statements: List[StatementNode] = list(statements)
        self.definitions: Dict[str, List[StatementNode]] = {}
        for statement in self.statements:
            self.definitions.setdefault(statement.target, []).append(statement)
        self.inputs: Tuple[str, ...] = program.input_arrays()
        self.outputs: Tuple[str, ...] = program.output_arrays()
        written = set(self.definitions)
        self.intermediates: Tuple[str, ...] = tuple(
            name for name in written if name not in self.outputs
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def defining_statements(self, array: str) -> List[StatementNode]:
        """The statements that write elements of *array* (empty for inputs)."""
        return list(self.definitions.get(array, []))

    def statement(self, label: str) -> StatementNode:
        for node in self.statements:
            if node.label == label:
                return node
        raise KeyError(f"no statement labelled {label!r}")

    def is_input(self, array: str) -> bool:
        return array in self.inputs

    def is_output(self, array: str) -> bool:
        return array in self.outputs

    def cyclic_arrays(self) -> Tuple[str, ...]:
        """Arrays whose values (transitively) depend on other elements of themselves.

        These are the recurrences of the program (cycles in the ADDG); the
        checker treats them specially (Section 5.2's closing remark on cycles).
        The result is cached after the first call.
        """
        cached = getattr(self, "_cyclic_cache", None)
        if cached is not None:
            return cached
        reads_of: Dict[str, PySet[str]] = {}
        for statement in self.statements:
            targets = reads_of.setdefault(statement.target, set())
            for read in statement.reads():
                targets.add(read.array)

        def reachable_from(start: str) -> PySet[str]:
            seen: PySet[str] = set()
            frontier = [start]
            while frontier:
                current = frontier.pop()
                for nxt in reads_of.get(current, ()):
                    if nxt not in seen:
                        seen.add(nxt)
                        frontier.append(nxt)
            return seen

        cyclic = tuple(sorted(name for name in reads_of if name in reachable_from(name)))
        self._cyclic_cache = cyclic
        return cyclic

    def written_set(self, array: str) -> Set:
        """The union of elements of *array* written by the program."""
        writers = self.defining_statements(array)
        if not writers:
            raise KeyError(f"array {array!r} is never written")
        result = writers[0].written
        for writer in writers[1:]:
            result = result.union(writer.written.rename(result.names))
        return result

    # ------------------------------------------------------------------ #
    # Fig. 2-style inventory (used by tests, examples and benchmarks)
    # ------------------------------------------------------------------ #
    def array_nodes(self) -> Tuple[str, ...]:
        names: List[str] = []
        for statement in self.statements:
            if statement.target not in names:
                names.append(statement.target)
            for read in statement.reads():
                if read.array not in names:
                    names.append(read.array)
        return tuple(names)

    def operator_nodes(self) -> List[OpNode]:
        result: List[OpNode] = []
        for statement in self.statements:
            result.extend(statement.operator_nodes())
        return result

    def edges(self) -> List[Tuple[str, str, str]]:
        """All edges as ``(source, target, label)`` display triples."""
        result: List[Tuple[str, str, str]] = []
        for statement in self.statements:
            root = statement.rhs
            root_name = _node_display_name(root)
            result.append((statement.target, root_name, statement.label))
            stack: List[ExprNode] = [root]
            while stack:
                node = stack.pop()
                if isinstance(node, OpNode):
                    for position, child in enumerate(node.operands, start=1):
                        result.append((node.name, _node_display_name(child), str(position)))
                        stack.append(child)
        return result

    def node_count(self) -> int:
        return len(self.array_nodes()) + len(self.operator_nodes())

    def edge_count(self) -> int:
        return len(self.edges())

    def size(self) -> int:
        """A simple size metric (nodes + edges) used in the scaling benchmarks."""
        return self.node_count() + self.edge_count()

    def __repr__(self) -> str:
        return (
            f"ADDG({self.program.name!r}: {len(self.statements)} statement(s), "
            f"{self.node_count()} node(s), {self.edge_count()} edge(s))"
        )


def _node_display_name(node: ExprNode) -> str:
    if isinstance(node, OpNode):
        return node.name
    if isinstance(node, ReadNode):
        return node.array
    if isinstance(node, ConstNode):
        return str(node.value)
    raise TypeError(f"unexpected node type {type(node).__name__}")
