"""ADDG extraction from a program in the allowed class (the "ADDG extractor" of Fig. 6)."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..analysis.access import defined_set, dependency_map, write_access_map
from ..analysis.domains import StatementContext, statement_contexts
from ..lang.ast import (
    ArrayRef,
    BinOp,
    Call,
    Expr,
    IntConst,
    Program,
    UnaryOp,
    VarRef,
)
from ..lang.errors import ProgramClassError
from ..lang.validate import require_program_class
from ..telemetry import TRACER
from .graph import ADDG, ConstNode, ExprNode, OpNode, ReadNode, StatementNode

__all__ = ["build_addg", "build_expr_node"]

#: Display name used for the unary negation operator node.
NEGATE_OP = "neg"


def build_expr_node(
    expr: Expr,
    context: StatementContext,
    path: Tuple[int, ...] = (),
    position: int = 1,
) -> ExprNode:
    """Recursively convert a right-hand-side expression into ADDG nodes."""
    if isinstance(expr, IntConst):
        return ConstNode(expr.value)
    if isinstance(expr, ArrayRef):
        dependency = dependency_map(context, expr)
        return ReadNode(expr.name, expr, dependency, context.label, path, position)
    if isinstance(expr, BinOp):
        operands = [
            build_expr_node(expr.lhs, context, path + (1,), 1),
            build_expr_node(expr.rhs, context, path + (2,), 2),
        ]
        return OpNode(expr.op, operands, context.label, path)
    if isinstance(expr, UnaryOp):
        operand = build_expr_node(expr.operand, context, path + (1,), 1)
        return OpNode(NEGATE_OP, [operand], context.label, path)
    if isinstance(expr, Call):
        operands = [
            build_expr_node(argument, context, path + (index + 1,), index + 1)
            for index, argument in enumerate(expr.args)
        ]
        return OpNode(expr.func, operands, context.label, path)
    if isinstance(expr, VarRef):
        raise ProgramClassError(
            f"statement {context.label!r}: scalar {expr.name!r} used as a data operand "
            "(the allowed program class only reads array elements and constants)"
        )
    raise ProgramClassError(f"unsupported expression node {type(expr).__name__} in data position")


def build_addg(program: Program, validate: bool = True) -> ADDG:
    """Extract the ADDG of *program*.

    When *validate* is true (the default) the program is first checked against
    the allowed program class and a :class:`ProgramClassError` is raised for
    violations; the geometric data-flow prerequisites (single assignment,
    def-use order) are checked separately by :func:`repro.analysis.check_dataflow`
    as in the verification scheme of Fig. 6.
    """
    with TRACER.span("frontend.extract", "frontend", program=program.name):
        return _build_addg(program, validate)


def _build_addg(program: Program, validate: bool) -> ADDG:
    if validate:
        require_program_class(program)
    contexts = statement_contexts(program)
    statements: List[StatementNode] = []
    for context in contexts:
        rhs = build_expr_node(context.assignment.rhs, context)
        write_map = write_access_map(context)
        written = defined_set(context)
        statements.append(StatementNode(context, rhs, write_map, written))
    return ADDG(program, statements)
