"""Array data dependence graphs: structure, extraction, DOT export."""

from .dot import addg_to_dot
from .extractor import NEGATE_OP, build_addg, build_expr_node
from .graph import ADDG, ConstNode, ExprNode, OpNode, ReadNode, StatementNode

__all__ = [
    "ADDG",
    "ConstNode",
    "ExprNode",
    "NEGATE_OP",
    "OpNode",
    "ReadNode",
    "StatementNode",
    "addg_to_dot",
    "build_addg",
    "build_expr_node",
]
