"""Command-line driver implementing the verification scheme of Fig. 6.

Usage::

    repro-eqcheck original.c transformed.c
    repro-eqcheck original.c transformed.c --method basic --output C
    repro-eqcheck original.c transformed.c --dump-addg original.dot transformed.dot

The tool accepts the original and the transformed function in the mini-C
subset, runs the def-use checker, extracts the ADDGs, runs the equivalence
checker and prints either ``Equivalent`` or ``Not equivalent`` together with
diagnostics (and exits with status 0 / 1 respectively).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .addg import addg_to_dot, build_addg
from .checker import check_equivalence, default_registry
from .lang import parse_program

__all__ = ["main", "build_arg_parser"]


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-eqcheck",
        description=(
            "Functional equivalence checker for array-intensive programs related by "
            "expression propagation, loop and algebraic transformations (DATE 2005)."
        ),
    )
    parser.add_argument("original", help="path to the original function (mini-C)")
    parser.add_argument("transformed", help="path to the transformed function (mini-C)")
    parser.add_argument(
        "--method",
        choices=("basic", "extended"),
        default="extended",
        help="'basic' disables algebraic normalisation (Section 5.1); default: extended",
    )
    parser.add_argument(
        "--output",
        action="append",
        default=None,
        metavar="ARRAY",
        help="restrict the check to the given output array (repeatable, focused checking)",
    )
    parser.add_argument(
        "--correspond",
        action="append",
        default=[],
        metavar="ORIG=TRANS",
        help="declare an intermediate-array correspondence, e.g. --correspond buf=buf2",
    )
    parser.add_argument(
        "--declare-op",
        action="append",
        default=[],
        metavar="OP:PROPS",
        help="declare operator properties, e.g. --declare-op min:AC or --declare-op f:C",
    )
    parser.add_argument(
        "--no-preconditions",
        action="store_true",
        help="skip the def-use / single-assignment prerequisite checks",
    )
    parser.add_argument(
        "--no-tabling",
        action="store_true",
        help="disable tabling of established equivalences (for ablation experiments)",
    )
    parser.add_argument(
        "--dump-addg",
        nargs=2,
        metavar=("ORIG_DOT", "TRANS_DOT"),
        help="write the two extracted ADDGs in Graphviz DOT format and continue",
    )
    parser.add_argument("--quiet", action="store_true", help="print only the verdict line")
    return parser


def _parse_correspondences(entries: Sequence[str]) -> List[tuple]:
    result = []
    for entry in entries:
        if "=" not in entry:
            raise SystemExit(f"error: --correspond expects ORIG=TRANS, got {entry!r}")
        left, right = entry.split("=", 1)
        result.append((left.strip(), right.strip()))
    return result


def _parse_operator_declarations(entries: Sequence[str]):
    registry = default_registry()
    for entry in entries:
        if ":" not in entry:
            raise SystemExit(f"error: --declare-op expects OP:PROPS, got {entry!r}")
        op, props = entry.split(":", 1)
        props = props.strip().upper()
        registry.declare(op.strip(), associative="A" in props, commutative="C" in props)
    return registry


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_arg_parser()
    args = parser.parse_args(argv)

    try:
        with open(args.original, "r", encoding="utf-8") as handle:
            original_source = handle.read()
        with open(args.transformed, "r", encoding="utf-8") as handle:
            transformed_source = handle.read()
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    original = parse_program(original_source)
    transformed = parse_program(transformed_source)

    if args.dump_addg:
        original_dot, transformed_dot = args.dump_addg
        with open(original_dot, "w", encoding="utf-8") as handle:
            handle.write(addg_to_dot(build_addg(original), "original"))
        with open(transformed_dot, "w", encoding="utf-8") as handle:
            handle.write(addg_to_dot(build_addg(transformed), "transformed"))

    result = check_equivalence(
        original,
        transformed,
        method=args.method,
        registry=_parse_operator_declarations(args.declare_op),
        outputs=args.output,
        correspondences=_parse_correspondences(args.correspond),
        tabling=not args.no_tabling,
        check_preconditions=not args.no_preconditions,
    )

    if args.quiet:
        print("Equivalent" if result.equivalent else "Not equivalent")
    else:
        print(result.summary())
    return 0 if result.equivalent else 1


if __name__ == "__main__":
    sys.exit(main())
