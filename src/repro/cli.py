"""Command-line driver: one-pair checking (Fig. 6) and batch verification.

Usage::

    repro-eqcheck check original.c transformed.c
    repro-eqcheck check original.c transformed.c --method basic --output C
    repro-eqcheck check original.c transformed.c --json
    repro-eqcheck diagnose original.c transformed.c
    repro-eqcheck batch --generated 40 --buggy 10 --report report.jsonl
    repro-eqcheck batch --jobs jobs.json --workers 4 --timeout 60
    repro-eqcheck fuzz --seed 0 --pairs 50 --report fuzz_report.jsonl
    repro-eqcheck fuzz --smoke
    repro-eqcheck serve --port 8571 --workers 2 --cache-dir .eqcheck_cache
    repro-eqcheck serve --log server.jsonl --slow-threshold 5
    repro-eqcheck check original.c transformed.c --server 127.0.0.1:8571
    repro-eqcheck batch --kernel all --server 127.0.0.1:8571
    repro-eqcheck stats 127.0.0.1:8571
    repro-eqcheck stats --prom --watch 5

    repro-eqcheck original.c transformed.c          # legacy spelling of `check`

``check`` accepts the original and the transformed function in the mini-C
subset and runs them through a :class:`repro.verifier.Verifier` session: the
def-use checker, ADDG extraction and the equivalence engine.  Per-output
progress streams to stderr while the check runs (via the observer protocol);
the final summary and verdict go to stdout, with exit status 0 / 1 for
equivalent / not equivalent.  ``--json`` replaces the human summary with the
machine-readable :meth:`EquivalenceResult.to_dict` JSON object — the same
schema the batch JSONL report embeds per result row (see
``docs/batch-verification.md``).

``diagnose`` (:mod:`repro.diagnostics`) checks the pair like ``check`` and
then explains a non-equivalent verdict end to end: a concrete witness cell
sampled from the Presburger mismatch set, an interpreter replay that
reproduces the divergence on a seeded input (with the writing statements of
both sides), and the cell's dependency paths through the two ADDGs.  Exit
status follows ``check``; ``--json`` emits the
:meth:`FailureReport.to_dict` form.

``batch`` runs many pairs through :mod:`repro.service`: either a JSON job
file (``--jobs``) or the built-in corpus (kernels, generated equivalent pairs
and mutated buggy pairs), with result caching, optional worker processes and
per-job timeouts, writing a JSONL report.  It exits 0 when every job
completed and matched its expectation, 1 otherwise.

``serve`` starts the long-lived verification server (:mod:`repro.server`):
an asyncio daemon speaking newline-delimited JSON over TCP and/or a unix
socket, holding warm verifier sessions, a shared compiled-artifact store and
the verdict cache across requests, with cross-request dedup of identical
in-flight jobs and graceful ``SIGTERM`` draining.  ``check --server`` and
``batch --server`` send their jobs to such a daemon instead of checking
in-process — verdicts, output and exit codes are identical, only the
execution moves; see ``docs/server.md``.

``fuzz`` is the self-exercising mode (:mod:`repro.scenarios`): it manufactures
a seeded, labelled corpus of composed-transformation pairs plus mutated buggy
twins, labels every pair with the differential interpreter oracle, runs the
corpus through the batch service and reports the
checker-vs-expected-vs-oracle confusion matrix.  Unless ``--no-diagnose`` is
given, every non-equivalent verdict is additionally diagnosed
(:mod:`repro.diagnostics`): the failure report rides along in the JSONL rows
and two more hard gates apply — an oracle witness the checker-side replay
cannot reproduce, and a mutated twin whose pipeline bisection fails to name
the injected mutation step.  It exits non-zero on any *soundness
disagreement* (the checker proved a pair the oracle refutes with a concrete
witness input), on witness/bisection gate violations, on label disputes
(corpus bugs) and on failed jobs; re-running with the same seed reproduces
the corpus byte for byte.

All subcommands build one :class:`repro.verifier.CheckOptions` from the
shared checker flags (``--method``, ``--output``, ``--correspond``,
``--declare-op``, ``--no-tabling``, ``--no-preconditions``), so the option
set cannot drift between the one-pair and the batch paths.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence, TextIO

from .addg import addg_to_dot
from .checker import default_registry
from .lang import parse_program
from .verifier import CheckObserver, CheckOptions, Verifier

__all__ = ["main", "build_arg_parser", "build_cli_parser", "checker_options_from_args"]

_SUBCOMMANDS = ("check", "diagnose", "batch", "fuzz", "serve", "stats")

_DESCRIPTION = (
    "Functional equivalence checker for array-intensive programs related by "
    "expression propagation, loop and algebraic transformations (DATE 2005)."
)


def _add_checker_option_arguments(parser: argparse.ArgumentParser) -> None:
    """The checker flags shared by ``check`` and ``batch`` (one option set)."""
    parser.add_argument(
        "--method",
        choices=("basic", "extended"),
        default="extended",
        help="'basic' disables algebraic normalisation (Section 5.1); default: extended",
    )
    parser.add_argument(
        "--output",
        action="append",
        default=None,
        metavar="ARRAY",
        help="restrict the check to the given output array (repeatable, focused checking)",
    )
    parser.add_argument(
        "--correspond",
        action="append",
        default=[],
        metavar="ORIG=TRANS",
        help="declare an intermediate-array correspondence, e.g. --correspond buf=buf2",
    )
    parser.add_argument(
        "--declare-op",
        action="append",
        default=[],
        metavar="OP:PROPS",
        help="declare operator properties, e.g. --declare-op min:AC or --declare-op f:C",
    )
    parser.add_argument(
        "--no-preconditions",
        action="store_true",
        help="skip the def-use / single-assignment prerequisite checks",
    )
    parser.add_argument(
        "--no-tabling",
        action="store_true",
        help="disable tabling of established equivalences (for ablation experiments)",
    )
    parser.add_argument(
        "--backend",
        choices=("omega", "smtlib", "z3", "crosscheck"),
        default="omega",
        help="decision-procedure backend: the omega core (default), an SMT-LIB2 "
        "solver, the in-process z3 module, or 'crosscheck' (omega vs SMT on "
        "every query, hard error on divergence)",
    )
    parser.add_argument(
        "--smt-solver",
        metavar="CMD",
        default=None,
        help="solver command for the SMT backends, e.g. 'z3', 'cvc5 --lang smt2' "
        "or 'builtin' (default: auto-detect z3/cvc5, else builtin)",
    )
    parser.add_argument(
        "--persist-dir",
        metavar="DIR",
        default=None,
        help="persist the Presburger operation cache under DIR so warm state "
        "survives processes (shared by batch workers; default: in-memory only)",
    )


def _add_telemetry_arguments(parser: argparse.ArgumentParser) -> None:
    """The observability flags every subcommand shares (see docs/observability.md)."""
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="record spans for the whole run and write Chrome trace-event JSON "
        "(load in Perfetto or chrome://tracing)",
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        default=None,
        help="record counters/gauges/histograms and write them as JSONL "
        "(one metric object per line, plus an aggregate opcache row)",
    )


def _add_check_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("original", help="path to the original function (mini-C)")
    parser.add_argument("transformed", help="path to the transformed function (mini-C)")
    _add_checker_option_arguments(parser)
    _add_telemetry_arguments(parser)
    parser.add_argument(
        "--dump-addg",
        nargs=2,
        metavar=("ORIG_DOT", "TRANS_DOT"),
        help="write the two extracted ADDGs in Graphviz DOT format and continue",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable EquivalenceResult.to_dict() JSON instead of the summary",
    )
    parser.add_argument("--quiet", action="store_true", help="print only the verdict line")
    parser.add_argument(
        "--server",
        metavar="ADDR",
        default=None,
        help="send the check to a running `repro-eqcheck serve` daemon "
        "(HOST:PORT or unix:PATH) instead of checking in-process",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget for the check (enforced server-side with --server)",
    )


def _add_diagnose_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("original", help="path to the original function (mini-C)")
    parser.add_argument("transformed", help="path to the transformed function (mini-C)")
    _add_checker_option_arguments(parser)
    _add_telemetry_arguments(parser)
    parser.add_argument(
        "--trials",
        type=int,
        default=3,
        metavar="N",
        help="seeded random inputs the witness replay executes (default: 3)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="base seed of the replay inputs (default: 0)"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable FailureReport.to_dict() JSON instead of the report",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the check progress lines on stderr"
    )


def _add_batch_arguments(parser: argparse.ArgumentParser) -> None:
    source = parser.add_argument_group("job sources")
    source.add_argument(
        "--jobs",
        metavar="FILE",
        help="JSON job file (list of jobs with inline sources or mini-C file paths)",
    )
    source.add_argument(
        "--kernel",
        action="append",
        default=[],
        metavar="NAME",
        help="include the named DSP kernel pair ('all' for the whole registry; repeatable)",
    )
    source.add_argument(
        "--generated",
        type=int,
        default=0,
        metavar="N",
        help="include N randomly generated equivalence-preserving pairs",
    )
    source.add_argument(
        "--buggy",
        type=int,
        default=0,
        metavar="N",
        help="include N generated pairs with one injected error (expected not equivalent)",
    )
    source.add_argument("--seed", type=int, default=0, help="base seed of the generated pairs")
    source.add_argument("--stages", type=int, default=3, help="stages per generated program")
    source.add_argument("--size", type=int, default=24, help="domain size of generated programs")
    source.add_argument(
        "--transform-steps", type=int, default=3, help="transformation steps per generated pair"
    )
    _add_checker_option_arguments(parser)
    parser.add_argument(
        "--report",
        metavar="FILE",
        default="eqcheck_report.jsonl",
        help="JSONL report path (default: eqcheck_report.jsonl; '-' to skip the file)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=".eqcheck_cache",
        help="result cache directory (default: .eqcheck_cache)",
    )
    parser.add_argument("--no-cache", action="store_true", help="disable the result cache")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for cache misses (default: 1 = serial)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job wall-clock budget (default: unlimited)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="print only the summary (no per-job lines)"
    )
    parser.add_argument(
        "--server",
        metavar="ADDR",
        default=None,
        help="send the jobs to a running `repro-eqcheck serve` daemon (HOST:PORT or "
        "unix:PATH); caching, workers and timeouts are then the server's",
    )
    _add_telemetry_arguments(parser)


def _add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="TCP bind address (default: 127.0.0.1; use 0.0.0.0 behind a trusted network only)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8571,
        metavar="PORT",
        help="TCP port (default: 8571; 0 binds an ephemeral port, printed on startup)",
    )
    parser.add_argument(
        "--unix-socket",
        metavar="PATH",
        default=None,
        help="also (or instead) listen on a unix domain socket at PATH",
    )
    parser.add_argument(
        "--no-tcp",
        action="store_true",
        help="do not bind a TCP listener (requires --unix-socket)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="verifier worker threads; each holds one warm session (default: 1)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="persist the verdict cache under DIR (default: in-memory only)",
    )
    parser.add_argument("--no-cache", action="store_true", help="disable the verdict cache")
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-job budget when a request carries none (default: unlimited)",
    )
    parser.add_argument(
        "--max-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="ceiling clamped onto every request's budget (default: none)",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=16,
        metavar="N",
        help="per-connection in-flight request budget; excess is rejected "
        "with a rate_limited error (default: 16)",
    )
    parser.add_argument(
        "--drain-seconds",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="grace period for in-flight jobs on shutdown (default: 30)",
    )
    parser.add_argument(
        "--compiled-entries",
        type=int,
        default=512,
        metavar="N",
        help="shared compiled-artifact store capacity (default: 512)",
    )
    parser.add_argument(
        "--session-entries",
        type=int,
        default=64,
        metavar="N",
        help="per-session compiled-program cache capacity (default: 64)",
    )
    parser.add_argument(
        "--backend",
        choices=("omega", "smtlib", "z3", "crosscheck"),
        default=None,
        help="decision backend applied to requests that do not choose one "
        "themselves (default: honour each job's own options)",
    )
    parser.add_argument(
        "--smt-solver",
        metavar="CMD",
        default=None,
        help="solver command for the SMT backends (default: auto-detect)",
    )
    parser.add_argument(
        "--persist-dir",
        metavar="DIR",
        default=None,
        help="persist the Presburger operation cache under DIR so warm "
        "state survives server restarts (default: in-memory only)",
    )
    observability = parser.add_argument_group("observability")
    observability.add_argument(
        "--log",
        metavar="FILE",
        default=None,
        dest="log_path",
        help="append one structured JSON event per line (connects, requests, "
        "verdicts) to FILE; see docs/observability.md for the schema",
    )
    observability.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default="info",
        help="minimum event level written to --log (default: info; debug adds "
        "connect/disconnect and non-check requests)",
    )
    observability.add_argument(
        "--log-max-bytes",
        type=int,
        default=32 * 1024 * 1024,
        metavar="N",
        help="rotate the request log (FILE -> FILE.1) when it would exceed "
        "N bytes (default: 32 MiB)",
    )
    observability.add_argument(
        "--slow-threshold",
        type=float,
        default=None,
        metavar="SECONDS",
        help="capture a self-contained record of every check slower than "
        "SECONDS into the in-memory slow ring (0 captures everything; "
        "default: disabled)",
    )
    observability.add_argument(
        "--slow-capacity",
        type=int,
        default=32,
        metavar="N",
        help="slow-request ring size; oldest records are evicted (default: 32)",
    )


def _add_stats_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "server",
        nargs="?",
        default="127.0.0.1:8571",
        metavar="ADDR",
        help="server address, HOST:PORT or unix:PATH (default: 127.0.0.1:8571)",
    )
    parser.add_argument(
        "--prom",
        action="store_true",
        help="print the snapshot in Prometheus text exposition format 0.0.4",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the raw JSON snapshot instead of the human summary",
    )
    parser.add_argument(
        "--slow",
        action="store_true",
        help="also fetch and print the captured slow-request records",
    )
    parser.add_argument(
        "--watch",
        type=float,
        default=None,
        metavar="SECONDS",
        help="refresh every SECONDS over one connection until interrupted",
    )


def _add_fuzz_arguments(parser: argparse.ArgumentParser) -> None:
    corpus = parser.add_argument_group("corpus shape")
    corpus.add_argument("--seed", type=int, default=0, help="corpus seed (default: 0)")
    corpus.add_argument(
        "--pairs",
        type=int,
        default=20,
        metavar="N",
        help="number of scenarios; each yields one equivalent pair and, at "
        "--mutation-rate, one mutated buggy twin (default: 20)",
    )
    corpus.add_argument(
        "--max-depth",
        type=int,
        default=4,
        metavar="K",
        help="maximum composed-transformation pipeline depth (default: 4)",
    )
    corpus.add_argument(
        "--mutation-rate",
        type=float,
        default=0.35,
        metavar="P",
        help="probability of pairing a scenario with a known-buggy twin (default: 0.35)",
    )
    corpus.add_argument(
        "--size", type=int, default=20, help="domain size of generated base programs (default: 20)"
    )
    corpus.add_argument(
        "--kernel-fraction",
        type=float,
        default=0.2,
        metavar="P",
        help="fraction of scenarios drawn from the (shrunken) DSP kernel suite (default: 0.2)",
    )
    corpus.add_argument(
        "--oracle-trials",
        type=int,
        default=3,
        metavar="N",
        help="random inputs the differential oracle executes per pair (default: 3)",
    )
    _add_checker_option_arguments(parser)
    parser.add_argument(
        "--report",
        metavar="FILE",
        default="fuzz_report.jsonl",
        help="JSONL report path (default: fuzz_report.jsonl; '-' to skip the file)",
    )
    parser.add_argument(
        "--corpus-out",
        metavar="FILE",
        default=None,
        help="also persist the labelled scenario corpus (sources, traces, oracle verdicts) as JSONL",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the verification batch (default: 1 = serial)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job wall-clock budget (default: unlimited)",
    )
    parser.add_argument(
        "--no-diagnose",
        action="store_true",
        help="skip the witness diagnosis of non-equivalent pairs (and its report blocks)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail on incompleteness (equivalent pairs the checker cannot prove)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fixed-size CI corpus (overrides --pairs/--size/--max-depth)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="print only the summary (no per-pair lines)"
    )
    _add_telemetry_arguments(parser)


def build_arg_parser() -> argparse.ArgumentParser:
    """The single-pair parser (the legacy no-subcommand CLI, same as ``check``)."""
    parser = argparse.ArgumentParser(prog="repro-eqcheck", description=_DESCRIPTION)
    _add_check_arguments(parser)
    return parser


def build_cli_parser() -> argparse.ArgumentParser:
    """The full subcommand CLI (``check`` / ``batch``)."""
    parser = argparse.ArgumentParser(prog="repro-eqcheck", description=_DESCRIPTION)
    subparsers = parser.add_subparsers(dest="command", required=True)
    check = subparsers.add_parser(
        "check", help="check one (original, transformed) pair", description=_DESCRIPTION
    )
    _add_check_arguments(check)
    diagnose = subparsers.add_parser(
        "diagnose",
        help="check one pair and explain a non-equivalent verdict with a concrete, "
        "replayable witness",
        description=(
            "Witness synthesis and fault localization: sample a concrete element "
            "from the checker's Presburger mismatch sets, reproduce the divergence "
            "with the reference interpreter on seeded inputs, and walk the cell's "
            "dependency paths through both ADDGs."
        ),
    )
    _add_diagnose_arguments(diagnose)
    batch = subparsers.add_parser(
        "batch",
        help="run a job file or the built-in corpus through the batch service",
        description="Batch verification with result caching and parallel workers.",
    )
    _add_batch_arguments(batch)
    fuzz = subparsers.add_parser(
        "fuzz",
        help="manufacture a labelled scenario corpus and cross-check the checker "
        "against the differential interpreter oracle",
        description=(
            "Self-exercising verification: composed transformation pipelines plus "
            "mutated buggy twins, every verdict cross-checked against an "
            "interpreter-based differential oracle.  Exits non-zero on any "
            "soundness disagreement."
        ),
    )
    _add_fuzz_arguments(fuzz)
    serve = subparsers.add_parser(
        "serve",
        help="run the long-lived verification server (warm sessions, shared "
        "caches, request dedup)",
        description=(
            "A JSON-over-TCP/unix-socket daemon that keeps verifier sessions, "
            "compiled artifacts and the verdict cache warm across requests, "
            "coalesces identical in-flight jobs, and drains gracefully on "
            "SIGTERM.  Point `check --server` / `batch --server` at it."
        ),
    )
    _add_serve_arguments(serve)
    stats = subparsers.add_parser(
        "stats",
        help="inspect a running server: deep counters, latency histograms, "
        "Prometheus exposition, slow requests",
        description=(
            "Fetch a running server's observability snapshot and render it as "
            "a human summary (default), raw JSON (--json), or Prometheus text "
            "exposition (--prom, ready for a scrape job or textfile collector)."
        ),
    )
    _add_stats_arguments(stats)
    return parser


def _parse_correspondences(entries: Sequence[str]) -> List[tuple]:
    result = []
    for entry in entries:
        if "=" not in entry:
            raise SystemExit(f"error: --correspond expects ORIG=TRANS, got {entry!r}")
        left, right = entry.split("=", 1)
        result.append((left.strip(), right.strip()))
    return result


def _parse_operator_declarations(entries: Sequence[str]):
    registry = default_registry()
    for entry in entries:
        if ":" not in entry:
            raise SystemExit(f"error: --declare-op expects OP:PROPS, got {entry!r}")
        op, props = entry.split(":", 1)
        props = props.strip().upper()
        registry.declare(op.strip(), associative="A" in props, commutative="C" in props)
    return registry


def checker_options_from_args(args: argparse.Namespace) -> CheckOptions:
    """Build the one :class:`CheckOptions` value both subcommands share."""
    return CheckOptions.from_registry(
        _parse_operator_declarations(args.declare_op),
        method=args.method,
        outputs=tuple(args.output) if args.output else None,
        correspondences=tuple(_parse_correspondences(args.correspond)),
        tabling=not args.no_tabling,
        check_preconditions=not args.no_preconditions,
        timeout=getattr(args, "timeout", None),
        backend=getattr(args, "backend", "omega"),
        smt_solver=getattr(args, "smt_solver", None),
        persist_dir=getattr(args, "persist_dir", None),
    )


class _ProgressObserver(CheckObserver):
    """Streams per-output progress lines to *stream* while a check runs."""

    def __init__(self, stream: TextIO):
        self._stream = stream

    def on_output_checked(self, report) -> None:
        status = "ok" if report.equivalent else "FAILED"
        print(f"  [checking] output {report.array}: {status}", file=self._stream, flush=True)

    def on_stats(self, stats) -> None:
        print(
            f"  [checking] frontend {stats.frontend_seconds:.3f} s, "
            f"engine {stats.engine_seconds:.3f} s",
            file=self._stream,
            flush=True,
        )


def _read_pair(args: argparse.Namespace):
    """Read the two mini-C files of a pair subcommand.

    Returns ``(original_source, transformed_source)`` or ``None`` after
    printing the usage error (the caller exits 2).
    """
    try:
        with open(args.original, "r", encoding="utf-8") as handle:
            original_source = handle.read()
        with open(args.transformed, "r", encoding="utf-8") as handle:
            transformed_source = handle.read()
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return None
    return original_source, transformed_source


def _print_json(payload) -> None:
    import json

    print(json.dumps(payload, sort_keys=True))


def _check_on_server(args: argparse.Namespace, original_source: str, transformed_source: str) -> int:
    """The `check --server` path: ship the pair to a daemon, render as usual."""
    from .server import ServerClient, ServerError
    from .service import JobStatus, VerificationJob

    if args.dump_addg:
        print("error: --dump-addg is not available with --server", file=sys.stderr)
        return 2
    from . import telemetry

    job = VerificationJob(
        name=args.original,
        original_source=original_source,
        transformed_source=transformed_source,
        options=checker_options_from_args(args),
    )
    # When the run is traced (--trace wraps this via _run_with_telemetry),
    # ask the daemon for its spans too and merge them into our timeline: the
    # exported trace then shows client wait and server work side by side,
    # keyed by pid.
    want_trace = telemetry.TRACER.enabled
    try:
        with ServerClient(args.server) as client:
            with telemetry.TRACER.span("client.request", "server", server=args.server):
                outcome = client.check_job(job, timeout=args.timeout, trace=want_trace)
    except (ServerError, ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if want_trace and getattr(outcome, "telemetry", None):
        telemetry.ingest_spans(outcome.telemetry.get("spans") or ())
        outcome.telemetry = None
    if outcome.status != JobStatus.OK or outcome.result is None:
        print(
            f"error: server check {outcome.status}: {outcome.error or 'no result'}",
            file=sys.stderr,
        )
        return 2
    result = outcome.result
    if args.json:
        _print_json(result.to_dict())
    elif args.quiet:
        print("Equivalent" if result.equivalent else "Not equivalent")
    else:
        print(result.summary())
    return 0 if result.equivalent else 1


def _run_check(args: argparse.Namespace) -> int:
    sources = _read_pair(args)
    if sources is None:
        return 2
    original_source, transformed_source = sources
    if getattr(args, "server", None):
        return _check_on_server(args, original_source, transformed_source)

    original = parse_program(original_source)
    transformed = parse_program(transformed_source)

    verifier = Verifier(options=checker_options_from_args(args))
    if args.dump_addg:
        # The compiled artifacts are cached in the session, so the ADDGs
        # written here are the very ones the subsequent check traverses.
        original_dot, transformed_dot = args.dump_addg
        with open(original_dot, "w", encoding="utf-8") as handle:
            handle.write(addg_to_dot(verifier.compile(original).addg, "original"))
        with open(transformed_dot, "w", encoding="utf-8") as handle:
            handle.write(addg_to_dot(verifier.compile(transformed).addg, "transformed"))

    observer = None if args.quiet or args.json else _ProgressObserver(sys.stderr)
    from .service import JobTimeoutError, call_with_timeout

    try:
        result = call_with_timeout(
            lambda: verifier.check(original, transformed, observer=observer),
            getattr(args, "timeout", None),
        )
    except JobTimeoutError:
        print(f"error: check exceeded the {args.timeout:g} s budget", file=sys.stderr)
        return 2

    if args.json:
        _print_json(result.to_dict())
    elif args.quiet:
        print("Equivalent" if result.equivalent else "Not equivalent")
    else:
        print(result.summary())
    return 0 if result.equivalent else 1


def _run_diagnose(args: argparse.Namespace) -> int:
    sources = _read_pair(args)
    if sources is None:
        return 2
    original_source, transformed_source = sources

    verifier = Verifier(options=checker_options_from_args(args))
    observer = None if args.quiet or args.json else _ProgressObserver(sys.stderr)
    report = verifier.diagnose(
        original_source,
        transformed_source,
        observer=observer,
        replay_trials=args.trials,
        replay_seed=args.seed,
    )
    if args.json:
        _print_json(report.to_dict())
    else:
        print(report.format())
    return 0 if report.equivalent else 1


def _open_report(path: Optional[str]):
    """Open the streaming JSONL report for writing, before any job runs.

    An unwritable path must fail fast, not after minutes of checking with
    every verdict lost.  Returns ``(handle, exit_code)``: ``handle`` is
    ``None`` for no report (path empty or ``"-"``) and ``exit_code`` is ``2``
    when the open failed (an error was printed).
    """
    if not path or path == "-":
        return None, None
    try:
        return open(path, "w", encoding="utf-8"), None
    except OSError as error:
        print(f"error: cannot write report: {error}", file=sys.stderr)
        return None, 2


def _make_progress(report_handle, quiet: bool, format_line):
    """The per-job progress callback both batch-style subcommands share.

    Rows are streamed to the report as jobs complete, so a killed batch
    still leaves every finished verdict readable; ``format_line(outcome)``
    renders the subcommand's human-readable line.
    """
    from .service import write_result_row

    def progress(outcome):
        if report_handle is not None:
            write_result_row(report_handle, outcome)
        if not quiet:
            print(format_line(outcome))

    return progress


def _finish_report(report_handle, summary, path: Optional[str], quiet: bool) -> None:
    """Append the summary row, close the report, and say where it went."""
    from .service import write_summary_row

    if report_handle is None:
        return
    with report_handle:
        write_summary_row(report_handle, summary)
    if not quiet:
        print(f"report written to {path}")


def _batch_format_line(outcome) -> str:
    """The per-job progress line of ``batch`` (local and ``--server`` alike)."""
    from .service import JobStatus

    if outcome.status != JobStatus.OK:
        verdict = outcome.status.upper()
    elif outcome.equivalent:
        verdict = "equivalent"
    else:
        verdict = "NOT EQUIVALENT"
    origin = "cache" if outcome.cache_hit else f"{outcome.elapsed_seconds:.3f} s"
    flag = "  << UNEXPECTED" if outcome.matches_expectation is False else ""
    return f"  {outcome.name:<32} {verdict:<14} ({origin}){flag}"


def _batch_exit_code(results, summary) -> int:
    """The shared ``batch`` success contract (local and ``--server`` alike)."""
    from .service import JobStatus

    ok = all(outcome.status == JobStatus.OK for outcome in results)
    no_mismatch = not summary["expectation_mismatches"]
    # Jobs without an expectation fail the batch when not proven equivalent
    # (same contract as `check`).
    unexpected_nonequivalent = any(
        outcome.expected_equivalent is None
        and outcome.status == JobStatus.OK
        and not outcome.equivalent
        for outcome in results
    )
    return 0 if ok and no_mismatch and not unexpected_nonequivalent else 1


def _run_batch_on_server(args: argparse.Namespace, jobs) -> int:
    """The `batch --server` path: pipeline the jobs over one daemon connection."""
    from .server import ServerClient, ServerError
    from .service import aggregate_results, format_summary

    ignored = [
        flag
        for flag, given in (
            ("--workers", args.workers != 1),
            ("--cache-dir", args.cache_dir != ".eqcheck_cache"),
            ("--no-cache", args.no_cache),
        )
        if given
    ]
    if ignored:
        print(
            f"warning: {', '.join(ignored)} ignored with --server "
            "(the daemon's own pool and cache apply)",
            file=sys.stderr,
        )

    report_handle, error_code = _open_report(args.report)
    if error_code is not None:
        return error_code

    from . import telemetry

    want_trace = telemetry.TRACER.enabled
    base_progress = _make_progress(report_handle, args.quiet, _batch_format_line)

    def progress(outcome) -> None:
        # Fold each job's server-side spans into the client tracer as results
        # stream in, then drop the transient payload so reports stay lean.
        if want_trace and getattr(outcome, "telemetry", None):
            telemetry.ingest_spans(outcome.telemetry.get("spans") or ())
            outcome.telemetry = None
        base_progress(outcome)

    try:
        with ServerClient(args.server) as client:
            with telemetry.TRACER.span(
                "client.batch", "server", server=args.server, jobs=len(jobs)
            ):
                results = client.run_jobs(
                    jobs,
                    timeout=args.timeout,
                    progress=progress,
                    trace=want_trace,
                )
            server_stats = client.stats()
    except (ServerError, ValueError, OSError) as error:
        print(f"error: server batch failed: {error}", file=sys.stderr)
        if report_handle is not None:
            report_handle.close()
        return 2

    summary = aggregate_results(results)
    summary["server"] = {
        key: server_stats.get(key)
        for key in (
            "requests",
            "checks_executed",
            "cache_hits",
            "cache_hit_rate",
            "dedup_hits",
            "timeouts",
            "errors",
        )
    }
    _finish_report(report_handle, summary, args.report, args.quiet)
    print(format_summary(summary))
    if not args.quiet:
        print(
            f"server: {server_stats.get('checks_executed', 0)} executed, "
            f"{server_stats.get('cache_hits', 0)} verdict-cache hits, "
            f"{server_stats.get('dedup_hits', 0)} dedup hits"
        )
    return _batch_exit_code(results, summary)


def _run_batch(args: argparse.Namespace) -> int:
    # Imported lazily so `check` keeps working even if the service layer is
    # unavailable (e.g. a trimmed install).
    from .service import (
        BatchExecutor,
        CorpusSpec,
        ResultCache,
        aggregate_results,
        build_corpus,
        format_summary,
        jobs_from_file,
    )

    if args.jobs:
        # The job file is authoritative for job-level options; the shared
        # checker flags only parameterise the built-in corpus.  Say so out
        # loud instead of silently ignoring flags the user passed.
        ignored = [
            flag
            for flag, given in (
                ("--method", args.method != "extended"),
                ("--output", bool(args.output)),
                ("--correspond", bool(args.correspond)),
                ("--declare-op", bool(args.declare_op)),
                ("--no-tabling", args.no_tabling),
                ("--no-preconditions", args.no_preconditions),
            )
            if given
        ]
        if ignored:
            print(
                f"warning: {', '.join(ignored)} ignored with --jobs "
                "(each job's own options apply)",
                file=sys.stderr,
            )
        try:
            jobs = jobs_from_file(args.jobs)
        except (OSError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    else:
        spec = CorpusSpec(
            kernels=tuple(args.kernel),
            generated=args.generated,
            buggy=args.buggy,
            seed=args.seed,
            stages=args.stages,
            size=args.size,
            transform_steps=args.transform_steps,
            options=checker_options_from_args(args),
        )
        try:
            jobs = build_corpus(spec)
        except KeyError as error:
            print(f"error: {error.args[0]}", file=sys.stderr)
            return 2
    if not jobs:
        print(
            "error: no jobs selected; pass --jobs FILE or corpus options "
            "(--kernel/--generated/--buggy)",
            file=sys.stderr,
        )
        return 2

    if getattr(args, "server", None):
        return _run_batch_on_server(args, jobs)

    report_handle, error_code = _open_report(args.report)
    if error_code is not None:
        return error_code

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    executor = BatchExecutor(
        cache=cache,
        workers=args.workers,
        timeout=args.timeout,
        persist_dir=getattr(args, "persist_dir", None),
    )

    from .presburger import opcache

    opcache_before = opcache.cache().stats.copy()
    results = executor.run(
        jobs, progress=_make_progress(report_handle, args.quiet, _batch_format_line)
    )
    cache_stats = cache.stats if cache is not None else None
    opcache_delta = opcache.cache().stats.delta(opcache_before) if args.workers <= 1 else None
    summary = aggregate_results(results, cache_stats, opcache_stats=opcache_delta)
    _finish_report(report_handle, summary, args.report, args.quiet)
    print(format_summary(summary))
    return _batch_exit_code(results, summary)


def _run_fuzz(args: argparse.Namespace) -> int:
    from .scenarios import ScenarioSpec, build_scenarios, scenario_jobs, write_corpus
    from .service import BatchExecutor, JobStatus, aggregate_results, format_summary

    if args.smoke:
        # A fixed small corpus for CI: big enough to exercise every probe
        # class, small enough to finish in seconds.
        args.pairs, args.size, args.max_depth = 12, 14, 3

    spec = ScenarioSpec(
        seed=args.seed,
        pairs=args.pairs,
        max_depth=args.max_depth,
        mutation_rate=args.mutation_rate,
        size=args.size,
        kernel_fraction=args.kernel_fraction,
        oracle_trials=args.oracle_trials,
        oracle_seed=args.seed,
    )
    if not args.quiet:
        print(
            f"building {spec.pairs} scenarios (seed {spec.seed}, depth <= {spec.max_depth}, "
            f"mutation rate {spec.mutation_rate:g}) ...",
            file=sys.stderr,
        )
    pairs = build_scenarios(spec)
    buggy = sum(1 for pair in pairs if not pair.expected_equivalent)
    if not args.quiet:
        print(
            f"corpus: {len(pairs)} pairs ({len(pairs) - buggy} expected equivalent, "
            f"{buggy} oracle-validated buggy twins)",
            file=sys.stderr,
        )
    if args.corpus_out:
        try:
            write_corpus(args.corpus_out, pairs)
        except OSError as error:
            print(f"error: cannot write corpus: {error}", file=sys.stderr)
            return 2
        if not args.quiet:
            print(f"corpus written to {args.corpus_out}", file=sys.stderr)

    jobs = scenario_jobs(pairs, options=checker_options_from_args(args))

    report_handle, error_code = _open_report(args.report)
    if error_code is not None:
        return error_code

    # No verdict cache: a fuzz run must actually exercise the checker, and
    # seeded corpora change wholesale with the seed anyway.
    executor = BatchExecutor(cache=None, workers=args.workers, timeout=args.timeout)

    def format_line(outcome):
        if outcome.status != JobStatus.OK:
            verdict = outcome.status.upper()
        elif outcome.equivalent:
            verdict = "equivalent"
        else:
            verdict = "not equivalent"
        expected = outcome.metadata.get("expected_label", "?")
        oracle = (outcome.metadata.get("oracle") or {}).get("label", "?")
        flag = ""
        if outcome.status == JobStatus.OK and outcome.equivalent is not None:
            if outcome.equivalent and oracle == "NOT_EQUIVALENT":
                flag = "  << SOUNDNESS ERROR"
            elif outcome.matches_expectation is False:
                flag = "  << UNEXPECTED"
        failure = outcome.metadata.get("failure_report")
        if failure is not None:
            flag += "  [witness confirmed]" if failure.get("confirmed") else "  [witness UNCONFIRMED]"
        return f"  {outcome.name:<22} {verdict:<16} expected {expected:<14} oracle {oracle}{flag}"

    base_progress = _make_progress(report_handle, args.quiet, format_line)
    if args.no_diagnose:
        progress = base_progress
    else:
        # Diagnose every non-equivalent verdict before its row is streamed,
        # so the JSONL report carries the failure_report blocks and the
        # summary can gate on checker-witness vs oracle-witness agreement.
        from .diagnostics import attach_failure_report

        jobs_by_name = {job.name: job for job in jobs}
        reports_by_fingerprint = {}
        # One shared session: twins of one base original (and re-checked
        # duplicates) reuse the compiled frontend artifacts across diagnoses.
        diagnosis_session = Verifier()

        def progress(outcome):
            # In-batch duplicates share the leader's verdict; share its
            # diagnosis too instead of re-running replay + bisection.
            cached = reports_by_fingerprint.get(outcome.fingerprint)
            if cached is not None:
                outcome.metadata["failure_report"] = cached
            else:
                report = attach_failure_report(
                    outcome,
                    jobs_by_name.get(outcome.name),
                    trials=args.oracle_trials,
                    base_seed=args.seed,
                    verifier=diagnosis_session,
                )
                if report is not None and outcome.fingerprint:
                    reports_by_fingerprint[outcome.fingerprint] = outcome.metadata[
                        "failure_report"
                    ]
            base_progress(outcome)

    from .presburger import opcache

    opcache_before = opcache.cache().stats.copy()
    results = executor.run(jobs, progress=progress)
    opcache_delta = opcache.cache().stats.delta(opcache_before) if args.workers <= 1 else None
    summary = aggregate_results(results, opcache_stats=opcache_delta)
    _finish_report(report_handle, summary, args.report, args.quiet)
    print(format_summary(summary))

    scenarios = summary.get("scenarios") or {}
    ok = all(outcome.status == JobStatus.OK for outcome in results)
    hard_errors = bool(scenarios.get("soundness_errors")) or bool(scenarios.get("label_disputes"))
    # The diagnosis layer has its own hard gates: an oracle witness the
    # checker-side replay cannot reproduce, or a mutated twin whose pipeline
    # bisection fails to name the injected mutation.
    witness = scenarios.get("witness") or {}
    hard_errors = hard_errors or bool(witness.get("witness_errors")) or bool(
        witness.get("bisection_misses")
    )
    # A mutated twin the checker waves through is caught either as a soundness
    # error (oracle witness) or, defensively, as an expectation mismatch.
    missed_bugs = any(
        outcome.matches_expectation is False
        and outcome.expected_equivalent is False
        for outcome in results
    )
    strict_violations = args.strict and bool(scenarios.get("incompleteness"))
    # Backend-vs-backend divergence (crosscheck runs) is a soundness alarm of
    # its own: the decision procedures disagreed on a query, so neither
    # verdict can be trusted.  Always a hard failure.
    solvers_block = summary.get("solvers") or {}
    backend_disagreements = bool(solvers_block.get("disagreements"))
    return (
        0
        if ok
        and not hard_errors
        and not missed_bugs
        and not strict_violations
        and not backend_disagreements
        else 1
    )


def _run_serve(args: argparse.Namespace) -> int:
    from .server import ServerConfig, run_server

    if args.no_tcp and not args.unix_socket:
        print("error: --no-tcp requires --unix-socket", file=sys.stderr)
        return 2
    config = ServerConfig(
        host=None if args.no_tcp else args.host,
        port=args.port,
        unix_socket=args.unix_socket,
        workers=max(1, args.workers),
        cache_dir=args.cache_dir,
        no_cache=args.no_cache,
        compiled_entries=args.compiled_entries,
        session_entries=args.session_entries,
        default_timeout=args.timeout,
        max_timeout=args.max_timeout,
        max_inflight_per_client=args.max_inflight,
        drain_seconds=args.drain_seconds,
        backend=args.backend,
        smt_solver=args.smt_solver,
        persist_dir=args.persist_dir,
        log_path=args.log_path,
        log_level=args.log_level,
        log_max_bytes=args.log_max_bytes,
        slow_threshold=args.slow_threshold,
        slow_capacity=max(1, args.slow_capacity),
    )

    def ready(server) -> None:
        # The parseable startup banner: one `listening on ADDR` line per
        # listener, flushed before any request is served, so wrappers (CI,
        # tests, scripts) can wait for it and read the ephemeral port.
        for address in server.addresses:
            print(f"listening on {address}", flush=True)

    try:
        run_server(config, ready=ready)
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


def _run_stats(args: argparse.Namespace) -> int:
    """The `stats` subcommand: fetch and render a live server's snapshot."""
    import json
    import time

    from .server import ServerClient, ServerError
    from .service.report import format_server_snapshot

    def render(client) -> None:
        if args.prom:
            envelope = client.stats(format="prometheus")
            sys.stdout.write(envelope.get("text") or "")
            sys.stdout.flush()
            return
        snapshot = client.stats(slow=args.slow)
        if args.json:
            print(json.dumps(snapshot, sort_keys=True, default=str))
            return
        print(format_server_snapshot(snapshot))
        if args.slow:
            records = (snapshot.get("slow") or {}).get("records") or []
            if not records:
                print("slow requests: none captured")
            for record in records:
                print(json.dumps(record, sort_keys=True, default=str))

    try:
        with ServerClient(args.server) as client:
            while True:
                render(client)
                if not args.watch:
                    break
                time.sleep(max(0.1, args.watch))
                print(f"--- {time.strftime('%H:%M:%S')} ---")
    except KeyboardInterrupt:
        return 0
    except (ServerError, ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


def _run_with_telemetry(args: argparse.Namespace, runner) -> int:
    """Run a subcommand under the global tracer when --trace/--metrics ask for it.

    Telemetry wraps the *whole* run — corpus building, frontend, traversal,
    workers — so the exported trace shows the run end to end.  The files are
    written (and the per-phase summary printed to stderr) even when the run
    exits non-zero: a failing batch is exactly the one worth profiling.
    """
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    if not trace_path and not metrics_path:
        return runner(args)

    from . import telemetry
    from .presburger import opcache

    telemetry.reset()
    telemetry.enable()
    opcache_before = opcache.cache().stats.copy()
    try:
        return runner(args)
    finally:
        telemetry.disable()
        records = telemetry.spans()
        if trace_path:
            try:
                telemetry.write_chrome_trace(trace_path, records)
                print(f"trace written to {trace_path}", file=sys.stderr)
            except OSError as error:
                print(f"error: cannot write trace: {error}", file=sys.stderr)
        if metrics_path:
            opcache_delta = opcache.cache().stats.delta(opcache_before)
            try:
                telemetry.write_metrics_jsonl(
                    metrics_path,
                    telemetry.METRICS.snapshot(),
                    extra_rows=[{"type": "opcache", **opcache_delta.as_dict()}],
                )
                print(f"metrics written to {metrics_path}", file=sys.stderr)
            except OSError as error:
                print(f"error: cannot write metrics: {error}", file=sys.stderr)
        summary = telemetry.format_phase_summary(
            telemetry.aggregate_phase_seconds(records),
            len(records),
            telemetry.METRICS.counters(),
        )
        print(summary, file=sys.stderr)
        telemetry.reset()


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(argv) if argv is not None else sys.argv[1:]
    # Bare --help (and an empty command line) go to the subcommand parser so
    # `batch` stays discoverable; anything else that does not name a
    # subcommand is the legacy spelling `repro-eqcheck original.c transformed.c`.
    if not argv or argv[0] in _SUBCOMMANDS or argv[0] in ("-h", "--help"):
        args = build_cli_parser().parse_args(argv)
        if args.command == "batch":
            return _run_with_telemetry(args, _run_batch)
        if args.command == "fuzz":
            return _run_with_telemetry(args, _run_fuzz)
        if args.command == "diagnose":
            return _run_with_telemetry(args, _run_diagnose)
        if args.command == "serve":
            return _run_serve(args)
        if args.command == "stats":
            return _run_stats(args)
        return _run_with_telemetry(args, _run_check)
    args = build_arg_parser().parse_args(argv)
    return _run_with_telemetry(args, _run_check)


if __name__ == "__main__":
    sys.exit(main())
