"""Symbolic affine constraints used to build sets and maps.

An :class:`AffineConstraint` pairs a :class:`~repro.presburger.linexpr.LinExpr`
with a sense (equality or ``>= 0``).  The helper functions :func:`eq_`,
:func:`ge_`, :func:`le_`, :func:`gt_` and :func:`lt_` provide a readable way
of writing constraints in client code::

    from repro.presburger import LinExpr, ge_, lt_, eq_
    k = LinExpr.var("k")
    constraints = [ge_(k, 0), lt_(k, 1024), eq_(LinExpr.var("x"), 2 * k - 2)]
"""

from __future__ import annotations

from typing import Iterable, Tuple, Union

from .linexpr import LinExpr

_ExprLike = Union[LinExpr, int, str]

EQUALITY = "=="
INEQUALITY = ">="


class AffineConstraint:
    """A constraint of the form ``expr == 0`` or ``expr >= 0``."""

    __slots__ = ("expr", "kind")

    def __init__(self, expr: LinExpr, kind: str):
        if kind not in (EQUALITY, INEQUALITY):
            raise ValueError(f"unknown constraint kind {kind!r}")
        self.expr = expr
        self.kind = kind

    @property
    def is_equality(self) -> bool:
        return self.kind == EQUALITY

    def variables(self) -> Tuple[str, ...]:
        return self.expr.variables()

    def rename(self, mapping) -> "AffineConstraint":
        return AffineConstraint(self.expr.rename(mapping), self.kind)

    def substitute(self, bindings) -> "AffineConstraint":
        return AffineConstraint(self.expr.substitute(bindings), self.kind)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AffineConstraint):
            return NotImplemented
        return self.kind == other.kind and self.expr == other.expr

    def __hash__(self) -> int:
        return hash((self.kind, self.expr))

    def __repr__(self) -> str:
        op = "=" if self.is_equality else ">="
        return f"AffineConstraint({self.expr} {op} 0)"


def eq_(lhs: _ExprLike, rhs: _ExprLike = 0) -> AffineConstraint:
    """The constraint ``lhs == rhs``."""
    return AffineConstraint(LinExpr.coerce(lhs) - LinExpr.coerce(rhs), EQUALITY)


def ge_(lhs: _ExprLike, rhs: _ExprLike = 0) -> AffineConstraint:
    """The constraint ``lhs >= rhs``."""
    return AffineConstraint(LinExpr.coerce(lhs) - LinExpr.coerce(rhs), INEQUALITY)


def le_(lhs: _ExprLike, rhs: _ExprLike = 0) -> AffineConstraint:
    """The constraint ``lhs <= rhs``."""
    return AffineConstraint(LinExpr.coerce(rhs) - LinExpr.coerce(lhs), INEQUALITY)


def gt_(lhs: _ExprLike, rhs: _ExprLike = 0) -> AffineConstraint:
    """The constraint ``lhs > rhs`` (integer semantics: ``lhs >= rhs + 1``)."""
    return AffineConstraint(LinExpr.coerce(lhs) - LinExpr.coerce(rhs) - 1, INEQUALITY)


def lt_(lhs: _ExprLike, rhs: _ExprLike = 0) -> AffineConstraint:
    """The constraint ``lhs < rhs`` (integer semantics: ``lhs <= rhs - 1``)."""
    return AffineConstraint(LinExpr.coerce(rhs) - LinExpr.coerce(lhs) - 1, INEQUALITY)


def all_of(*constraints: Iterable[AffineConstraint]) -> Tuple[AffineConstraint, ...]:
    """Flatten nested iterables of constraints into a single tuple."""
    result = []
    for item in constraints:
        if isinstance(item, AffineConstraint):
            result.append(item)
        else:
            result.extend(all_of(*item))
    return tuple(result)
