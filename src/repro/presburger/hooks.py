"""The decision-backend hook of the Presburger layer.

:mod:`repro.presburger.setmap` consults this module before answering a
*decision query* (feasibility, subset, equality, disjointness, point
sampling).  When a backend is active — installed by
:func:`repro.solvers.use_backend` around an equivalence check — the query is
routed to it; when none is active (the default) the inline omega path runs,
byte-identically to the pre-backend code.

The holder is a :class:`contextvars.ContextVar`, so concurrent checks in
different threads (the server's warm worker pool) can run under different
backends without interference.  This module deliberately imports nothing
from the rest of the package: ``setmap`` depends on it, and
:mod:`repro.solvers` depends on ``setmap`` — the hook is the seam that keeps
that dependency one-way.
"""

from __future__ import annotations

import contextlib
from contextvars import ContextVar
from typing import Any, Iterator, Optional

__all__ = ["active_backend", "activate", "suspended"]

_ACTIVE: ContextVar[Optional[Any]] = ContextVar("repro_solver_backend", default=None)


def active_backend() -> Optional[Any]:
    """The backend decision queries are currently routed to (``None``: inline omega)."""
    return _ACTIVE.get()


@contextlib.contextmanager
def activate(backend: Optional[Any]) -> Iterator[Optional[Any]]:
    """Route decision queries to *backend* within the ``with`` block."""
    token = _ACTIVE.set(backend)
    try:
        yield backend
    finally:
        _ACTIVE.reset(token)


@contextlib.contextmanager
def suspended() -> Iterator[None]:
    """Temporarily restore the inline omega path.

    Backend implementations that re-enter the :class:`~repro.presburger.Set`
    / :class:`~repro.presburger.Map` API (e.g. to enumerate points) wrap the
    re-entrant calls in this context manager so they cannot recurse into
    themselves.
    """
    token = _ACTIVE.set(None)
    try:
        yield
    finally:
        _ACTIVE.reset(token)
