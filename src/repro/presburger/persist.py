"""Disk-backed operation cache + intern store (warm state across processes).

The in-memory op-cache (:mod:`repro.presburger.opcache`) dies with the
process, so every batch-executor worker and every server restart re-derives
the whole relation algebra cold.  This module adds an optional sqlite-backed
tier underneath it:

* on an in-memory **miss**, the memoized wrapper consults the store and — on
  a disk hit — decodes the stored result instead of recomputing it;
* every freshly computed result of a persistable operation is written
  through, so the *next* process starts warm;
* decoding routes every constraint vector and conjunct through the intern
  pools, which makes the store double as a persistent **intern store**: a
  warm start repopulates the hash-consing pools with canonical instances.

Design constraints, in order:

1. **Correctness is never at stake.**  The store only memoizes pure
   operations whose keys capture all inputs (the same contract as the
   in-memory cache), results are versioned by :data:`CACHE_FORMAT_VERSION`
   plus a fingerprint of the Python major/minor version and the kernel
   revision (stale or foreign files are wiped, never trusted), and every
   sqlite error degrades the store to a no-op — caches here are purely an
   optimization, an invariant the cache-invariance test leg gates.
2. **Multi-process safe.**  sqlite in WAL mode with a busy timeout handles
   concurrent executor workers and server threads sharing one directory; a
   ``threading.Lock`` serialises the connection inside one process, and
   :meth:`PersistentStore.reopened` gives forked workers a fresh connection
   (sqlite connections must not cross ``fork``).
3. **Compact keys.**  Keys are SHA-256 digests of a canonicalised pickle of
   ``(format-version, op, key)`` with conjuncts replaced by their
   ``normalized_key`` — the same structural identity the in-memory cache
   uses, so the two tiers can never disagree about equality.

Values are encoded with a small tagged scheme (ints, strings, tuples,
conjuncts, sets, maps) rather than raw pickle so that decoding rebuilds
*interned* objects; the envelope itself uses pickle for the primitives.
The file is a cache the process itself wrote — it is trusted the same way
the in-memory cache is.

Selection: set ``REPRO_OPCACHE_PERSIST_DIR`` (or ``CheckOptions.persist_dir``
/ the ``--persist-dir`` CLI flag, which export it) to a directory; the store
lives in ``<dir>/opcache.sqlite``.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sqlite3
import sys
import threading
from typing import Any, Optional, Tuple

from . import kernel as _kernel
from .conjunct import Conjunct

__all__ = [
    "CACHE_FORMAT_VERSION",
    "PERSISTABLE_OPS",
    "PersistentStore",
    "store_fingerprint",
]

#: Bump whenever the key canonicalisation or the value encoding changes;
#: mismatching stores are wiped on open.
CACHE_FORMAT_VERSION = 1

#: Operations whose results the store knows how to encode.  Everything the
#: in-memory cache memoizes today is covered; unknown ops simply stay
#: memory-only.
PERSISTABLE_OPS = frozenset(
    {"simplify", "feasible", "ui", "us", "compose", "inverse", "lexmin", "closure", "smt.query"}
)

#: Consecutive sqlite failures after which a store stops trying (a dead disk
#: should cost a bounded number of exceptions, not one per operation).
_MAX_ERRORS = 8

_DB_FILENAME = "opcache.sqlite"


def store_fingerprint() -> str:
    """The compatibility fingerprint burned into every store.

    Covers the serialisation format, the Python major/minor version (pickle
    stability) and the kernel revision (normal-form stability).  Deliberately
    *excludes* the active kernel mode and every tuning knob: those change
    execution strategy, never results.
    """
    return (
        f"format-v{CACHE_FORMAT_VERSION};"
        f"py{sys.version_info[0]}.{sys.version_info[1]};"
        f"{_kernel.fingerprint()}"
    )


# --------------------------------------------------------------------------- #
# Key canonicalisation and value encoding
# --------------------------------------------------------------------------- #
def _canonical(obj: Any) -> Any:
    """Replace conjuncts by their structural keys, recursively."""
    if isinstance(obj, Conjunct):
        return ("\x00conjunct", obj.normalized_key())
    if isinstance(obj, tuple):
        return tuple(_canonical(item) for item in obj)
    if obj is None or isinstance(obj, (bool, int, str, bytes, frozenset)):
        return obj
    raise TypeError(f"unsupported key component {type(obj).__name__}")


def encode_key(op: str, key: Any) -> bytes:
    """The 32-byte digest addressing ``(op, key)`` in the store."""
    payload = pickle.dumps(
        (CACHE_FORMAT_VERSION, op, _canonical(key)), protocol=4
    )
    return hashlib.sha256(payload).digest()


def _encode(value: Any) -> Any:
    """Tagged, interning-aware encoding of a memoized result."""
    if value is None:
        return ("N",)
    if value is True or value is False:
        return ("B", value)
    if isinstance(value, int):
        return ("I", value)
    if isinstance(value, str):
        return ("S", value)
    if isinstance(value, Conjunct):
        return ("C", value.n_vars, value.n_div, value.eqs, value.ineqs)
    # Import lazily: setmap imports opcache which imports this module.
    from .setmap import Map, Set

    if isinstance(value, Map):
        return (
            "M",
            tuple(value.in_names),
            tuple(value.out_names),
            tuple(_encode(c) for c in value.conjuncts),
        )
    if isinstance(value, Set):
        return ("Z", tuple(value.names), tuple(_encode(c) for c in value.conjuncts))
    if isinstance(value, tuple):
        return ("T",) + tuple(_encode(item) for item in value)
    raise TypeError(f"unsupported persisted value {type(value).__name__}")


def _decode(node: Any) -> Any:
    """Inverse of :func:`_encode`; conjuncts and rows come back interned."""
    tag = node[0]
    if tag == "N":
        return None
    if tag in ("B", "I", "S"):
        return node[1]
    if tag == "C":
        from . import opcache as _opcache

        _, n_vars, n_div, eqs, ineqs = node
        iv = _opcache.intern_vector
        conjunct = Conjunct._make(
            int(n_vars),
            int(n_div),
            tuple(iv(tuple(int(x) for x in row)) for row in eqs),
            tuple(iv(tuple(int(x) for x in row)) for row in ineqs),
        )
        return _opcache.intern_conjunct(conjunct)
    if tag == "M":
        from .setmap import Map

        _, in_names, out_names, conjuncts = node
        return Map(
            in_names,
            out_names,
            tuple(_decode(c) for c in conjuncts),
            _clean_input=False,
        )
    if tag == "Z":
        from .setmap import Set

        _, names, conjuncts = node
        return Set(names, tuple(_decode(c) for c in conjuncts), _clean_input=False)
    if tag == "T":
        return tuple(_decode(item) for item in node[1:])
    raise ValueError(f"unknown value tag {tag!r}")


def encode_value(value: Any) -> bytes:
    return pickle.dumps(_encode(value), protocol=4)


def decode_value(blob: bytes) -> Any:
    return _decode(pickle.loads(blob))


# --------------------------------------------------------------------------- #
# The store
# --------------------------------------------------------------------------- #
class PersistentStore:
    """A sqlite-backed second tier for the operation cache.

    Thread-safe (one lock around the shared connection) and multi-process
    safe (WAL journal, busy timeout, idempotent upserts).  All public
    methods degrade to misses/no-ops on any sqlite error; after
    ``_MAX_ERRORS`` consecutive failures the store disables itself.
    """

    #: A sentinel distinguishing "miss" from a stored ``None`` result.
    MISS = object()

    def __init__(self, path: str):
        self.path = os.path.abspath(path)
        self.disabled = False
        self.errors = 0
        self._lock = threading.Lock()
        os.makedirs(self.path, exist_ok=True)
        self._db_path = os.path.join(self.path, _DB_FILENAME)
        try:
            self._conn = self._open()
        except sqlite3.Error:
            # A corrupt file: start over once (losing a cache is fine).
            try:
                os.unlink(self._db_path)
                self._conn = self._open()
            except (OSError, sqlite3.Error):
                self._conn = None
                self.disabled = True

    def _open(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self._db_path, check_same_thread=False)
        conn.isolation_level = None  # autocommit: one statement, one txn
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute("PRAGMA busy_timeout=5000")
        conn.execute(
            "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT)"
        )
        conn.execute(
            "CREATE TABLE IF NOT EXISTS ops"
            " (key BLOB PRIMARY KEY, op TEXT NOT NULL, value BLOB NOT NULL)"
        )
        expected = store_fingerprint()
        row = conn.execute(
            "SELECT value FROM meta WHERE key = 'fingerprint'"
        ).fetchone()
        if row is None:
            conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES ('fingerprint', ?)",
                (expected,),
            )
        elif row[0] != expected:
            # Foreign or stale: wipe rather than risk decoding mismatched data.
            conn.execute("DELETE FROM ops")
            conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES ('fingerprint', ?)",
                (expected,),
            )
        return conn

    def reopened(self) -> "PersistentStore":
        """A fresh store over the same directory (for forked workers)."""
        return PersistentStore(self.path)

    def _fail(self) -> None:
        self.errors += 1
        if self.errors >= _MAX_ERRORS:
            self.disabled = True

    def load(self, op: str, key: Any) -> Any:
        """The stored result for ``(op, key)``, or :data:`MISS`."""
        if self.disabled or op not in PERSISTABLE_OPS:
            return self.MISS
        try:
            digest = encode_key(op, key)
        except TypeError:
            return self.MISS
        try:
            with self._lock:
                row = self._conn.execute(
                    "SELECT value FROM ops WHERE key = ?", (digest,)
                ).fetchone()
        except sqlite3.Error:
            self._fail()
            return self.MISS
        if row is None:
            return self.MISS
        try:
            return decode_value(row[0])
        except Exception:
            # A torn or undecodable row: treat as a miss and drop it.
            try:
                with self._lock:
                    self._conn.execute("DELETE FROM ops WHERE key = ?", (digest,))
            except sqlite3.Error:
                self._fail()
            return self.MISS

    def save(self, op: str, key: Any, value: Any) -> bool:
        """Write a computed result through; returns True when stored."""
        if self.disabled or op not in PERSISTABLE_OPS:
            return False
        try:
            digest = encode_key(op, key)
            blob = encode_value(value)
        except TypeError:
            return False
        try:
            with self._lock:
                self._conn.execute(
                    "INSERT OR REPLACE INTO ops (key, op, value) VALUES (?, ?, ?)",
                    (digest, op, blob),
                )
        except sqlite3.Error:
            self._fail()
            return False
        return True

    def entry_count(self) -> int:
        """Number of persisted results (0 when the store is unusable)."""
        if self.disabled:
            return 0
        try:
            with self._lock:
                return int(self._conn.execute("SELECT COUNT(*) FROM ops").fetchone()[0])
        except sqlite3.Error:
            self._fail()
            return 0

    def close(self) -> None:
        if getattr(self, "_conn", None) is not None:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None
        self.disabled = True
