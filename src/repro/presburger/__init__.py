"""Exact integer sets and tuple relations (the OMEGA-calculator substitute).

This package provides the Presburger-arithmetic machinery the equivalence
checker relies on: affine integer sets (:class:`Set`), tuple relations
(:class:`Map`), symbolic affine expressions (:class:`LinExpr`) and
constraints, a parser for the usual textual notation, and transitive closure
of dependence relations.

The heavy operations (composition, inversion, intersection, subtraction,
feasibility, transitive closure) are transparently memoized over hash-consed
operands by :mod:`repro.presburger.opcache`; see ``docs/presburger.md`` for
the layering and the tuning knobs (``REPRO_OPCACHE_SIZE``,
``REPRO_OPCACHE_DISABLE``).

Quick tour
----------

>>> from repro.presburger import parse_map, parse_set
>>> m = parse_map("{ [k] -> [2k] : 0 <= k < 512 }")
>>> n = parse_map("{ [k] -> [2k] : 0 <= k < 1024 }")
>>> m.is_subset(n)
True
>>> m.is_equal(n)
False
>>> str(m.domain())
'{ [k] : k >= 0 and -k + 511 >= 0 }'
"""

from . import opcache
from .conjunct import Conjunct
from .constraints import AffineConstraint, all_of, eq_, ge_, gt_, le_, lt_
from .closure import transitive_closure, power_closure_exactness
from .errors import (
    ParseError,
    PresburgerError,
    SpaceMismatchError,
    UnboundedSetError,
    UnsupportedOperationError,
)
from .linexpr import LinExpr
from .parser import parse_map, parse_set
from .setmap import Map, Set

__all__ = [
    "AffineConstraint",
    "Conjunct",
    "LinExpr",
    "Map",
    "ParseError",
    "PresburgerError",
    "Set",
    "SpaceMismatchError",
    "UnboundedSetError",
    "UnsupportedOperationError",
    "all_of",
    "eq_",
    "ge_",
    "gt_",
    "le_",
    "lt_",
    "opcache",
    "parse_map",
    "parse_set",
    "power_closure_exactness",
    "transitive_closure",
]
