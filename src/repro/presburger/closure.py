"""Transitive closure of dependence relations.

The paper handles cycles in an ADDG (recurrences in the data flow) by
computing the transitive closure of the total dependence mapping of the
cycle, noting that this "is computable only under certain conditions that
usually hold in most real-life programs".  This module implements exactly
that: the positive transitive closure ``M+`` for relations whose conjuncts
are *uniform* (constant-distance) translations, which covers the recurrences
appearing in the targeted signal-processing codes (``acc[k] = acc[k-1] + x``
and friends), plus an exactness certificate for the general case.

``transitive_closure`` returns a pair ``(closure, exact)``.  When ``exact``
is ``True`` the returned map is precisely ``M+``; otherwise it is a sound
over-approximation and callers (the equivalence checker) must treat the
result conservatively.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .conjunct import Conjunct
from .errors import UnsupportedOperationError
from .linexpr import LinExpr
from .constraints import AffineConstraint, EQUALITY, INEQUALITY
from .setmap import Map, Set
from . import opcache as _opcache

__all__ = ["transitive_closure", "closure_of_uniform_map", "power_closure_exactness"]


def _uniform_offsets(piece: Map) -> Optional[Tuple[int, ...]]:
    """If *piece* (a single-conjunct map) is a uniform translation, return its offset."""
    deltas = piece.deltas()
    if deltas.is_empty():
        return None
    points = []
    try:
        for point in deltas.points(limit=4):
            points.append(point)
            if len(points) > 1:
                return None
    except Exception:
        return None
    if len(points) != 1:
        return None
    return points[0]


def closure_of_uniform_map(relation: Map) -> Optional[Map]:
    """Exact positive transitive closure for a union of uniform translations.

    Returns ``None`` when the relation is not a union of uniform (constant
    offset) translations, in which case the caller should fall back to an
    over-approximation.
    """
    n = relation.n_in
    if n != relation.n_out:
        raise UnsupportedOperationError("transitive closure requires equal arities")

    pieces: List[Map] = []
    offsets: List[Tuple[int, ...]] = []
    for conjunct in relation.conjuncts:
        piece = Map(relation.in_names, relation.out_names, [conjunct], _clean_input=False)
        offset = _uniform_offsets(piece)
        if offset is None:
            return None
        pieces.append(piece)
        offsets.append(offset)

    if len(pieces) == 1:
        return _closure_single_uniform(pieces[0], offsets[0])

    # For unions, compute the closure iteratively:  closure of (A u B) =
    # limit of unions of compositions.  We bound the iteration and verify the
    # fixpoint; if it does not stabilise we report failure.
    closure = None
    for piece, offset in zip(pieces, offsets):
        piece_closure = _closure_single_uniform(piece, offset)
        if piece_closure is None:
            return None
        closure = piece_closure if closure is None else closure.union(piece_closure)
    if closure is None:
        return None
    # Grow until fixpoint (bounded number of rounds to stay safe).
    current = closure.union(relation)
    for _ in range(8):
        grown = current.union(current.compose(current))
        if grown.is_equal(current):
            return current
        current = grown
    return None


def _closure_single_uniform(piece: Map, offset: Tuple[int, ...]) -> Optional[Map]:
    """Closure of ``{ x -> x + d : x in D }``:  ``{ x -> x + k*d : k >= 1, ... }``.

    The result is exact when the relation's domain/range structure is itself a
    translation-invariant band, which we certify afterwards with
    :func:`power_closure_exactness`; otherwise ``None`` is returned.
    """
    n = piece.n_in
    in_names = [f"x{i}" for i in range(n)]
    out_names = [f"y{i}" for i in range(n)]
    k = LinExpr.var("__k")
    constraints = [AffineConstraint(k - 1, INEQUALITY)]  # k >= 1
    for index in range(n):
        lhs = LinExpr.var(out_names[index]) - LinExpr.var(in_names[index]) - offset[index] * k
        constraints.append(AffineConstraint(lhs, EQUALITY))
    candidate = Map.build(in_names, out_names, constraints, exists=["__k"])

    # Every chain starts at a point of the domain and ends at a point of the
    # range, so restricting the candidate this way keeps it a superset of the
    # true closure while making it tight for contiguous domains.
    candidate = candidate.restrict_domain(piece.domain()).restrict_range(piece.range())
    candidate = candidate.rename(piece.in_names, piece.out_names)
    if power_closure_exactness(piece, candidate):
        return candidate
    return None


def power_closure_exactness(relation: Map, candidate: Map) -> bool:
    """Check that *candidate* is exactly the positive transitive closure of *relation*.

    The certificate is the standard one:

    * ``relation`` is contained in ``candidate``;
    * ``candidate . relation`` and ``relation . candidate`` are contained in
      ``candidate`` (so ``candidate`` is transitively closed over relation);
    * ``candidate`` is contained in ``relation  u  (relation . candidate)``
      (so it contains nothing beyond the true closure).
    """
    if not relation.is_subset(candidate):
        return False
    if not relation.compose(candidate).is_subset(candidate):
        return False
    if not candidate.compose(relation).is_subset(candidate):
        return False
    rebuilt = relation.union(relation.compose(candidate))
    return candidate.is_subset(rebuilt)


def transitive_closure(relation: Map) -> Tuple[Map, bool]:
    """The positive transitive closure ``relation+`` with an exactness flag.

    For unions of uniform translations the result is exact.  Otherwise a
    sound over-approximation (the universe map restricted to the relation's
    domain and range hull) is returned with ``exact=False``.

    The result is memoized in the process-wide operation cache
    (:mod:`repro.presburger.opcache`): the fixpoint iteration behind the
    uniform-union case is by far the most expensive single operation in the
    library, and recurrence relations recur verbatim across the checks of a
    batch.
    """
    if relation.is_empty():
        return relation, True
    return _opcache.memoized(
        "closure",
        (relation.in_names, relation.out_names, relation.conjuncts),
        lambda: _transitive_closure_uncached(relation),
    )


def _transitive_closure_uncached(relation: Map) -> Tuple[Map, bool]:
    exact = closure_of_uniform_map(relation)
    if exact is not None:
        return exact, True
    # Sound over-approximation: anything in the domain may reach anything in
    # the union of domain and range (the checker treats non-exact closures
    # conservatively and refuses to conclude equivalence from them).
    hull_domain = relation.domain()
    hull_range = relation.range()
    over = Map.universe(relation.in_names, relation.out_names)
    over = over.restrict_domain(hull_domain.union(hull_range.rename(hull_domain.names)))
    over = over.restrict_range(hull_range.union(hull_domain.rename(hull_range.names)))
    return over, False
