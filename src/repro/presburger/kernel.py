"""Flat-matrix constraint kernel: batched row operations for the hot path.

The Presburger algorithms in :mod:`repro.presburger.omega` were written
object-at-a-time: every :class:`~repro.presburger.conjunct.Conjunct`
construction re-validates each row, every call to ``normalize`` recomputes
gcds element by element through :func:`vector_gcd`, and the Fourier–Motzkin
pair combination allocates one Python list per resultant.  Profiling the
repeated-composition workload shows those per-row Python loops (and the
constructor's ``_check``) dominate the runtime once the operation cache has
removed the repeated *logical* work.

This module re-backs those operations with a flat layout: a conjunct's
constraint block is treated as an integer matrix stored as a tuple of row
tuples (the storage :class:`Conjunct` already uses — so no conversion cost
at the boundary), and the kernel operates on whole row batches at once:

* ``normalize_conjunct`` — gcd reduction (C-level ``math.gcd(*row)``), sign
  canonicalisation, floor-tightening, duplicate/tightest-inequality
  reduction and opposite-pair promotion in one pass over all rows, building
  the result through the trusted :meth:`Conjunct._make` constructor (the
  rows are already validated tuples of ints, so per-row ``_check`` is pure
  overhead).  Results carry the ``_normed`` idempotence flag, which lets the
  feasibility/elimination recursion skip re-normalising values that are
  already normal forms (``normalize`` is idempotent, so the skip is
  bit-for-bit identical).
* ``fm_combine`` — the Fourier–Motzkin lower×upper pair combination as one
  batched product.  When numpy is importable (a feature probe — it is never
  required) and every coefficient fits comfortably in int64, the full outer
  product runs as three vectorised int64 operations; otherwise an optimised
  pure-Python pairing runs.  Pair order, dark-shadow slack and exactness
  bookkeeping match the object path bit for bit.
* ``drop_rows`` / ``substitute_drop`` — fused column elimination: apply a
  unit-coefficient substitution and remove the column in a single
  comprehension instead of substitute → construct → validate → drop →
  construct → validate.
* ``feasible_many`` — batched feasibility over all conjuncts of one
  ``Set``: one metrics increment, one normalisation sweep (near-free for
  ``_normed`` members) and the recursion only for the hard remainder.

Mode selection
--------------

``REPRO_KERNEL`` (environment variable)
    ``flat`` (the default) routes the hot path through this module;
    ``object`` keeps the original per-object code, byte-for-byte as it was
    — the ablation baseline for ``bench_presburger --kernel-ablation`` and
    the differential tests.

:func:`configure` / :func:`use`
    Programmatic runtime switch and a context manager for scoped ablation.

Both modes produce bit-identical verdicts and bit-identical ``Set``/``Map``
values; ``tests/unit/presburger/test_kernel.py`` sweeps the differential
corpus under both modes and asserts exact equality of the results, and the
solver cross-check suite gates end-to-end verdict identity.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from math import gcd as _gcd
from typing import Iterator, List, Optional, Sequence, Tuple

from .conjunct import Conjunct, Vector
from . import opcache as _opcache

__all__ = [
    "KERNEL_VERSION",
    "active_mode",
    "configure",
    "drop_rows",
    "feasible_many",
    "fingerprint",
    "fm_combine",
    "normalize_conjunct",
    "numpy_available",
    "substitute_drop",
    "use",
]

#: Bumped whenever the kernel's observable row layout or normal form
#: changes; folded into the persistent-cache fingerprint so stale on-disk
#: results can never leak across kernel revisions.
KERNEL_VERSION = 1

try:  # feature probe — numpy accelerates large FM batches but is optional
    import numpy as _np
except Exception:  # pragma: no cover - exercised on numpy-free installs
    _np = None

#: Minimum lower×upper pair count before the numpy FM path pays for its
#: array round-trip.
_NP_MIN_PAIRS = 16
#: Coefficient magnitude bound for the int64 FM path: |b*u + a*l| is then
#: below 2**61 and the dark-shadow slack subtraction below 2**62, so the
#: batched arithmetic is exact.  Larger coefficients fall back to Python
#: bignums.
_NP_COEFF_LIMIT = 1 << 30


def _env_mode() -> str:
    raw = os.environ.get("REPRO_KERNEL", "").strip().lower()
    return raw if raw in ("flat", "object") else "flat"


#: True when the flat-matrix kernel is active (module-global so the omega
#: hot path pays one attribute read, not a function call, per dispatch).
FLAT = _env_mode() == "flat"


def active_mode() -> str:
    """The current kernel mode: ``"flat"`` or ``"object"``."""
    return "flat" if FLAT else "object"


def numpy_available() -> bool:
    """Whether the optional numpy acceleration is importable."""
    return _np is not None


def configure(mode: str) -> None:
    """Select the kernel mode at runtime (``"flat"`` or ``"object"``)."""
    global FLAT
    if mode not in ("flat", "object"):
        raise ValueError(f"unknown kernel mode {mode!r} (expected 'flat' or 'object')")
    FLAT = mode == "flat"


@contextmanager
def use(mode: str) -> Iterator[None]:
    """Context manager: run a block under the given kernel mode.

    Used by the ablation benchmark and the differential tests; verdicts are
    identical either way, only the execution strategy changes.
    """
    previous = active_mode()
    configure(mode)
    try:
        yield
    finally:
        configure(previous)


def fingerprint() -> str:
    """The kernel revision folded into the persistent-cache fingerprint.

    Deliberately independent of the *active mode*: flat and object produce
    bit-identical results, so a warm on-disk cache is shared across modes.
    """
    return f"kernel-v{KERNEL_VERSION}"


# --------------------------------------------------------------------------- #
# Batched normalisation
# --------------------------------------------------------------------------- #
def normalize_conjunct(conjunct: Conjunct) -> Optional[Conjunct]:
    """Flat-matrix :func:`repro.presburger.omega.normalize` (bit-identical).

    Returns ``None`` on a syntactic contradiction, otherwise a conjunct
    whose rows are interned and which carries the ``_normed`` flag so a
    second pass is a no-op.
    """
    if conjunct._normed:
        return conjunct
    iv = _opcache.intern_vector

    eqs: List[Vector] = []
    for vec in conjunct.eqs:
        g = _gcd(*vec[:-1])
        if g == 0:
            if vec[-1] != 0:
                return None
            continue
        if g == 1:
            reduced = vec
        else:
            if vec[-1] % g:
                return None
            reduced = tuple(x // g for x in vec)
        # canonical sign: first non-zero coefficient positive (g != 0
        # guarantees the first non-zero entry precedes the constant)
        for x in reduced:
            if x != 0:
                if x < 0:
                    reduced = tuple(-y for y in reduced)
                break
        eqs.append(iv(reduced))

    ineqs: List[Vector] = []
    for vec in conjunct.ineqs:
        g = _gcd(*vec[:-1])
        if g == 0:
            if vec[-1] < 0:
                return None
            continue
        if g == 1:
            reduced = vec
        else:
            reduced = tuple(x // g for x in vec[:-1]) + (vec[-1] // g,)
        ineqs.append(iv(reduced))

    if eqs:
        eqs = list(dict.fromkeys(eqs))

    tightest = {}
    for vec in ineqs:
        key = vec[:-1]
        constant = vec[-1]
        prev = tightest.get(key)
        if prev is None or constant < prev:
            tightest[key] = constant

    final_ineqs: List[Vector] = []
    promoted: List[Vector] = []
    consumed = set()
    for key, constant in tightest.items():
        if key in consumed:
            continue
        neg_key = tuple(-x for x in key)
        other = tightest.get(neg_key)
        if other is not None and neg_key != key:
            total = constant + other
            if total < 0:
                return None
            if total == 0:
                promoted.append(key + (constant,))
                consumed.add(key)
                consumed.add(neg_key)
                continue
        final_ineqs.append(iv(key + (constant,)))

    for vec in promoted:
        g = _gcd(*vec[:-1])
        if g == 0:
            if vec[-1] != 0:
                return None
            continue
        if vec[-1] % g:
            return None
        reduced = tuple(x // g for x in vec)
        for x in reduced:
            if x != 0:
                if x < 0:
                    reduced = tuple(-y for y in reduced)
                break
        reduced = iv(reduced)
        if reduced not in eqs:
            eqs.append(reduced)

    return Conjunct._make(
        conjunct.n_vars, conjunct.n_div, tuple(eqs), tuple(final_ineqs), normed=True
    )


# --------------------------------------------------------------------------- #
# Batched Fourier–Motzkin pair combination
# --------------------------------------------------------------------------- #
def fm_combine(
    lowers: Sequence[Vector],
    uppers: Sequence[Vector],
    col: int,
    unit_bounds: bool,
) -> Tuple[List[Vector], List[Vector], bool]:
    """All lower×upper FM resultants for column *col* in one batch.

    Returns ``(real_shadow, dark_shadow, all_exact)`` with rows in the same
    lower-major order as the object path's nested loop.  ``dark_shadow`` is
    empty when *unit_bounds* (the slack vanishes for every pair).
    """
    if _np is not None and len(lowers) * len(uppers) >= _NP_MIN_PAIRS:
        limit = _NP_COEFF_LIMIT
        if all(
            -limit < x < limit for row in lowers for x in row
        ) and all(-limit < x < limit for row in uppers for x in row):
            return _fm_combine_np(lowers, uppers, col, unit_bounds)
    return _fm_combine_py(lowers, uppers, col, unit_bounds)


def _fm_combine_np(lowers, uppers, col, unit_bounds):
    lower_mat = _np.array(lowers, dtype=_np.int64)
    upper_mat = _np.array(uppers, dtype=_np.int64)
    b = lower_mat[:, col]  # positive lower-bound coefficients
    a = -upper_mat[:, col]  # positive upper-bound coefficients
    # resultant[i, j, :] = b_i * upper_j + a_j * lower_i
    res = (
        b[:, None, None] * upper_mat[None, :, :]
        + a[None, :, None] * lower_mat[:, None, :]
    )
    rows = res.reshape(-1, lower_mat.shape[1])
    real = [tuple(map(int, row)) for row in rows]
    if unit_bounds:
        return real, [], True
    slack = ((b[:, None] - 1) * (a[None, :] - 1)).reshape(-1)
    all_exact = not bool(slack.any())
    dark_rows = rows.copy()
    dark_rows[:, -1] -= slack
    dark = [tuple(map(int, row)) for row in dark_rows]
    return real, dark, all_exact


def _fm_combine_py(lowers, uppers, col, unit_bounds):
    real: List[Vector] = []
    dark: List[Vector] = []
    all_exact = True
    for lower in lowers:
        b = lower[col]
        for upper in uppers:
            a = -upper[col]
            resultant = tuple(b * u + a * l for u, l in zip(upper, lower))
            real.append(resultant)
            if unit_bounds:
                continue
            slack = (a - 1) * (b - 1)
            if slack:
                all_exact = False
            dark.append(resultant[:-1] + (resultant[-1] - slack,))
    return real, dark, all_exact


# --------------------------------------------------------------------------- #
# Fused column elimination
# --------------------------------------------------------------------------- #
def drop_rows(rows: Sequence[Vector], col: int) -> List[Vector]:
    """Remove column *col* from every row (the rows must not use it)."""
    return [vec[:col] + vec[col + 1 :] for vec in rows]


def substitute_drop(rows: Sequence[Vector], eq: Vector, col: int) -> List[Vector]:
    """Substitute the unit-coefficient equality *eq* for column *col* and
    remove the column, in one pass per row.

    Equivalent to ``_apply_substitution`` followed by ``drop_col`` on the
    object path, without the two intermediate constructions.
    """
    a = eq[col]  # +1 or -1
    out: List[Vector] = []
    for vec in rows:
        b = vec[col]
        if b == 0:
            out.append(vec[:col] + vec[col + 1 :])
        else:
            scale = -a * b
            out.append(
                tuple(
                    vec[j] + scale * eq[j]
                    for j in range(len(vec))
                    if j != col
                )
            )
    return out


# --------------------------------------------------------------------------- #
# Batched feasibility
# --------------------------------------------------------------------------- #
def feasible_many(conjuncts: Sequence[Conjunct]) -> List[bool]:
    """Integer feasibility of every conjunct of one ``Set`` in one pass.

    One batched metrics increment, one normalisation sweep (a no-op for
    ``_normed`` members, i.e. the common case of freshly simplified
    conjuncts) and the elimination recursion only for the hard remainder.
    Bit-identical to mapping :func:`repro.presburger.omega.is_feasible`.
    """
    from . import omega as _omega

    if _omega._METRICS.enabled and conjuncts:
        _omega._METRICS.inc("presburger.feasibility_checks", len(conjuncts))
    results: List[bool] = []
    for conjunct in conjuncts:
        if conjunct.is_universe():
            results.append(True)
            continue
        normalized = _omega.normalize(conjunct)
        if normalized is None:
            results.append(False)
            continue
        if normalized.is_universe():
            results.append(True)
            continue
        if normalized.const_col == 0:
            results.append(
                all(v[-1] == 0 for v in normalized.eqs)
                and all(v[-1] >= 0 for v in normalized.ineqs)
            )
            continue
        col = _omega._choose_elimination_col(normalized)
        results.append(
            any(
                _omega.is_feasible(piece)
                for piece in _omega.eliminate_col(normalized, col)
            )
        )
    return results
