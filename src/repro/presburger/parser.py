"""Parser for the textual set / map notation used throughout the project.

The notation follows the style of the OMEGA calculator and isl, which is also
the notation the paper uses for dependency mappings::

    { [k] -> [2k] : 0 <= k < 1024 }
    { [k] -> [2k - 2] : 1 <= k <= 1024 }
    { [x, y] : 0 <= x < 8 and 0 <= y < 8 and (x + y) % 2 = 0 }
    { [k] -> [k] : exists j : k = 2j and 0 <= k < 16 }
    { [k] -> [k] : 0 <= k < 8 ; [k] -> [k + 1] : 8 <= k < 16 }

Several conjuncts may be separated with ``;`` or the keyword ``or``.
Multiplication may be written explicitly (``2*k``) or implicitly (``2k``).
Chained comparisons (``0 <= k < 1024``) are supported, as are ``%``/``mod``
expressions inside constraints (lowered to a fresh existential variable).
Variables that are neither tuple dimensions nor declared with ``exists`` are
treated as implicitly existentially quantified, as in the OMEGA calculator.
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence, Tuple, Union

from .constraints import AffineConstraint, EQUALITY, INEQUALITY
from .errors import ParseError
from .linexpr import LinExpr
from .setmap import Map, Set

__all__ = ["parse_set", "parse_map"]

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<num>\d+)|(?P<name>[A-Za-z_][A-Za-z_0-9']*)"
    r"|(?P<op><=|>=|->|=|<|>|\+|-|\*|%|\(|\)|\[|\]|\{|\}|,|:|;))"
)

_KEYWORDS = {"and", "or", "exists", "mod"}

_TupleItem = Union[Tuple[str, str], Tuple[str, LinExpr]]  # ("name", n) or ("expr", e)


class _Tokenizer:
    def __init__(self, text: str):
        self.tokens: List[Tuple[str, str]] = []
        position = 0
        while position < len(text):
            if text[position].isspace():
                position += 1
                continue
            match = _TOKEN_RE.match(text, position)
            if not match or match.end() == position:
                raise ParseError(f"unexpected character {text[position]!r} at offset {position}")
            if match.group("num") is not None:
                self.tokens.append(("num", match.group("num")))
            elif match.group("name") is not None:
                name = match.group("name")
                if name in _KEYWORDS:
                    self.tokens.append(("kw", name))
                else:
                    self.tokens.append(("name", name))
            else:
                self.tokens.append(("op", match.group("op")))
            position = match.end()
        self.index = 0

    def peek(self, offset: int = 0) -> Optional[Tuple[str, str]]:
        if self.index + offset < len(self.tokens):
            return self.tokens[self.index + offset]
        return None

    def next(self) -> Tuple[str, str]:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input")
        self.index += 1
        return token

    def expect(self, kind: str, value: Optional[str] = None) -> Tuple[str, str]:
        token = self.next()
        if token[0] != kind or (value is not None and token[1] != value):
            raise ParseError(f"expected {value or kind!r}, found {token[1]!r}")
        return token

    def accept(self, kind: str, value: Optional[str] = None) -> bool:
        token = self.peek()
        if token is not None and token[0] == kind and (value is None or token[1] == value):
            self.index += 1
            return True
        return False

    def at_end(self) -> bool:
        return self.index >= len(self.tokens)


class _RawConjunct:
    """One parsed conjunct before lowering to canonical dimension names."""

    def __init__(self) -> None:
        self.in_items: List[_TupleItem] = []
        self.out_items: Optional[List[_TupleItem]] = None
        self.constraints: List[AffineConstraint] = []
        self.declared_exists: List[str] = []
        self._fresh = 0

    def fresh_div(self) -> str:
        name = f"__q{self._fresh}"
        self._fresh += 1
        self.declared_exists.append(name)
        return name


class _Parser:
    """Recursive-descent parser for the set/map notation."""

    def __init__(self, text: str):
        self.tokens = _Tokenizer(text)

    # --------------------------- expressions ---------------------------- #
    def _parse_expr(self, spec: _RawConjunct) -> LinExpr:
        expr = self._parse_term(spec)
        while True:
            token = self.tokens.peek()
            if token == ("op", "+"):
                self.tokens.next()
                expr = expr + self._parse_term(spec)
            elif token == ("op", "-"):
                self.tokens.next()
                expr = expr - self._parse_term(spec)
            else:
                return expr

    def _parse_term(self, spec: _RawConjunct) -> LinExpr:
        factor = self._parse_factor(spec)
        while True:
            token = self.tokens.peek()
            if token == ("op", "*"):
                self.tokens.next()
                factor = self._multiply(factor, self._parse_factor(spec))
            elif token == ("op", "%") or token == ("kw", "mod"):
                self.tokens.next()
                modulus_expr = self._parse_factor(spec)
                if not modulus_expr.is_constant():
                    raise ParseError("modulus must be a constant")
                modulus = modulus_expr.const
                if modulus <= 0:
                    raise ParseError("modulus must be positive")
                # x % m  ==>  x - m*q  with  0 <= x - m*q < m  for a fresh q.
                quotient = spec.fresh_div()
                remainder = factor - modulus * LinExpr.var(quotient)
                spec.constraints.append(AffineConstraint(remainder, INEQUALITY))
                spec.constraints.append(
                    AffineConstraint(LinExpr.constant(modulus - 1) - remainder, INEQUALITY)
                )
                factor = remainder
            else:
                return factor

    @staticmethod
    def _multiply(left: LinExpr, right: LinExpr) -> LinExpr:
        if left.is_constant():
            return right * left.const
        if right.is_constant():
            return left * right.const
        raise ParseError("non-linear product in affine expression")

    def _parse_factor(self, spec: _RawConjunct) -> LinExpr:
        token = self.tokens.next()
        if token[0] == "num":
            value = int(token[1])
            nxt = self.tokens.peek()
            if nxt is not None and nxt[0] == "name":
                # Implicit multiplication such as "2k".
                self.tokens.next()
                return LinExpr({nxt[1]: value}, 0)
            return LinExpr.constant(value)
        if token[0] == "name":
            return LinExpr.var(token[1])
        if token == ("op", "-"):
            return -self._parse_factor(spec)
        if token == ("op", "+"):
            return self._parse_factor(spec)
        if token == ("op", "("):
            expr = self._parse_expr(spec)
            self.tokens.expect("op", ")")
            return expr
        raise ParseError(f"unexpected token {token[1]!r} in expression")

    # ------------------------------ tuples ------------------------------ #
    def _parse_dim_tuple(self, spec: _RawConjunct) -> List[_TupleItem]:
        items: List[_TupleItem] = []
        self.tokens.expect("op", "[")
        if self.tokens.accept("op", "]"):
            return items
        while True:
            token = self.tokens.peek()
            following = self.tokens.peek(1)
            if (
                token is not None
                and token[0] == "name"
                and following is not None
                and following == ("op", ",")
                or (token is not None and token[0] == "name" and following == ("op", "]"))
            ):
                self.tokens.next()
                items.append(("name", token[1]))
            else:
                items.append(("expr", self._parse_expr(spec)))
            if self.tokens.accept("op", "]"):
                break
            self.tokens.expect("op", ",")
        return items

    # --------------------------- constraints ---------------------------- #
    def _parse_constraint_chain(self, spec: _RawConjunct) -> None:
        exprs = [self._parse_expr(spec)]
        operators: List[str] = []
        while True:
            token = self.tokens.peek()
            if token is not None and token[0] == "op" and token[1] in ("<=", ">=", "<", ">", "="):
                operators.append(self.tokens.next()[1])
                exprs.append(self._parse_expr(spec))
            else:
                break
        if not operators:
            raise ParseError("expected a comparison operator in constraint")
        for left, operator, right in zip(exprs, operators, exprs[1:]):
            if operator == "=":
                spec.constraints.append(AffineConstraint(left - right, EQUALITY))
            elif operator == "<=":
                spec.constraints.append(AffineConstraint(right - left, INEQUALITY))
            elif operator == ">=":
                spec.constraints.append(AffineConstraint(left - right, INEQUALITY))
            elif operator == "<":
                spec.constraints.append(AffineConstraint(right - left - 1, INEQUALITY))
            elif operator == ">":
                spec.constraints.append(AffineConstraint(left - right - 1, INEQUALITY))

    def _parse_condition(self, spec: _RawConjunct) -> None:
        while True:
            if self.tokens.accept("kw", "exists"):
                while True:
                    name_token = self.tokens.expect("name")
                    spec.declared_exists.append(name_token[1])
                    if not self.tokens.accept("op", ","):
                        break
                self.tokens.expect("op", ":")
                continue
            self._parse_constraint_chain(spec)
            if self.tokens.accept("kw", "and"):
                continue
            return

    # ------------------------------ driver ------------------------------ #
    def parse(self) -> Tuple[bool, List[_RawConjunct]]:
        self.tokens.expect("op", "{")
        conjuncts: List[_RawConjunct] = []
        is_map: Optional[bool] = None
        while True:
            spec = _RawConjunct()
            next_token = self.tokens.peek()
            reuse_tuple = bool(conjuncts) and next_token != ("op", "[")
            if reuse_tuple:
                # "... or <condition>" without repeating the tuple: reuse the
                # previous conjunct's tuple items (OMEGA-style disjunction).
                spec.in_items = list(conjuncts[-1].in_items)
                spec.out_items = (
                    list(conjuncts[-1].out_items)
                    if conjuncts[-1].out_items is not None
                    else None
                )
                self.tokens.accept("op", ":")
                self._parse_condition(spec)
            else:
                spec.in_items = self._parse_dim_tuple(spec)
                if self.tokens.accept("op", "->"):
                    spec.out_items = self._parse_dim_tuple(spec)
                if self.tokens.accept("op", ":"):
                    self._parse_condition(spec)
            conjunct_is_map = spec.out_items is not None
            if is_map is None:
                is_map = conjunct_is_map
            elif is_map != conjunct_is_map:
                raise ParseError("cannot mix set and map conjuncts")
            conjuncts.append(spec)
            if self.tokens.accept("op", ";") or self.tokens.accept("kw", "or"):
                continue
            break
        self.tokens.expect("op", "}")
        if not self.tokens.at_end():
            raise ParseError("trailing input after closing brace")
        return bool(is_map), conjuncts


# --------------------------------------------------------------------------- #
# Lowering to Set / Map
# --------------------------------------------------------------------------- #
def _canonical_names(items: Sequence[_TupleItem], prefix: str, taken: Sequence[str]) -> List[str]:
    names: List[str] = []
    seen = set(taken)
    for index, item in enumerate(items):
        candidate = item[1] if item[0] == "name" else f"{prefix}{index}"
        if not isinstance(candidate, str):
            candidate = f"{prefix}{index}"
        while candidate in seen:
            candidate += "'"
        seen.add(candidate)
        names.append(candidate)
    return names


def _lower_conjunct(
    spec: _RawConjunct,
    in_names: Sequence[str],
    out_names: Sequence[str],
) -> Tuple[List[AffineConstraint], List[str]]:
    constraints = list(spec.constraints)
    dim_names = list(in_names) + list(out_names)
    items = list(spec.in_items) + list(spec.out_items or [])
    if len(items) != len(dim_names):
        raise ParseError(
            f"conjunct has {len(items)} dimensions, expected {len(dim_names)}"
        )
    for name, item in zip(dim_names, items):
        if item[0] == "name" and item[1] == name:
            continue
        expr = LinExpr.var(item[1]) if item[0] == "name" else item[1]
        constraints.append(AffineConstraint(LinExpr.var(name) - expr, EQUALITY))
    # Any variable that is not a canonical dimension is existential.
    exists: List[str] = []
    seen = set(dim_names)
    for declared in spec.declared_exists:
        if declared not in seen:
            exists.append(declared)
            seen.add(declared)
    for constraint in constraints:
        for variable in constraint.variables():
            if variable not in seen:
                exists.append(variable)
                seen.add(variable)
    return constraints, exists


def parse_set(text: str) -> Set:
    """Parse the textual notation of an integer set."""
    is_map, raw_conjuncts = _Parser(text).parse()
    if is_map:
        raise ParseError("expected a set, found a map (with '->')")
    arity = len(raw_conjuncts[0].in_items)
    for raw in raw_conjuncts:
        if len(raw.in_items) != arity:
            raise ParseError("conjuncts have differing arity")
    names = _canonical_names(raw_conjuncts[0].in_items, "i", ())
    result = Set.empty(names)
    for raw in raw_conjuncts:
        constraints, exists = _lower_conjunct(raw, names, ())
        result = result.union(Set.build(names, constraints, exists=exists))
    return result


def parse_map(text: str) -> Map:
    """Parse the textual notation of an integer map (tuple relation)."""
    is_map, raw_conjuncts = _Parser(text).parse()
    if not is_map:
        raise ParseError("expected a map (with '->'), found a set")
    in_arity = len(raw_conjuncts[0].in_items)
    out_arity = len(raw_conjuncts[0].out_items or [])
    for raw in raw_conjuncts:
        if len(raw.in_items) != in_arity or len(raw.out_items or []) != out_arity:
            raise ParseError("conjuncts have differing arity")
    in_names = _canonical_names(raw_conjuncts[0].in_items, "i", ())
    out_names = _canonical_names(raw_conjuncts[0].out_items or [], "o", in_names)
    result = Map.empty(in_names, out_names)
    for raw in raw_conjuncts:
        constraints, exists = _lower_conjunct(raw, in_names, out_names)
        result = result.union(Map.build(in_names, out_names, constraints, exists=exists))
    return result
