"""Conjuncts: conjunctions of affine integer constraints with existentials.

A :class:`Conjunct` is the basic building block of the Presburger sets and
maps used throughout the library (the analogue of isl's ``basic_set`` /
``basic_map`` or an Omega "conjunct").  It represents

.. math::

    \\{ x \\in Z^{n} \\mid \\exists e \\in Z^{d} :
        A (x, e, 1)^T = 0 \\wedge B (x, e, 1)^T \\ge 0 \\}

where ``n`` is the number of *public* dimensions and ``d`` the number of
*existential* (a.k.a. "div") dimensions.  Coefficient vectors are stored
densely as tuples of Python ints with the layout::

    [ public dims... | existential dims... | constant ]

The class is deliberately dumb: all non-trivial algorithms (normalisation,
variable elimination, feasibility) live in :mod:`repro.presburger.omega` so
they can be tested in isolation.
"""

from __future__ import annotations

from math import gcd
from typing import Iterable, List, Sequence, Tuple

Vector = Tuple[int, ...]


class Conjunct:
    """A conjunction of integer affine equalities and inequalities.

    Parameters
    ----------
    n_vars:
        Number of public dimensions.
    n_div:
        Number of existential dimensions.
    eqs:
        Equality constraints, each a coefficient vector ``v`` meaning
        ``v . (vars, divs, 1) == 0``.
    ineqs:
        Inequality constraints, each meaning ``v . (vars, divs, 1) >= 0``.
    """

    __slots__ = ("n_vars", "n_div", "eqs", "ineqs", "_key", "_hash", "_normed")

    def __init__(
        self,
        n_vars: int,
        n_div: int = 0,
        eqs: Iterable[Sequence[int]] = (),
        ineqs: Iterable[Sequence[int]] = (),
    ):
        self.n_vars = int(n_vars)
        self.n_div = int(n_div)
        width = self.n_vars + self.n_div + 1
        self.eqs: Tuple[Vector, ...] = tuple(self._check(v, width) for v in eqs)
        self.ineqs: Tuple[Vector, ...] = tuple(self._check(v, width) for v in ineqs)
        # Structural key and hash are computed lazily and cached: most
        # conjuncts are short-lived intermediates that are never hashed, but
        # the survivors are hashed and compared over and over (syntactic
        # deduplication, tabling keys, the operation cache).
        self._key: Tuple | None = None
        self._hash: int | None = None
        # True only for conjuncts produced by the normalisation kernel:
        # normalize() is idempotent, so flagged conjuncts can skip a second
        # pass entirely (see repro.presburger.kernel).
        self._normed = False

    @staticmethod
    def _check(vector: Sequence[int], width: int) -> Vector:
        # Identity-preserving for rows that are already canonical tuples of
        # ints: rebuilding them here would silently strip the interned
        # instances produced by normalize() (the hash-consing pools dedupe
        # by value, but identity-fast comparisons and the pool hit rate
        # depend on the *same* tuple object flowing through).
        if type(vector) is tuple and all(type(x) is int for x in vector):
            if len(vector) != width:
                raise ValueError(
                    f"constraint vector has length {len(vector)}, expected {width}"
                )
            return vector
        vec = tuple(int(x) for x in vector)
        if len(vec) != width:
            raise ValueError(f"constraint vector has length {len(vec)}, expected {width}")
        return vec

    @classmethod
    def _make(
        cls,
        n_vars: int,
        n_div: int,
        eqs: Tuple[Vector, ...],
        ineqs: Tuple[Vector, ...],
        normed: bool = False,
    ) -> "Conjunct":
        """Trusted constructor for the flat-matrix kernel.

        The caller guarantees *eqs*/*ineqs* are tuples of width-correct
        tuples of Python ints (kernel row operations only ever produce
        those), so the per-row ``_check`` validation of ``__init__`` — a
        measurable slice of the hot path — is skipped.
        """
        self = object.__new__(cls)
        self.n_vars = n_vars
        self.n_div = n_div
        self.eqs = eqs
        self.ineqs = ineqs
        self._key = None
        self._hash = None
        self._normed = normed
        return self

    # ------------------------------------------------------------------ #
    # Basic queries
    # ------------------------------------------------------------------ #
    @property
    def n_cols(self) -> int:
        """Total number of columns (public + existential + constant)."""
        return self.n_vars + self.n_div + 1

    @property
    def const_col(self) -> int:
        """Index of the constant column."""
        return self.n_vars + self.n_div

    def is_universe(self) -> bool:
        """True when the conjunct has no constraints at all."""
        return not self.eqs and not self.ineqs

    def constraints(self) -> List[Tuple[Vector, bool]]:
        """All constraints as ``(vector, is_equality)`` pairs."""
        result: List[Tuple[Vector, bool]] = [(v, True) for v in self.eqs]
        result.extend((v, False) for v in self.ineqs)
        return result

    def involves_col(self, col: int) -> bool:
        """True if any constraint has a non-zero coefficient in column *col*."""
        return any(v[col] != 0 for v in self.eqs) or any(v[col] != 0 for v in self.ineqs)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def universe(n_vars: int, n_div: int = 0) -> "Conjunct":
        """The unconstrained conjunct over *n_vars* public dimensions."""
        return Conjunct(n_vars, n_div)

    def with_constraints(
        self,
        eqs: Iterable[Sequence[int]] = (),
        ineqs: Iterable[Sequence[int]] = (),
    ) -> "Conjunct":
        """A copy of this conjunct with extra constraints appended."""
        return Conjunct(
            self.n_vars,
            self.n_div,
            list(self.eqs) + [tuple(v) for v in eqs],
            list(self.ineqs) + [tuple(v) for v in ineqs],
        )

    def add_divs(self, count: int) -> "Conjunct":
        """A copy with *count* extra existential columns (inserted before the constant)."""
        if count == 0:
            return self
        insert_at = self.const_col

        def widen(vec: Vector) -> Vector:
            return vec[:insert_at] + (0,) * count + vec[insert_at:]

        return Conjunct(
            self.n_vars,
            self.n_div + count,
            [widen(v) for v in self.eqs],
            [widen(v) for v in self.ineqs],
        )

    def drop_col(self, col: int) -> "Conjunct":
        """A copy with column *col* removed.

        All constraints must have a zero coefficient in that column; the caller
        is responsible for eliminating the variable first.
        """
        if col >= self.const_col:
            raise ValueError("cannot drop the constant column")
        for vec in list(self.eqs) + list(self.ineqs):
            if vec[col] != 0:
                raise ValueError("cannot drop a column that still appears in constraints")
        n_vars = self.n_vars - 1 if col < self.n_vars else self.n_vars
        n_div = self.n_div if col < self.n_vars else self.n_div - 1

        def shrink(vec: Vector) -> Vector:
            return vec[:col] + vec[col + 1:]

        return Conjunct(n_vars, n_div, [shrink(v) for v in self.eqs], [shrink(v) for v in self.ineqs])

    def promote_var_to_div(self, col: int) -> "Conjunct":
        """Turn public column *col* into an existential column (moved after the vars)."""
        if not (0 <= col < self.n_vars):
            raise ValueError(f"column {col} is not a public dimension")
        new_pos = self.n_vars - 1  # position of the moved column among the new vars/divs

        def move(vec: Vector) -> Vector:
            values = list(vec)
            moved = values.pop(col)
            values.insert(new_pos, moved)
            return tuple(values)

        return Conjunct(
            self.n_vars - 1,
            self.n_div + 1,
            [move(v) for v in self.eqs],
            [move(v) for v in self.ineqs],
        )

    # ------------------------------------------------------------------ #
    # Point evaluation
    # ------------------------------------------------------------------ #
    def substitute_vars(self, values: Sequence[int]) -> "Conjunct":
        """Plug concrete integers into the public dimensions.

        The result is a conjunct with zero public dimensions whose feasibility
        decides membership of the point.
        """
        if len(values) != self.n_vars:
            raise ValueError(f"expected {self.n_vars} values, got {len(values)}")

        def plug(vec: Vector) -> Vector:
            constant = vec[self.const_col] + sum(c * v for c, v in zip(vec[: self.n_vars], values))
            return tuple(vec[self.n_vars : self.const_col]) + (constant,)

        return Conjunct(0, self.n_div, [plug(v) for v in self.eqs], [plug(v) for v in self.ineqs])

    # ------------------------------------------------------------------ #
    # Structural helpers
    # ------------------------------------------------------------------ #
    def normalized_key(self) -> Tuple:
        """A canonical-ish key used for syntactic deduplication of conjuncts.

        The key (and its hash) is computed once and cached, so repeated
        equality tests and dict/set membership checks cost one comparison of
        already-built tuples — or nothing at all for interned conjuncts,
        which short-circuit on identity.
        """
        key = self._key
        if key is None:
            key = self._key = (
                self.n_vars,
                self.n_div,
                tuple(sorted(self.eqs)),
                tuple(sorted(self.ineqs)),
            )
        return key

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Conjunct):
            return NotImplemented
        return self.normalized_key() == other.normalized_key()

    def __hash__(self) -> int:
        value = self._hash
        if value is None:
            value = self._hash = hash(self.normalized_key())
        return value

    def __repr__(self) -> str:
        return (
            f"Conjunct(n_vars={self.n_vars}, n_div={self.n_div}, "
            f"eqs={list(self.eqs)!r}, ineqs={list(self.ineqs)!r})"
        )

    def pretty(self, var_names: Sequence[str] | None = None) -> str:
        """Human readable rendering, mostly for debugging and error messages."""
        names = list(var_names) if var_names is not None else [f"x{i}" for i in range(self.n_vars)]
        names += [f"e{i}" for i in range(self.n_div)]

        def render(vec: Vector, op: str) -> str:
            terms = []
            for coefficient, name in zip(vec[:-1], names):
                if coefficient == 0:
                    continue
                if coefficient == 1:
                    terms.append(f"+ {name}")
                elif coefficient == -1:
                    terms.append(f"- {name}")
                elif coefficient > 0:
                    terms.append(f"+ {coefficient}{name}")
                else:
                    terms.append(f"- {-coefficient}{name}")
            constant = vec[-1]
            if constant or not terms:
                terms.append(f"+ {constant}" if constant >= 0 else f"- {-constant}")
            text = " ".join(terms)
            if text.startswith("+ "):
                text = text[2:]
            return f"{text} {op} 0"

        pieces = [render(v, "=") for v in self.eqs] + [render(v, ">=") for v in self.ineqs]
        return " and ".join(pieces) if pieces else "true"


def vector_gcd(values: Iterable[int]) -> int:
    """The gcd of the absolute values of *values* (0 when all are zero)."""
    result = 0
    for value in values:
        result = gcd(result, abs(value))
    return result
