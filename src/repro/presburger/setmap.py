"""Integer sets and maps (tuple relations) — the user-facing Presburger API.

:class:`Set` and :class:`Map` are finite unions of
:class:`~repro.presburger.conjunct.Conjunct` values over named dimensions.
They provide the operations the equivalence checker needs from the OMEGA
calculator: intersection, union, subtraction, composition (natural join of
relations), domain/range, inverse, emptiness, equality and subset tests,
restriction, and point enumeration for bounded sets.

All operations are exact over the integers.  Dimension *names* are cosmetic
(used for parsing and pretty-printing); all binary operations match
dimensions positionally and only require equal arities.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from .conjunct import Conjunct, Vector
from .constraints import AffineConstraint
from .errors import SpaceMismatchError, UnboundedSetError, UnsupportedOperationError
from .linexpr import LinExpr
from . import hooks as _hooks
from . import kernel as _kernel
from . import omega
from . import opcache as _opcache

__all__ = ["Set", "Map"]


# --------------------------------------------------------------------------- #
# Helpers shared by Set and Map
# --------------------------------------------------------------------------- #
def _cached_simplify(conjunct: Conjunct) -> Optional[Conjunct]:
    """Memoized :func:`repro.presburger.omega.simplify` over interned results."""
    return _opcache.memoized(
        "simplify",
        conjunct,
        lambda: _intern_optional(omega.simplify(conjunct)),
    )


def _intern_optional(conjunct: Optional[Conjunct]) -> Optional[Conjunct]:
    return None if conjunct is None else _opcache.intern_conjunct(conjunct)


def _cached_feasible(conjunct: Conjunct) -> bool:
    """Memoized :func:`repro.presburger.omega.is_feasible`."""
    return _opcache.memoized("feasible", conjunct, lambda: omega.is_feasible(conjunct))


def _cached_feasible_many(conjuncts: Sequence[Conjunct]) -> List[bool]:
    """Feasibility of several conjuncts, batched through the flat kernel.

    The memoization accounting is identical to calling
    :func:`_cached_feasible` in a loop (each conjunct records exactly one
    hit or miss, duplicates hit); only the *computation* of the misses is
    handed to :func:`repro.presburger.kernel.feasible_many` as one batch,
    which shares the metrics increment and the normalisation sweep across
    the whole union.
    """
    if not _kernel.FLAT or len(conjuncts) < 2:
        return [_cached_feasible(conjunct) for conjunct in conjuncts]
    cache = _opcache.cache()
    if not cache.enabled:
        return _kernel.feasible_many(conjuncts)
    # Peek (without recording) to find the conjuncts that need computing,
    # batch-compute those, then replay through memoized() so hit/miss
    # accounting and storage behave exactly as the one-at-a-time path.
    entries = cache._entries
    misses = {}
    for conjunct in conjuncts:
        if ("feasible", conjunct) not in entries and conjunct not in misses:
            misses[conjunct] = None
    if misses:
        pending = list(misses)
        for conjunct, verdict in zip(pending, _kernel.feasible_many(pending)):
            misses[conjunct] = verdict

    def lookup(conjunct: Conjunct) -> bool:
        verdict = misses.get(conjunct)
        # A server worker thread can evict an entry between the peek and the
        # replay; recompute rather than fail in that (rare) case.
        return omega.is_feasible(conjunct) if verdict is None else verdict

    return [
        _opcache.memoized("feasible", conjunct, lambda c=conjunct: lookup(c))
        for conjunct in conjuncts
    ]


def _clean(conjuncts: Iterable[Conjunct]) -> Tuple[Conjunct, ...]:
    """Simplify, drop infeasible conjuncts and deduplicate syntactically.

    Every conjunct that makes it into a :class:`Set` or :class:`Map` passes
    through here, which makes it the natural interning choke point: the
    surviving conjuncts are canonical (hash-consed) instances, so the
    dedup below and all later equality / cache-key computations are cheap.
    Feasibility of the whole union is decided in one batched kernel call.
    """
    simplified_union: List[Conjunct] = []
    for conjunct in conjuncts:
        simplified = _cached_simplify(conjunct)
        if simplified is not None:
            simplified_union.append(simplified)
    seen = {}
    for simplified, feasible in zip(
        simplified_union, _cached_feasible_many(simplified_union)
    ):
        if not feasible:
            continue
        key = simplified.normalized_key()
        if key not in seen:
            seen[key] = simplified
    return tuple(seen.values())


def _union_intersect(a: Sequence[Conjunct], b: Sequence[Conjunct]) -> Tuple[Conjunct, ...]:
    """Pairwise conjunct intersection of two unions (memoized).

    Backs ``intersect`` and ``is_disjoint`` on both :class:`Set` and
    :class:`Map`; dimension names never enter the computation, so the cache
    key is just the two conjunct tuples.
    """
    return _opcache.memoized(
        "ui",
        (tuple(a), tuple(b)),
        lambda: _clean(omega.conjunct_intersect(left, right) for left in a for right in b),
    )


def _union_subtract(a: Sequence[Conjunct], b: Sequence[Conjunct]) -> Tuple[Conjunct, ...]:
    """Subtraction of unions of conjuncts (memoized).

    Backs ``subtract``, ``is_subset`` and therefore ``is_equal`` on both
    :class:`Set` and :class:`Map` — the single hottest entry point of the
    checker's equality tests.
    """
    return _opcache.memoized("us", (tuple(a), tuple(b)), lambda: _union_subtract_uncached(a, b))


def _union_subtract_uncached(a: Sequence[Conjunct], b: Sequence[Conjunct]) -> Tuple[Conjunct, ...]:
    pieces: List[Conjunct] = list(a)
    for other in b:
        negations = omega.complement(other)
        pieces = [
            omega.conjunct_intersect(piece, negation)
            for piece in pieces
            for negation in negations
        ]
        pieces = list(_clean(pieces))
        if not pieces:
            break
    return tuple(pieces)


#: How far a 1-D feasibility scan may walk above the rational lower bound
#: before giving up (divisibility constraints can shift the first integer
#: solution above the bound, but only by a bounded amount; this cap turns a
#: pathological gap into a loud error instead of a hang).
_LEXMIN_SCAN_LIMIT = 4096


def _min_value_1d(pieces: Sequence[Conjunct]) -> Optional[int]:
    """The smallest integer of a union of 1-public-dimension conjuncts.

    Returns ``None`` when every piece is infeasible.  Raises
    :class:`UnboundedSetError` when a feasible piece has no finite lower
    bound and :class:`UnsupportedOperationError` when the scan above the
    rational bound exceeds :data:`_LEXMIN_SCAN_LIMIT` candidates.
    """
    best: Optional[int] = None
    for piece in pieces:
        normalized = omega.normalize(piece)
        if normalized is None:
            continue
        # Bound the public dimension by rationally eliminating the divs.
        div_cols = list(range(normalized.n_vars, normalized.const_col))
        shadow = omega.real_shadow_eliminate(normalized, div_cols) if div_cols else normalized
        lower: Optional[int] = None
        upper: Optional[int] = None
        bounded_source = shadow.ineqs + tuple(shadow.eqs) + tuple(
            tuple(-x for x in eq) for eq in shadow.eqs
        )
        for vec in bounded_source:
            coefficient, constant = vec[0], vec[-1]
            if coefficient > 0:
                bound = (-constant + coefficient - 1) // coefficient
                lower = bound if lower is None else max(lower, bound)
            elif coefficient < 0:
                bound = constant // (-coefficient)
                upper = bound if upper is None else min(upper, bound)
        if lower is None:
            if omega.is_feasible(normalized):
                raise UnboundedSetError("set is unbounded below; lexmin does not exist")
            continue
        # The scan is capped even below a finite upper bound: a huge
        # divisibility gap must fail loudly, not degrade into an O(gap)
        # feasibility sweep.
        scan_end = lower + _LEXMIN_SCAN_LIMIT
        exhaustive = upper is not None and upper <= scan_end
        if exhaustive:
            scan_end = upper
        found: Optional[int] = None
        pruned = False
        for value in range(lower, scan_end + 1):
            if best is not None and value >= best:
                pruned = True  # cannot improve on another piece's minimum
                break
            if omega.is_feasible(normalized.substitute_vars([value])):
                found = value
                break
        if found is not None:
            if best is None or found < best:
                best = found
            continue
        if pruned or exhaustive:
            continue  # piece cannot contribute / was scanned completely
        if omega.is_feasible(normalized):
            raise UnsupportedOperationError(
                f"lexmin scan exceeded {_LEXMIN_SCAN_LIMIT} candidates above the rational bound"
            )
    return best


def _lexmin_conjunct(conjunct: Conjunct) -> Optional[Tuple[int, ...]]:
    """The lexicographically smallest integer point of one conjunct (or ``None``)."""
    if conjunct.n_vars == 0:
        return () if omega.is_feasible(conjunct) else None
    projected = omega.project_cols(conjunct, list(range(1, conjunct.n_vars)))
    value = _min_value_1d(projected)
    if value is None:
        return None
    fix = (1,) + (0,) * (conjunct.n_vars - 1 + conjunct.n_div) + (-value,)
    rest = _lexmin_union(omega.eliminate_col(conjunct.with_constraints(eqs=[fix]), 0))
    if rest is None:  # cannot happen: *value* came from the exact projection
        return None
    return (value,) + rest


def _lexmin_union(pieces: Sequence[Conjunct]) -> Optional[Tuple[int, ...]]:
    best: Optional[Tuple[int, ...]] = None
    for piece in pieces:
        point = _lexmin_conjunct(piece)
        if point is not None and (best is None or point < best):
            best = point
    return best


def _lower_constraints(
    constraints: Iterable[AffineConstraint],
    public_names: Sequence[str],
    exist_names: Sequence[str],
) -> Conjunct:
    order = list(public_names) + list(exist_names)
    if len(set(order)) != len(order):
        raise SpaceMismatchError(f"duplicate dimension names in {order!r}")
    eqs: List[Vector] = []
    ineqs: List[Vector] = []
    for constraint in constraints:
        vector = constraint.expr.to_vector(order)
        if constraint.is_equality:
            eqs.append(vector)
        else:
            ineqs.append(vector)
    return Conjunct(len(public_names), len(exist_names), eqs, ineqs)


def _render_affine(names: Sequence[str], coeffs: Sequence[int], const: int) -> str:
    expr = LinExpr({name: coefficient for name, coefficient in zip(names, coeffs)}, const)
    return str(expr)


def _render_conjunct_body(conjunct: Conjunct, names: Sequence[str], skip: Sequence[int] = ()) -> str:
    all_names = list(names) + [f"e{i}" for i in range(conjunct.n_div)]
    parts: List[str] = []
    for index, vec in enumerate(conjunct.eqs):
        if ("eq", index) in skip:
            continue
        parts.append(f"{_render_affine(all_names, vec[:-1], vec[-1])} = 0")
    for vec in conjunct.ineqs:
        parts.append(f"{_render_affine(all_names, vec[:-1], vec[-1])} >= 0")
    return " and ".join(parts) if parts else "true"


# --------------------------------------------------------------------------- #
# Set
# --------------------------------------------------------------------------- #
class Set:
    """A union of conjuncts over a tuple of named integer dimensions."""

    __slots__ = ("names", "conjuncts")

    def __init__(self, names: Sequence[str], conjuncts: Iterable[Conjunct] = (), *, _clean_input: bool = True):
        self.names: Tuple[str, ...] = tuple(names)
        conjuncts = tuple(conjuncts)
        for conjunct in conjuncts:
            if conjunct.n_vars != len(self.names):
                raise SpaceMismatchError(
                    f"conjunct has {conjunct.n_vars} dims, set has {len(self.names)}"
                )
        self.conjuncts: Tuple[Conjunct, ...] = _clean(conjuncts) if _clean_input else conjuncts

    # -------------------------- constructors -------------------------- #
    @staticmethod
    def universe(names: Sequence[str]) -> "Set":
        return Set(names, [Conjunct.universe(len(tuple(names)))], _clean_input=False)

    @staticmethod
    def empty(names: Sequence[str]) -> "Set":
        return Set(names, [], _clean_input=False)

    @staticmethod
    def build(
        names: Sequence[str],
        constraints: Iterable[AffineConstraint] = (),
        exists: Sequence[str] = (),
    ) -> "Set":
        """Build a single-conjunct set from symbolic affine constraints."""
        conjunct = _lower_constraints(constraints, tuple(names), tuple(exists))
        return Set(names, [conjunct])

    @staticmethod
    def from_points(names: Sequence[str], points: Iterable[Sequence[int]]) -> "Set":
        """The finite set containing exactly the given integer points."""
        names = tuple(names)
        conjuncts = []
        for point in points:
            if len(point) != len(names):
                raise SpaceMismatchError("point arity does not match set arity")
            eqs = []
            for index, value in enumerate(point):
                vector = [0] * (len(names) + 1)
                vector[index] = 1
                vector[-1] = -int(value)
                eqs.append(tuple(vector))
            conjuncts.append(Conjunct(len(names), 0, eqs, []))
        return Set(names, conjuncts)

    # ---------------------------- queries ----------------------------- #
    @property
    def arity(self) -> int:
        return len(self.names)

    def is_empty(self) -> bool:
        return not self.conjuncts

    def is_universe(self) -> bool:
        return any(c.is_universe() for c in self.conjuncts)

    def contains(self, point: Sequence[int]) -> bool:
        """Membership test for a concrete integer point."""
        if len(point) != self.arity:
            raise SpaceMismatchError("point arity does not match set arity")
        values = [int(x) for x in point]
        backend = _hooks.active_backend()
        feasible = omega.is_feasible if backend is None else backend.is_feasible
        for conjunct in self.conjuncts:
            if feasible(conjunct.substitute_vars(values)):
                return True
        return False

    def _require_compatible(self, other: "Set") -> None:
        if not isinstance(other, Set):
            raise TypeError(f"expected Set, got {type(other).__name__}")
        if other.arity != self.arity:
            raise SpaceMismatchError(f"set arities differ: {self.arity} vs {other.arity}")

    # --------------------------- operations --------------------------- #
    def intersect(self, other: "Set") -> "Set":
        self._require_compatible(other)
        return Set(self.names, _union_intersect(self.conjuncts, other.conjuncts), _clean_input=False)

    def union(self, other: "Set") -> "Set":
        self._require_compatible(other)
        return Set(self.names, _clean(self.conjuncts + other.conjuncts), _clean_input=False)

    def subtract(self, other: "Set") -> "Set":
        self._require_compatible(other)
        return Set(self.names, _union_subtract(self.conjuncts, other.conjuncts), _clean_input=False)

    def complement(self) -> "Set":
        return Set.universe(self.names).subtract(self)

    def is_subset(self, other: "Set") -> bool:
        self._require_compatible(other)
        backend = _hooks.active_backend()
        if backend is not None:
            return backend.is_subset(self.conjuncts, other.conjuncts)
        return not _union_subtract(self.conjuncts, other.conjuncts)

    def is_equal(self, other: "Set") -> bool:
        backend = _hooks.active_backend()
        if backend is not None:
            self._require_compatible(other)
            return backend.is_equal(self.conjuncts, other.conjuncts)
        return self.is_subset(other) and other.is_subset(self)

    def is_disjoint(self, other: "Set") -> bool:
        self._require_compatible(other)
        backend = _hooks.active_backend()
        if backend is not None:
            return backend.is_disjoint(self.conjuncts, other.conjuncts)
        return not _union_intersect(self.conjuncts, other.conjuncts)

    def project_out(self, names: Sequence[str]) -> "Set":
        """Existentially project away the named dimensions."""
        names = list(names)
        for name in names:
            if name not in self.names:
                raise SpaceMismatchError(f"dimension {name!r} not in set {self.names!r}")
        cols = [self.names.index(name) for name in names]
        remaining = tuple(n for n in self.names if n not in names)
        pieces: List[Conjunct] = []
        for conjunct in self.conjuncts:
            pieces.extend(omega.project_cols(conjunct, cols))
        return Set(remaining, pieces)

    def rename(self, names: Sequence[str]) -> "Set":
        names = tuple(names)
        if len(names) != self.arity:
            raise SpaceMismatchError("renaming must preserve arity")
        return Set(names, self.conjuncts, _clean_input=False)

    def coalesce(self) -> "Set":
        """Drop conjuncts that are subsets of other conjuncts (light coalescing)."""
        kept: List[Conjunct] = []
        for index, conjunct in enumerate(self.conjuncts):
            others = [c for j, c in enumerate(self.conjuncts) if j != index]
            single = Set(self.names, [conjunct], _clean_input=False)
            rest = Set(self.names, others, _clean_input=False)
            if others and single.is_subset(rest):
                continue
            kept.append(conjunct)
        return Set(self.names, kept, _clean_input=False)

    # ------------------------ point enumeration ----------------------- #
    def dim_bounds(self, name: str) -> Tuple[int, int]:
        """Valid integer bounds ``(low, high)`` of dimension *name*.

        The bounds enclose the dimension's values (they are derived from the
        rational relaxation, so they may not be tight, but every point of the
        set lies within them).  Raises :class:`UnboundedSetError` if no finite
        bound exists and :class:`SpaceMismatchError` for unknown dimensions.
        """
        if name not in self.names:
            raise SpaceMismatchError(f"dimension {name!r} not in set {self.names!r}")
        if self.is_empty():
            raise UnboundedSetError("cannot bound a dimension of an empty set")
        target = self.names.index(name)
        lower: Optional[int] = None
        upper: Optional[int] = None
        for conjunct in self.conjuncts:
            other_cols = [c for c in range(conjunct.const_col) if c != target]
            shadow = omega.real_shadow_eliminate(conjunct, other_cols)
            conj_lower: Optional[int] = None
            conj_upper: Optional[int] = None
            for ineq in shadow.ineqs:
                coefficient = ineq[0]
                constant = ineq[-1]
                if coefficient > 0:
                    # a*x + c >= 0  =>  x >= ceil(-c/a)
                    bound = (-constant + coefficient - 1) // coefficient
                    conj_lower = bound if conj_lower is None else max(conj_lower, bound)
                elif coefficient < 0:
                    # a*x + c >= 0, a < 0  =>  x <= floor(c/-a)
                    bound = constant // (-coefficient)
                    conj_upper = bound if conj_upper is None else min(conj_upper, bound)
            if conj_lower is None or conj_upper is None:
                raise UnboundedSetError(f"dimension {name!r} is unbounded")
            lower = conj_lower if lower is None else min(lower, conj_lower)
            upper = conj_upper if upper is None else max(upper, conj_upper)

        if lower is None or upper is None:
            raise UnboundedSetError(f"dimension {name!r} is unbounded")
        return lower, upper

    def points(self, limit: int = 1_000_000) -> Iterator[Tuple[int, ...]]:
        """Iterate over all integer points of a bounded set.

        Raises :class:`UnboundedSetError` when a dimension is unbounded and a
        :class:`ValueError` when the bounding box exceeds *limit* candidates.
        """
        if self.is_empty():
            return iter(())
        ranges = []
        box = 1
        for name in self.names:
            low, high = self.dim_bounds(name)
            ranges.append(range(low, high + 1))
            box *= len(ranges[-1])
            if box > limit:
                raise ValueError(f"bounding box exceeds {limit} candidate points")

        def generator() -> Iterator[Tuple[int, ...]]:
            if not ranges:
                # Zero-dimensional set: the single (empty) point is present iff
                # the set is non-empty, which we already know.
                yield ()
                return
            for candidate in itertools.product(*ranges):
                if self.contains(candidate):
                    yield candidate

        return generator()

    def count(self, limit: int = 1_000_000) -> int:
        """The number of integer points of a bounded set."""
        return sum(1 for _ in self.points(limit))

    def lexmin(self) -> Tuple[int, ...]:
        """The lexicographically smallest integer point of the set (memoized).

        Works on unbounded-above sets (only finite *lower* bounds are
        required).  Raises :class:`ValueError` for an empty set and
        :class:`UnboundedSetError` when some prefix of the lexicographic
        order is unbounded below, so no minimum exists.
        """
        if self.is_empty():
            raise ValueError("empty set has no lexicographic minimum")
        point = _opcache.memoized(
            "lexmin", self.conjuncts, lambda: _lexmin_union(self.conjuncts)
        )
        if point is None:
            raise ValueError("empty set has no lexicographic minimum")
        return point

    def sample_point(self, seed: int = 0, limit: int = 4096) -> Tuple[int, ...]:
        """A deterministic concrete point of the set (witness synthesis).

        When the bounding box holds at most *limit* candidates the point is
        drawn pseudo-randomly (seeded, hash-seed independent) from the full
        enumeration; unbounded or very large sets fall back to
        :meth:`lexmin`.  The returned point always satisfies :meth:`contains`.
        Raises :class:`ValueError` for an empty set.
        """
        if self.is_empty():
            raise ValueError("cannot sample a point from an empty set")
        backend = _hooks.active_backend()
        if backend is not None:
            return backend.sample_point(self, seed=seed, limit=limit)
        return self._sample_point_default(seed=seed, limit=limit)

    def _sample_point_default(self, seed: int = 0, limit: int = 4096) -> Tuple[int, ...]:
        """The inline (omega) sampling body; backends must not re-enter it."""
        with _hooks.suspended():
            try:
                points = list(self.points(limit=limit))
            except (UnboundedSetError, ValueError):
                return self.lexmin()
            rng = random.Random(f"sample:{seed}:{len(points)}")
            return points[rng.randrange(len(points))]

    # --------------------------- dunder api ---------------------------- #
    def __and__(self, other: "Set") -> "Set":
        return self.intersect(other)

    def __or__(self, other: "Set") -> "Set":
        return self.union(other)

    def __sub__(self, other: "Set") -> "Set":
        return self.subtract(other)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Set):
            return NotImplemented
        return self.is_equal(other)

    def __hash__(self) -> int:  # sets are mutable-free; hash on syntactic form
        return hash((self.names, tuple(sorted(c.normalized_key() for c in self.conjuncts))))

    def __bool__(self) -> bool:
        return not self.is_empty()

    def __str__(self) -> str:
        if self.is_empty():
            return "{ " + "[" + ", ".join(self.names) + "] : false }"
        pieces = []
        header = "[" + ", ".join(self.names) + "]"
        for conjunct in self.conjuncts:
            body = _render_conjunct_body(conjunct, self.names)
            pieces.append(f"{header} : {body}" if body != "true" else header)
        return "{ " + "; ".join(pieces) + " }"

    def __repr__(self) -> str:
        return f"Set({str(self)!r})"


# --------------------------------------------------------------------------- #
# Map
# --------------------------------------------------------------------------- #
class Map:
    """A union of conjuncts relating an input tuple to an output tuple."""

    __slots__ = ("in_names", "out_names", "conjuncts")

    def __init__(
        self,
        in_names: Sequence[str],
        out_names: Sequence[str],
        conjuncts: Iterable[Conjunct] = (),
        *,
        _clean_input: bool = True,
    ):
        self.in_names: Tuple[str, ...] = tuple(in_names)
        self.out_names: Tuple[str, ...] = tuple(out_names)
        conjuncts = tuple(conjuncts)
        width = len(self.in_names) + len(self.out_names)
        for conjunct in conjuncts:
            if conjunct.n_vars != width:
                raise SpaceMismatchError(
                    f"conjunct has {conjunct.n_vars} dims, map has {width}"
                )
        self.conjuncts: Tuple[Conjunct, ...] = _clean(conjuncts) if _clean_input else conjuncts

    # -------------------------- constructors -------------------------- #
    @staticmethod
    def universe(in_names: Sequence[str], out_names: Sequence[str]) -> "Map":
        width = len(tuple(in_names)) + len(tuple(out_names))
        return Map(in_names, out_names, [Conjunct.universe(width)], _clean_input=False)

    @staticmethod
    def empty(in_names: Sequence[str], out_names: Sequence[str]) -> "Map":
        return Map(in_names, out_names, [], _clean_input=False)

    @staticmethod
    def identity(names: Sequence[str], domain: Optional[Set] = None) -> "Map":
        """The identity map on the given dimensions, optionally restricted to *domain*."""
        names = tuple(names)
        out_names = tuple(f"{n}'" for n in names)
        width = 2 * len(names)
        eqs = []
        for index in range(len(names)):
            vector = [0] * (width + 1)
            vector[index] = 1
            vector[len(names) + index] = -1
            eqs.append(tuple(vector))
        result = Map(names, out_names, [Conjunct(width, 0, eqs, [])], _clean_input=False)
        if domain is not None:
            result = result.restrict_domain(domain)
        return result

    @staticmethod
    def build(
        in_names: Sequence[str],
        out_names: Sequence[str],
        constraints: Iterable[AffineConstraint] = (),
        exists: Sequence[str] = (),
    ) -> "Map":
        """Build a single-conjunct map from symbolic affine constraints."""
        public = tuple(in_names) + tuple(out_names)
        conjunct = _lower_constraints(constraints, public, tuple(exists))
        return Map(in_names, out_names, [conjunct])

    @staticmethod
    def from_exprs(
        in_names: Sequence[str],
        out_exprs: Sequence[LinExpr],
        domain_constraints: Iterable[AffineConstraint] = (),
        out_names: Optional[Sequence[str]] = None,
    ) -> "Map":
        """The affine function ``in -> (out_exprs)`` restricted by *domain_constraints*.

        Output expressions must be affine in the input dimensions.
        """
        in_names = tuple(in_names)
        if out_names is None:
            out_names = tuple(f"o{i}" for i in range(len(out_exprs)))
        out_names = tuple(out_names)
        constraints: List[AffineConstraint] = []
        for name, expr in zip(out_names, out_exprs):
            constraints.append(AffineConstraint(LinExpr.var(name) - expr, "=="))
        constraints.extend(domain_constraints)
        return Map.build(in_names, out_names, constraints)

    # ---------------------------- queries ----------------------------- #
    @property
    def n_in(self) -> int:
        return len(self.in_names)

    @property
    def n_out(self) -> int:
        return len(self.out_names)

    def is_empty(self) -> bool:
        return not self.conjuncts

    def contains(self, in_point: Sequence[int], out_point: Sequence[int]) -> bool:
        values = [int(x) for x in in_point] + [int(x) for x in out_point]
        if len(values) != self.n_in + self.n_out:
            raise SpaceMismatchError("point arity does not match map arity")
        backend = _hooks.active_backend()
        feasible = omega.is_feasible if backend is None else backend.is_feasible
        for conjunct in self.conjuncts:
            if feasible(conjunct.substitute_vars(values)):
                return True
        return False

    def _require_compatible(self, other: "Map") -> None:
        if not isinstance(other, Map):
            raise TypeError(f"expected Map, got {type(other).__name__}")
        if other.n_in != self.n_in or other.n_out != self.n_out:
            raise SpaceMismatchError(
                f"map arities differ: {self.n_in}->{self.n_out} vs {other.n_in}->{other.n_out}"
            )

    # --------------------------- operations --------------------------- #
    def intersect(self, other: "Map") -> "Map":
        self._require_compatible(other)
        return Map(self.in_names, self.out_names, _union_intersect(self.conjuncts, other.conjuncts), _clean_input=False)

    def union(self, other: "Map") -> "Map":
        self._require_compatible(other)
        return Map(self.in_names, self.out_names, _clean(self.conjuncts + other.conjuncts), _clean_input=False)

    def subtract(self, other: "Map") -> "Map":
        self._require_compatible(other)
        return Map(self.in_names, self.out_names, _union_subtract(self.conjuncts, other.conjuncts), _clean_input=False)

    def is_subset(self, other: "Map") -> bool:
        self._require_compatible(other)
        backend = _hooks.active_backend()
        if backend is not None:
            return backend.is_subset(self.conjuncts, other.conjuncts)
        return not _union_subtract(self.conjuncts, other.conjuncts)

    def is_equal(self, other: "Map") -> bool:
        backend = _hooks.active_backend()
        if backend is not None:
            self._require_compatible(other)
            return backend.is_equal(self.conjuncts, other.conjuncts)
        return self.is_subset(other) and other.is_subset(self)

    def is_disjoint(self, other: "Map") -> bool:
        self._require_compatible(other)
        backend = _hooks.active_backend()
        if backend is not None:
            return backend.is_disjoint(self.conjuncts, other.conjuncts)
        return not _union_intersect(self.conjuncts, other.conjuncts)

    def as_set(self) -> Set:
        """The map viewed as a set over the concatenated (in, out) dimensions."""
        names = self._wrapped_names()
        return Set(names, self.conjuncts, _clean_input=False)

    def _wrapped_names(self) -> Tuple[str, ...]:
        out_names = tuple(
            name if name not in self.in_names else f"{name}'" for name in self.out_names
        )
        return self.in_names + out_names

    def domain(self) -> Set:
        """The set of input tuples related to at least one output tuple."""
        wrapped = self.as_set()
        return wrapped.project_out(wrapped.names[self.n_in :]).rename(self.in_names)

    def range(self) -> Set:
        """The set of output tuples related to at least one input tuple."""
        wrapped = self.as_set()
        return wrapped.project_out(wrapped.names[: self.n_in]).rename(self.out_names)

    def inverse(self) -> "Map":
        """The relation with inputs and outputs swapped (memoized)."""
        return _opcache.memoized(
            "inverse",
            (self.in_names, self.out_names, self.conjuncts),
            self._inverse_uncached,
        )

    def _inverse_uncached(self) -> "Map":
        width = self.n_in + self.n_out

        def swap(vec: Vector) -> Vector:
            ins = vec[: self.n_in]
            outs = vec[self.n_in : width]
            rest = vec[width:]
            return outs + ins + rest

        conjuncts = [
            Conjunct(width, c.n_div, [swap(v) for v in c.eqs], [swap(v) for v in c.ineqs])
            for c in self.conjuncts
        ]
        return Map(self.out_names, self.in_names, conjuncts, _clean_input=False)

    def compose(self, other: "Map") -> "Map":
        """Relational composition ``self`` *then* ``other`` (memoized).

        ``result = { x -> z : exists y . (x -> y) in self and (y -> z) in other }``
        This is the natural join used by the paper to reduce intermediate
        variables:  ``M_C_B = M_C_tmp . M_tmp_B``.
        """
        if not isinstance(other, Map):
            raise TypeError(f"expected Map, got {type(other).__name__}")
        if self.n_out != other.n_in:
            raise SpaceMismatchError(
                "cannot compose: the output space of the left map "
                f"[{', '.join(self.in_names)}] -> [{', '.join(self.out_names)}] "
                f"has {self.n_out} dimension(s) but the input space of the right map "
                f"[{', '.join(other.in_names)}] -> [{', '.join(other.out_names)}] "
                f"has {other.n_in} dimension(s)"
            )
        return _opcache.memoized(
            "compose",
            (
                self.in_names,
                self.out_names,
                self.conjuncts,
                other.in_names,
                other.out_names,
                other.conjuncts,
            ),
            lambda: self._compose_uncached(other),
        )

    def _compose_uncached(self, other: "Map") -> "Map":
        n_x, n_y, n_z = self.n_in, self.n_out, other.n_out
        width = n_x + n_z
        pieces: List[Conjunct] = []
        for left in self.conjuncts:
            for right in other.conjuncts:
                n_div = left.n_div + right.n_div + n_y
                eqs: List[Vector] = []
                ineqs: List[Vector] = []

                def lift_left(vec: Vector) -> Vector:
                    x = vec[:n_x]
                    y = vec[n_x : n_x + n_y]
                    divs = vec[n_x + n_y : -1]
                    constant = vec[-1]
                    return (
                        x
                        + (0,) * n_z
                        + divs
                        + (0,) * right.n_div
                        + y
                        + (constant,)
                    )

                def lift_right(vec: Vector) -> Vector:
                    y = vec[:n_y]
                    z = vec[n_y : n_y + n_z]
                    divs = vec[n_y + n_z : -1]
                    constant = vec[-1]
                    return (
                        (0,) * n_x
                        + z
                        + (0,) * left.n_div
                        + divs
                        + y
                        + (constant,)
                    )

                for vec in left.eqs:
                    eqs.append(lift_left(vec))
                for vec in left.ineqs:
                    ineqs.append(lift_left(vec))
                for vec in right.eqs:
                    eqs.append(lift_right(vec))
                for vec in right.ineqs:
                    ineqs.append(lift_right(vec))
                pieces.append(Conjunct(width, n_div, eqs, ineqs))
        return Map(self.in_names, other.out_names, pieces)

    def apply(self, domain_set: Set) -> Set:
        """The image of *domain_set* under this map."""
        return self.restrict_domain(domain_set).range()

    def preimage(self, range_set: Set) -> Set:
        """The preimage of *range_set* under this map."""
        return self.restrict_range(range_set).domain()

    def restrict_domain(self, domain_set: Set) -> "Map":
        """Keep only pairs whose input tuple lies in *domain_set*."""
        if domain_set.arity != self.n_in:
            raise SpaceMismatchError("domain restriction arity mismatch")
        pieces: List[Conjunct] = []
        for map_conjunct in self.conjuncts:
            for set_conjunct in domain_set.conjuncts:
                lifted = self._lift_set_conjunct(set_conjunct, at_input=True)
                pieces.append(omega.conjunct_intersect(map_conjunct, lifted))
        return Map(self.in_names, self.out_names, pieces)

    def restrict_range(self, range_set: Set) -> "Map":
        """Keep only pairs whose output tuple lies in *range_set*."""
        if range_set.arity != self.n_out:
            raise SpaceMismatchError("range restriction arity mismatch")
        pieces: List[Conjunct] = []
        for map_conjunct in self.conjuncts:
            for set_conjunct in range_set.conjuncts:
                lifted = self._lift_set_conjunct(set_conjunct, at_input=False)
                pieces.append(omega.conjunct_intersect(map_conjunct, lifted))
        return Map(self.in_names, self.out_names, pieces)

    def _lift_set_conjunct(self, conjunct: Conjunct, *, at_input: bool) -> Conjunct:
        width = self.n_in + self.n_out

        def lift(vec: Vector) -> Vector:
            dims = vec[: conjunct.n_vars]
            divs = vec[conjunct.n_vars : -1]
            constant = vec[-1]
            if at_input:
                return dims + (0,) * self.n_out + divs + (constant,)
            return (0,) * self.n_in + dims + divs + (constant,)

        return Conjunct(width, conjunct.n_div, [lift(v) for v in conjunct.eqs], [lift(v) for v in conjunct.ineqs])

    def is_single_valued(self) -> bool:
        """True when every input tuple is related to at most one output tuple."""
        pairs = self.inverse().compose(self)
        identity = Map.identity(self.out_names)
        return pairs.is_subset(Map(identity.in_names, identity.out_names, identity.conjuncts, _clean_input=False))

    def is_injective(self) -> bool:
        """True when no two input tuples map to the same output tuple."""
        return self.inverse().is_single_valued()

    def is_bijection_on_domain(self) -> bool:
        return self.is_single_valued() and self.is_injective()

    def deltas(self) -> Set:
        """The set of differences ``out - in`` (requires equal in/out arity)."""
        if self.n_in != self.n_out:
            raise SpaceMismatchError("deltas requires equal input and output arity")
        delta_names = tuple(f"d{i}" for i in range(self.n_in))
        # Build map (in, out) space extended with delta dims, then project.
        width = self.n_in + self.n_out
        pieces: List[Conjunct] = []
        for conjunct in self.conjuncts:
            extended = Conjunct(
                width + self.n_in,
                conjunct.n_div,
                [v[:width] + (0,) * self.n_in + v[width:] for v in conjunct.eqs],
                [v[:width] + (0,) * self.n_in + v[width:] for v in conjunct.ineqs],
            )
            delta_eqs = []
            for index in range(self.n_in):
                vector = [0] * (extended.n_cols)
                vector[index] = 1  # in_i
                vector[self.n_in + index] = -1  # -out_i
                vector[width + index] = 1  # +d_i
                delta_eqs.append(tuple(vector))
            extended = extended.with_constraints(eqs=delta_eqs)
            pieces.extend(omega.project_cols(extended, list(range(width))))
        return Set(delta_names, pieces)

    def rename(self, in_names: Sequence[str], out_names: Sequence[str]) -> "Map":
        in_names, out_names = tuple(in_names), tuple(out_names)
        if len(in_names) != self.n_in or len(out_names) != self.n_out:
            raise SpaceMismatchError("renaming must preserve arities")
        return Map(in_names, out_names, self.conjuncts, _clean_input=False)

    def coalesce(self) -> "Map":
        kept: List[Conjunct] = []
        for index, conjunct in enumerate(self.conjuncts):
            others = [c for j, c in enumerate(self.conjuncts) if j != index]
            if others:
                single = Map(self.in_names, self.out_names, [conjunct], _clean_input=False)
                rest = Map(self.in_names, self.out_names, others, _clean_input=False)
                if single.is_subset(rest):
                    continue
            kept.append(conjunct)
        return Map(self.in_names, self.out_names, kept, _clean_input=False)

    # ------------------------ point enumeration ----------------------- #
    def pairs(self, limit: int = 1_000_000) -> Iterator[Tuple[Tuple[int, ...], Tuple[int, ...]]]:
        """Iterate over (input, output) pairs of a bounded relation."""
        for point in self.as_set().points(limit):
            yield point[: self.n_in], point[self.n_in :]

    # --------------------------- dunder api ---------------------------- #
    def __and__(self, other: "Map") -> "Map":
        return self.intersect(other)

    def __or__(self, other: "Map") -> "Map":
        return self.union(other)

    def __sub__(self, other: "Map") -> "Map":
        return self.subtract(other)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Map):
            return NotImplemented
        return self.is_equal(other)

    def __hash__(self) -> int:
        return hash(
            (self.in_names, self.out_names, tuple(sorted(c.normalized_key() for c in self.conjuncts)))
        )

    def __bool__(self) -> bool:
        return not self.is_empty()

    def __str__(self) -> str:
        if self.is_empty():
            return "{ [" + ", ".join(self.in_names) + "] -> [" + ", ".join(self.out_names) + "] : false }"
        pieces = []
        for conjunct in self.conjuncts:
            pieces.append(self._render_conjunct(conjunct))
        return "{ " + "; ".join(pieces) + " }"

    def _render_conjunct(self, conjunct: Conjunct) -> str:
        """Render one conjunct, preferring the ``[in] -> [f(in)]`` image form."""
        names = self._wrapped_names()
        in_part = "[" + ", ".join(self.in_names) + "]"
        out_exprs: List[str] = []
        used_eqs: List[Tuple[str, int]] = []
        for out_index in range(self.n_out):
            col = self.n_in + out_index
            expr_text = None
            for eq_index, eq in enumerate(conjunct.eqs):
                if abs(eq[col]) != 1:
                    continue
                if any(eq[self.n_in + j] != 0 for j in range(self.n_out) if j != out_index):
                    continue
                if any(eq[conjunct.n_vars + d] != 0 for d in range(conjunct.n_div)):
                    continue
                sign = -eq[col]
                coeffs = {
                    self.in_names[i]: sign * eq[i] for i in range(self.n_in) if eq[i] != 0
                }
                expr_text = str(LinExpr(coeffs, sign * eq[-1]))
                used_eqs.append(("eq", eq_index))
                break
            if expr_text is None:
                out_exprs = []
                used_eqs = []
                break
            out_exprs.append(expr_text)
        if out_exprs:
            body = _render_conjunct_body(conjunct, names, skip=used_eqs)
            head = f"{in_part} -> [{', '.join(out_exprs)}]"
        else:
            body = _render_conjunct_body(conjunct, names)
            head = f"{in_part} -> [{', '.join(names[self.n_in:])}]"
        return f"{head} : {body}" if body != "true" else head

    def __repr__(self) -> str:
        return f"Map({str(self)!r})"
