"""Affine (linear + constant) integer expressions over named dimensions.

:class:`LinExpr` is the building block used by client code (the access-map
extractor, the textual parser, the transformation engine) to describe affine
index expressions and constraints symbolically before they are lowered to the
dense coefficient-vector form used inside :class:`~repro.presburger.conjunct.Conjunct`.

All coefficients are Python integers; the class is immutable and hashable.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple, Union

from . import opcache as _opcache

Number = int
_ExprLike = Union["LinExpr", int, str]


class LinExpr:
    """An affine expression ``sum(coeff[v] * v) + const`` with integer coefficients.

    Examples
    --------
    >>> k = LinExpr.var("k")
    >>> e = 2 * k - 2
    >>> e.coeff("k"), e.const
    (2, -2)
    >>> str(e)
    '2*k - 2'
    """

    __slots__ = ("_coeffs", "_const", "_hash")

    def __init__(self, coeffs: Mapping[str, int] | None = None, const: int = 0):
        items = {}
        if coeffs:
            for name, value in coeffs.items():
                if not isinstance(value, int):
                    raise TypeError(f"coefficient of {name!r} must be int, got {type(value).__name__}")
                if value != 0:
                    items[name] = value
        if not isinstance(const, int):
            raise TypeError(f"constant must be int, got {type(const).__name__}")
        self._coeffs: Dict[str, int] = items
        self._const = const
        self._hash = hash((tuple(sorted(items.items())), const))

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def var(name: str) -> "LinExpr":
        """Return the expression consisting of the single variable *name*.

        The result is interned (hash-consed): repeated calls with the same
        name return the same object, so the access-map extractor and the
        parser share one instance per dimension name.
        """
        return _opcache.intern_expr(LinExpr({name: 1}, 0))

    @staticmethod
    def constant(value: int) -> "LinExpr":
        """Return a constant expression (interned, like :meth:`var`)."""
        return _opcache.intern_expr(LinExpr({}, value))

    def interned(self) -> "LinExpr":
        """The canonical (hash-consed) instance equal to this expression.

        Interning preserves the ``__eq__`` / ``__hash__`` contracts exactly;
        it only upgrades structural equality to object identity so that later
        comparisons and dict/set membership tests are O(1).
        """
        return _opcache.intern_expr(self)

    @staticmethod
    def coerce(value: _ExprLike) -> "LinExpr":
        """Convert *value* (LinExpr, int or variable name) into a LinExpr."""
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, int):
            return LinExpr.constant(value)
        if isinstance(value, str):
            return LinExpr.var(value)
        raise TypeError(f"cannot convert {value!r} to LinExpr")

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def const(self) -> int:
        """The constant term."""
        return self._const

    @property
    def coeffs(self) -> Dict[str, int]:
        """A copy of the (non-zero) coefficient dictionary."""
        return dict(self._coeffs)

    def coeff(self, name: str) -> int:
        """The coefficient of variable *name* (0 if absent)."""
        return self._coeffs.get(name, 0)

    def variables(self) -> Tuple[str, ...]:
        """The variable names with non-zero coefficient, sorted."""
        return tuple(sorted(self._coeffs))

    def is_constant(self) -> bool:
        """True when the expression has no variables."""
        return not self._coeffs

    def substitute(self, bindings: Mapping[str, _ExprLike]) -> "LinExpr":
        """Substitute variables by expressions (or integers) and return the result."""
        result = LinExpr.constant(self._const)
        for name, coefficient in self._coeffs.items():
            if name in bindings:
                result = result + coefficient * LinExpr.coerce(bindings[name])
            else:
                result = result + LinExpr({name: coefficient}, 0)
        return result

    def evaluate(self, bindings: Mapping[str, int]) -> int:
        """Evaluate the expression with integer values for all its variables."""
        total = self._const
        for name, coefficient in self._coeffs.items():
            if name not in bindings:
                raise KeyError(f"no value supplied for variable {name!r}")
            total += coefficient * bindings[name]
        return total

    def rename(self, mapping: Mapping[str, str]) -> "LinExpr":
        """Rename variables according to *mapping* (missing names are kept)."""
        return LinExpr({mapping.get(n, n): c for n, c in self._coeffs.items()}, self._const)

    def to_vector(self, order: Iterable[str]) -> Tuple[int, ...]:
        """Dense coefficient vector in the given variable *order*, constant last.

        Raises :class:`KeyError` if the expression mentions a variable that is
        not present in *order*.
        """
        order = list(order)
        known = set(order)
        for name in self._coeffs:
            if name not in known:
                raise KeyError(f"variable {name!r} not present in ordering {order!r}")
        return tuple(self._coeffs.get(name, 0) for name in order) + (self._const,)

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: _ExprLike) -> "LinExpr":
        other = LinExpr.coerce(other)
        coeffs = dict(self._coeffs)
        for name, value in other._coeffs.items():
            coeffs[name] = coeffs.get(name, 0) + value
        return LinExpr(coeffs, self._const + other._const)

    def __radd__(self, other: _ExprLike) -> "LinExpr":
        return self.__add__(other)

    def __neg__(self) -> "LinExpr":
        return LinExpr({n: -c for n, c in self._coeffs.items()}, -self._const)

    def __sub__(self, other: _ExprLike) -> "LinExpr":
        return self.__add__(-LinExpr.coerce(other))

    def __rsub__(self, other: _ExprLike) -> "LinExpr":
        return (-self).__add__(other)

    def __mul__(self, factor: int) -> "LinExpr":
        if isinstance(factor, LinExpr):
            if factor.is_constant():
                factor = factor.const
            elif self.is_constant():
                return factor * self._const
            else:
                raise TypeError("cannot multiply two non-constant affine expressions")
        if not isinstance(factor, int):
            raise TypeError(f"can only scale a LinExpr by an int, got {type(factor).__name__}")
        return LinExpr({n: c * factor for n, c in self._coeffs.items()}, self._const * factor)

    def __rmul__(self, factor: int) -> "LinExpr":
        return self.__mul__(factor)

    # ------------------------------------------------------------------ #
    # Comparison / representation
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, LinExpr):
            return NotImplemented
        return self._coeffs == other._coeffs and self._const == other._const

    def __hash__(self) -> int:
        return self._hash

    def __bool__(self) -> bool:
        return bool(self._coeffs) or self._const != 0

    def __str__(self) -> str:
        parts = []
        for name in sorted(self._coeffs):
            coefficient = self._coeffs[name]
            if not parts:
                if coefficient == 1:
                    parts.append(name)
                elif coefficient == -1:
                    parts.append(f"-{name}")
                else:
                    parts.append(f"{coefficient}*{name}")
            else:
                sign = "+" if coefficient > 0 else "-"
                magnitude = abs(coefficient)
                term = name if magnitude == 1 else f"{magnitude}*{name}"
                parts.append(f"{sign} {term}")
        if self._const or not parts:
            if not parts:
                parts.append(str(self._const))
            else:
                sign = "+" if self._const > 0 else "-"
                parts.append(f"{sign} {abs(self._const)}")
        return " ".join(parts)

    def __repr__(self) -> str:
        return f"LinExpr({self._coeffs!r}, {self._const!r})"
