"""Hash-consing and memoization for the Presburger relation algebra.

Every equivalence check reduces to long chains of ``Map.compose``, inverses,
intersections, subtractions, feasibility tests and transitive closures over
the same handful of dependency relations, so the checker keeps re-deriving
results it has already derived (the synchronized traversal of Section 5
revisits the same relations once per path through a shared sub-ADDG).  This
module extends the paper's tabling idea (Section 6.2) one layer down, into
the integer set/relation operations themselves:

* **interning** (hash-consing) of :class:`~repro.presburger.conjunct.Conjunct`
  values, :class:`~repro.presburger.linexpr.LinExpr` values and normalized
  constraint vectors, so that structurally equal values become *the same
  object* and every later equality test or dict/set membership check is an
  O(1) identity-or-cached-hash comparison;
* a bounded, instrumented **operation cache** (LRU) that memoizes the
  results of the relation-algebra operations, keyed on the interned operands.

Both layers are per-process, purely an optimization, and can be disabled
(see :func:`configure` and the ``REPRO_OPCACHE_DISABLE`` environment
variable) — results are bit-for-bit identical either way, which the unit
tests in ``tests/unit/presburger/test_opcache.py`` assert property-style.

Public knobs
------------

``REPRO_OPCACHE_SIZE`` (environment variable)
    Maximum number of memoized operation results (default ``8192``).  Each
    entry holds small tuples of Python ints; a few thousand entries cost a
    few MB.  Read once at import time; :func:`configure` overrides it.

``REPRO_OPCACHE_DISABLE`` (environment variable)
    Any non-empty value other than ``0``/``false``/``no`` disables both the
    operation cache and the intern hit accounting at import time.

``REPRO_OPCACHE_PERSIST_DIR`` (environment variable)
    A directory for the disk-backed second tier (see
    :mod:`repro.presburger.persist`): in-memory misses consult
    ``<dir>/opcache.sqlite`` before recomputing, fresh results are written
    through, and decoded conjuncts repopulate the intern pools — so warm
    state survives processes and is shared by executor workers and the
    server pool.  Unset (the default) means memory-only, exactly as before.
    :func:`attach_persistent` / :func:`detach_persistent` control it at
    runtime; ``CheckOptions.persist_dir`` and the ``--persist-dir`` CLI
    flags export it.

:func:`configure`
    Programmatic runtime control over size and enablement.

:func:`disabled`
    Context manager that switches the cache off for a code block (used by
    the ablation benchmarks).

:func:`stats` / :func:`snapshot` / :func:`reset`
    Instrumentation: cumulative counters, cheap copies of them for
    delta-accounting (the checker engine stores per-check deltas into
    :class:`~repro.checker.result.CheckStats`), and a full reset.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Iterator, Tuple

from ..telemetry import METRICS as _METRICS, TRACER as _TRACER

__all__ = [
    "OpCacheStats",
    "OpCache",
    "attach_persistent",
    "cache",
    "configure",
    "detach_persistent",
    "disabled",
    "is_enabled",
    "intern_conjunct",
    "intern_expr",
    "intern_vector",
    "memoized",
    "persistent_store",
    "reattach_persistent",
    "reset",
    "snapshot",
    "stats",
]

DEFAULT_SIZE = 8192
_INTERN_POOL_SIZE = 16384


def _env_size() -> int:
    raw = os.environ.get("REPRO_OPCACHE_SIZE", "")
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_SIZE
    return value if value > 0 else DEFAULT_SIZE


def _env_disabled() -> bool:
    raw = os.environ.get("REPRO_OPCACHE_DISABLE", "").strip().lower()
    return raw not in ("", "0", "false", "no")


@dataclass
class OpCacheStats:
    """Cumulative counters of the operation cache and the intern pools.

    ``hits``/``misses`` count memoized-operation lookups; ``per_op`` breaks
    them down by operation name (``"compose"``, ``"inverse"``, ``"ui"`` for
    union-intersect, ``"us"`` for union-subtract, ``"simplify"``,
    ``"feasible"``, ``"closure"``).  ``intern_hits``/``intern_misses`` count
    intern-pool lookups (a hit means an already-canonical object was reused).

    ``disk_hits``/``disk_misses``/``disk_writes``/``disk_errors`` count the
    optional persistent tier (always zero when no store is attached); a disk
    hit is *also* recorded as an ordinary hit for the consulted operation,
    since the caller got a cached result either way.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    intern_hits: int = 0
    intern_misses: int = 0
    disk_hits: int = 0
    disk_misses: int = 0
    disk_writes: int = 0
    disk_errors: int = 0
    per_op: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    def record(self, op: str, hit: bool) -> None:
        h, m = self.per_op.get(op, (0, 0))
        if hit:
            self.hits += 1
            self.per_op[op] = (h + 1, m)
        else:
            self.misses += 1
            self.per_op[op] = (h, m + 1)

    def copy(self) -> "OpCacheStats":
        """A cheap snapshot for delta accounting across one equivalence check."""
        return OpCacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            intern_hits=self.intern_hits,
            intern_misses=self.intern_misses,
            disk_hits=self.disk_hits,
            disk_misses=self.disk_misses,
            disk_writes=self.disk_writes,
            disk_errors=self.disk_errors,
            per_op=dict(self.per_op),
        )

    def delta(self, earlier: "OpCacheStats") -> "OpCacheStats":
        """The counter increments accumulated since the *earlier* snapshot."""
        per_op: Dict[str, Tuple[int, int]] = {}
        for op, (h, m) in self.per_op.items():
            h0, m0 = earlier.per_op.get(op, (0, 0))
            if h != h0 or m != m0:
                per_op[op] = (h - h0, m - m0)
        return OpCacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            evictions=self.evictions - earlier.evictions,
            intern_hits=self.intern_hits - earlier.intern_hits,
            intern_misses=self.intern_misses - earlier.intern_misses,
            disk_hits=self.disk_hits - earlier.disk_hits,
            disk_misses=self.disk_misses - earlier.disk_misses,
            disk_writes=self.disk_writes - earlier.disk_writes,
            disk_errors=self.disk_errors - earlier.disk_errors,
            per_op=per_op,
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "intern_hits": self.intern_hits,
            "intern_misses": self.intern_misses,
            "disk_hits": self.disk_hits,
            "disk_misses": self.disk_misses,
            "disk_writes": self.disk_writes,
            "disk_errors": self.disk_errors,
            "per_op": {op: {"hits": h, "misses": m} for op, (h, m) in sorted(self.per_op.items())},
        }


class _InternPool:
    """A bounded FIFO pool mapping a structural key to its canonical object.

    Eviction only forfeits future sharing for the evicted entry; it never
    affects correctness, because callers always fall back to the object they
    were about to intern.
    """

    __slots__ = ("_entries", "_maxsize")

    def __init__(self, maxsize: int = _INTERN_POOL_SIZE):
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._maxsize = maxsize

    def canonical(self, key: Hashable, value: Any, stats_: OpCacheStats) -> Any:
        found = self._entries.get(key)
        if found is not None:
            stats_.intern_hits += 1
            return found
        stats_.intern_misses += 1
        self._entries[key] = value
        if len(self._entries) > self._maxsize:
            self._entries.popitem(last=False)
        return value

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()


class OpCache:
    """A bounded LRU cache for relation-algebra results plus intern pools.

    One instance per process (see :func:`cache`).  All stored results are
    immutable (:class:`Conjunct` tuples, ``Set``/``Map`` values, booleans),
    so returning the cached object itself — rather than a copy — is safe.
    """

    def __init__(self, maxsize: int = DEFAULT_SIZE, enabled: bool = True):
        self.maxsize = maxsize
        self.enabled = enabled
        self.stats = OpCacheStats()
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._conjuncts = _InternPool()
        self._exprs = _InternPool()
        self._vectors = _InternPool()
        # Optional disk-backed second tier (repro.presburger.persist); None
        # means memory-only.
        self._persist = None

    # ---------------------------- memoization --------------------------- #
    def memoized(self, op: str, key: Hashable, compute: Callable[[], Any]) -> Any:
        """Return the cached result for ``(op, key)`` or compute and store it.

        *key* must capture every input that can influence the result of
        *compute* (the wrappers in :mod:`repro.presburger.setmap` and
        :mod:`repro.presburger.closure` build keys from interned conjunct
        tuples plus the dimension names that appear in the result).
        """
        if not self.enabled:
            return compute()
        full_key = (op, key)
        entries = self._entries
        if full_key in entries:
            entries.move_to_end(full_key)
            self.stats.record(op, hit=True)
            if _METRICS.enabled:
                _METRICS.inc("opcache.hits")
            return entries[full_key]
        store = self._persist
        if store is not None:
            found = store.load(op, key)
            if found is not store.MISS:
                # A disk hit is still a cache hit for the caller; promote it
                # into the memory tier so repeats stay identity-fast.
                self.stats.record(op, hit=True)
                self.stats.disk_hits += 1
                if _METRICS.enabled:
                    _METRICS.inc("opcache.hits")
                    _METRICS.inc("opcache.disk_hits")
                entries[full_key] = found
                if len(entries) > self.maxsize:
                    entries.popitem(last=False)
                    self.stats.evictions += 1
                return found
            self.stats.disk_misses += 1
            if store.errors:
                self.stats.disk_errors = store.errors
        self.stats.record(op, hit=False)
        if _METRICS.enabled:
            _METRICS.inc("opcache.misses")
        if _TRACER.enabled:
            with _TRACER.span("opcache." + op, "presburger"):
                result = compute()
        else:
            result = compute()
        if store is not None:
            if store.save(op, key, result):
                self.stats.disk_writes += 1
                if _METRICS.enabled:
                    _METRICS.inc("opcache.disk_writes")
            elif store.errors:
                self.stats.disk_errors = store.errors
        entries[full_key] = result
        if len(entries) > self.maxsize:
            entries.popitem(last=False)
            self.stats.evictions += 1
        return result

    # ----------------------------- interning ---------------------------- #
    def intern_conjunct(self, conjunct):
        """The canonical instance for *conjunct* (hash-consing).

        Two conjuncts with the same :meth:`~repro.presburger.conjunct.Conjunct.normalized_key`
        intern to the same object, making later ``==``, ``hash`` and
        operation-cache keys identity-fast.
        """
        if not self.enabled:
            return conjunct
        return self._conjuncts.canonical(conjunct.normalized_key(), conjunct, self.stats)

    def intern_expr(self, expr):
        """The canonical instance for a :class:`LinExpr` (hash-consing)."""
        if not self.enabled:
            return expr
        key = (tuple(sorted(expr._coeffs.items())), expr._const)
        return self._exprs.canonical(key, expr, self.stats)

    def intern_vector(self, vector: Tuple[int, ...]) -> Tuple[int, ...]:
        """The canonical tuple for a normalized constraint vector."""
        if not self.enabled:
            return vector
        return self._vectors.canonical(vector, vector, self.stats)

    # ---------------------------- maintenance --------------------------- #
    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every memoized result and intern-pool entry (counters survive)."""
        self._entries.clear()
        self._conjuncts.clear()
        self._exprs.clear()
        self._vectors.clear()


_CACHE = OpCache(maxsize=_env_size(), enabled=not _env_disabled())


def cache() -> OpCache:
    """The process-wide operation cache instance."""
    return _CACHE


def attach_persistent(path: str):
    """Attach a disk-backed second tier at *path* (a directory).

    Replaces any previously attached store.  Returns the
    :class:`~repro.presburger.persist.PersistentStore`; the caller may
    inspect ``store.disabled`` to see whether the directory was usable (an
    unusable store silently degrades to memory-only, because persistence is
    purely an optimization).
    """
    from . import persist as _persist

    detach_persistent()
    store = _persist.PersistentStore(path)
    _CACHE._persist = store
    return store


def detach_persistent() -> None:
    """Close and drop the persistent tier (memory tier is untouched)."""
    store = _CACHE._persist
    if store is not None:
        _CACHE._persist = None
        store.close()


def persistent_store():
    """The currently attached persistent store, or ``None``."""
    return _CACHE._persist


def reattach_persistent() -> None:
    """Re-open the persistent store on a fresh connection (fork safety).

    sqlite connections must not be shared across ``fork``; pool-worker
    initializers call this so each worker process talks to the shared store
    through its own connection.  The inherited parent connection object is
    dropped without closing it (closing could disturb the parent's handle).
    """
    store = _CACHE._persist
    if store is not None:
        _CACHE._persist = store.reopened()


def _attach_from_env() -> None:
    path = os.environ.get("REPRO_OPCACHE_PERSIST_DIR", "").strip()
    if path:
        try:
            attach_persistent(path)
        except Exception:
            _CACHE._persist = None  # never let a bad cache dir break imports


_attach_from_env()


def is_enabled() -> bool:
    """Whether memoization and interning are currently active."""
    return _CACHE.enabled


def configure(maxsize: int | None = None, enabled: bool | None = None) -> OpCache:
    """Adjust the process-wide cache at runtime.

    Parameters
    ----------
    maxsize:
        New bound on the number of memoized results.  Shrinking below the
        current population evicts oldest entries immediately.
    enabled:
        ``False`` switches both memoization and interning off (operations
        recompute from scratch); ``True`` switches them back on.  The stored
        entries are kept either way so re-enabling resumes warm.
    """
    if maxsize is not None:
        if maxsize <= 0:
            raise ValueError("opcache maxsize must be positive")
        _CACHE.maxsize = maxsize
        while len(_CACHE._entries) > maxsize:
            _CACHE._entries.popitem(last=False)
            _CACHE.stats.evictions += 1
    if enabled is not None:
        _CACHE.enabled = bool(enabled)
    return _CACHE


@contextmanager
def disabled() -> Iterator[None]:
    """Context manager: run a block with memoization and interning off.

    Used by the ablation benchmarks and the property tests that assert
    cached and uncached results agree.
    """
    previous = _CACHE.enabled
    _CACHE.enabled = False
    try:
        yield
    finally:
        _CACHE.enabled = previous


def reset() -> None:
    """Clear all cached results, intern pools and counters (a cold start)."""
    _CACHE.clear()
    _CACHE.stats = OpCacheStats()


def stats() -> OpCacheStats:
    """The live cumulative counters of the process-wide cache."""
    return _CACHE.stats


def snapshot() -> OpCacheStats:
    """A copy of the current counters, for before/after delta accounting."""
    return _CACHE.stats.copy()


def memoized(op: str, key: Hashable, compute: Callable[[], Any]) -> Any:
    """Module-level convenience for :meth:`OpCache.memoized` on the global cache."""
    return _CACHE.memoized(op, key, compute)


def intern_conjunct(conjunct):
    """Module-level convenience for :meth:`OpCache.intern_conjunct`."""
    return _CACHE.intern_conjunct(conjunct)


def intern_expr(expr):
    """Module-level convenience for :meth:`OpCache.intern_expr`."""
    return _CACHE.intern_expr(expr)


def intern_vector(vector: Tuple[int, ...]) -> Tuple[int, ...]:
    """Module-level convenience for :meth:`OpCache.intern_vector`."""
    return _CACHE.intern_vector(vector)
