"""Exact integer-arithmetic algorithms on conjuncts (an Omega-test core).

This module is the replacement for the OMEGA calculator used in the paper.
It implements, exactly over the integers:

* constraint normalisation (gcd reduction, tightening, contradiction and
  redundancy detection),
* elimination of a variable (public or existential) from a conjunct —
  by substitution through a unit-coefficient equality, by Pugh's
  coefficient-reduction ("mod-hat") transformation for non-unit equalities,
  and by Fourier–Motzkin with dark shadow + splintering for inequalities
  (the Omega test), yielding an *exact* union of conjuncts,
* integer feasibility of a conjunct,
* simplification (removal of easily eliminable existential variables),
* complementation of a conjunct whose existentials are divisibility
  constraints.

All functions are pure: they take :class:`~repro.presburger.conjunct.Conjunct`
values and return new ones.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set as PySet, Tuple

from .conjunct import Conjunct, Vector, vector_gcd
from .errors import UnsupportedOperationError
from . import kernel as _kernel
from . import opcache as _opcache
from ..telemetry import METRICS as _METRICS

__all__ = [
    "mod_hat",
    "normalize",
    "simplify",
    "eliminate_col",
    "project_cols",
    "is_feasible",
    "complement",
    "conjunct_intersect",
    "negate_inequality",
]


# --------------------------------------------------------------------------- #
# Small helpers
# --------------------------------------------------------------------------- #
def mod_hat(a: int, m: int) -> int:
    """Pugh's symmetric modulo: ``a - m * floor(a / m + 1/2)``.

    The result lies in ``(-m/2, m/2]`` and is congruent to ``a`` modulo ``m``.
    """
    if m <= 0:
        raise ValueError("modulus must be positive")
    return a - m * ((2 * a + m) // (2 * m))


def negate_inequality(vec: Sequence[int]) -> Vector:
    """The integer negation of ``vec >= 0``, namely ``-vec - 1 >= 0``."""
    negated = [-x for x in vec]
    negated[-1] -= 1
    return tuple(negated)


def _apply_substitution(vec: Vector, eq: Vector, col: int) -> Vector:
    """Substitute the variable in column *col* using equality *eq*.

    *eq* must have coefficient ``+1`` or ``-1`` in column *col*; the equality
    ``eq . (x, 1) == 0`` is solved for that variable and the solution is
    substituted into *vec*.  The returned vector has a zero coefficient in
    column *col*.
    """
    b = vec[col]
    if b == 0:
        return vec
    a = eq[col]
    if abs(a) != 1:
        raise ValueError("substitution requires a unit coefficient")
    # From eq: a*x + rest = 0  =>  x = -a * rest  (since a in {1, -1}).
    return tuple(
        0 if j == col else vec[j] + b * (-a) * eq[j] for j in range(len(vec))
    )


# --------------------------------------------------------------------------- #
# Normalisation
# --------------------------------------------------------------------------- #
def normalize(conjunct: Conjunct) -> Optional[Conjunct]:
    """Gcd-normalise, tighten and lightly simplify a conjunct.

    Returns ``None`` when a contradiction is detected syntactically (the
    conjunct is trivially empty).  The result is logically equivalent to the
    input over the integers.

    Under the default flat-matrix kernel (see :mod:`repro.presburger.kernel`)
    the batched implementation runs instead of the per-row loops below; both
    produce bit-identical results and fully interned rows.
    """
    if _kernel.FLAT:
        return _kernel.normalize_conjunct(conjunct)
    eqs: List[Vector] = []
    ineqs: List[Vector] = []
    intern_vector = _opcache.intern_vector

    for vec in conjunct.eqs:
        g = vector_gcd(vec[:-1])
        if g == 0:
            if vec[-1] != 0:
                return None
            continue
        if g == 1:
            # Fast path: already gcd-reduced, only the sign may need fixing.
            reduced = vec
        else:
            if vec[-1] % g != 0:
                return None
            reduced = tuple(x // g for x in vec)
        # canonical sign: first non-zero coefficient positive
        for x in reduced[:-1]:
            if x != 0:
                if x < 0:
                    reduced = tuple(-y for y in reduced)
                break
        eqs.append(intern_vector(reduced))

    for vec in conjunct.ineqs:
        g = vector_gcd(vec[:-1])
        if g == 0:
            if vec[-1] < 0:
                return None
            continue
        if g == 1:
            reduced = vec  # fast path: gcd reduction and tightening are no-ops
        else:
            reduced = tuple(x // g for x in vec[:-1]) + (vec[-1] // g,)  # floor-tighten constant
        ineqs.append(intern_vector(reduced))

    # Deduplicate equalities.
    eqs = list(dict.fromkeys(eqs))

    # For inequalities with identical variable coefficients keep the tightest,
    # detect contradictions and implied equalities from opposite pairs.
    tightest: Dict[Tuple[int, ...], int] = {}
    for vec in ineqs:
        key = vec[:-1]
        constant = vec[-1]
        if key in tightest:
            tightest[key] = min(tightest[key], constant)
        else:
            tightest[key] = constant

    final_ineqs: List[Vector] = []
    promoted_eqs: List[Vector] = []
    consumed = set()
    for key, constant in tightest.items():
        if key in consumed:
            continue
        neg_key = tuple(-x for x in key)
        if neg_key in tightest and neg_key != key:
            other = tightest[neg_key]
            if constant + other < 0:
                return None
            if constant + other == 0:
                promoted_eqs.append(key + (constant,))
                consumed.add(key)
                consumed.add(neg_key)
                continue
        # key + (constant,) is a fresh tuple even when nothing was tightened;
        # re-intern it so every vector stored in the result stays canonical.
        final_ineqs.append(intern_vector(key + (constant,)))

    for vec in promoted_eqs:
        g = vector_gcd(vec[:-1])
        if g == 0:
            if vec[-1] != 0:
                return None
            continue
        if vec[-1] % g != 0:
            return None
        reduced = tuple(x // g for x in vec)
        for x in reduced[:-1]:
            if x != 0:
                if x < 0:
                    reduced = tuple(-y for y in reduced)
                break
        reduced = intern_vector(reduced)
        if reduced not in eqs:
            eqs.append(reduced)

    return Conjunct(conjunct.n_vars, conjunct.n_div, eqs, final_ineqs)


def _intern_rows(conjunct: Conjunct) -> Conjunct:
    """Re-intern every row of *conjunct* (leak-audit helper).

    Column-dropping rebuilds constraint vectors as fresh tuples; routing the
    result through here restores the invariant that every vector stored in a
    conjunct that survives into a ``Set``/``Map`` is the canonical interned
    instance, so later equality tests stay identity-fast.
    """
    iv = _opcache.intern_vector
    return Conjunct._make(
        conjunct.n_vars,
        conjunct.n_div,
        tuple(iv(v) for v in conjunct.eqs),
        tuple(iv(v) for v in conjunct.ineqs),
        normed=conjunct._normed,
    )


def _build(n_vars: int, n_div: int, eqs, ineqs) -> Conjunct:
    """Construct a conjunct, skipping per-row validation under the flat kernel.

    All call sites pass tuples of Python ints produced by the substitution /
    combination helpers, so the object path's ``_check`` is redundant there;
    the object path keeps it for an honest ablation baseline.
    """
    if _kernel.FLAT:
        return Conjunct._make(n_vars, n_div, tuple(eqs), tuple(ineqs))
    return Conjunct(n_vars, n_div, eqs, ineqs)


def _dropped_dims(conjunct: Conjunct, col: int) -> Tuple[int, int]:
    """The (n_vars, n_div) of *conjunct* after dropping column *col*."""
    if col < conjunct.n_vars:
        return conjunct.n_vars - 1, conjunct.n_div
    return conjunct.n_vars, conjunct.n_div - 1


# --------------------------------------------------------------------------- #
# Variable elimination (exact)
# --------------------------------------------------------------------------- #
def eliminate_col(conjunct: Conjunct, col: int) -> List[Conjunct]:
    """Exactly eliminate the variable in column *col*.

    The variable is treated as existentially quantified; the result is a list
    of conjuncts (a union) over the remaining columns whose union of solution
    sets equals the projection of the input.  An empty list means the input
    was infeasible regardless of the eliminated variable.
    """
    if _METRICS.enabled:
        _METRICS.inc("presburger.fm_eliminations")
    normalized = normalize(conjunct)
    if normalized is None:
        return []
    conjunct = normalized

    if not conjunct.involves_col(col):
        # drop_col rebuilds every row as a fresh (shrunk) tuple: re-intern so
        # the hash-consing invariant survives this exit too.
        return [_intern_rows(conjunct.drop_col(col))]

    # 1. A unit-coefficient equality allows exact substitution.
    for index, eq in enumerate(conjunct.eqs):
        if abs(eq[col]) == 1:
            if _kernel.FLAT:
                remaining = [vec for j, vec in enumerate(conjunct.eqs) if j != index]
                n_vars, n_div = _dropped_dims(conjunct, col)
                reduced = Conjunct._make(
                    n_vars,
                    n_div,
                    tuple(_kernel.substitute_drop(remaining, eq, col)),
                    tuple(_kernel.substitute_drop(conjunct.ineqs, eq, col)),
                )
            else:
                new_eqs = [
                    _apply_substitution(vec, eq, col)
                    for j, vec in enumerate(conjunct.eqs)
                    if j != index
                ]
                new_ineqs = [_apply_substitution(vec, eq, col) for vec in conjunct.ineqs]
                reduced = Conjunct(
                    conjunct.n_vars, conjunct.n_div, new_eqs, new_ineqs
                ).drop_col(col)
            renorm = normalize(reduced)
            return [renorm] if renorm is not None else []

    # 2. An equality with a non-unit coefficient: Pugh's coefficient reduction.
    eqs_with_col = [(i, eq) for i, eq in enumerate(conjunct.eqs) if eq[col] != 0]
    if eqs_with_col:
        index, eq = min(eqs_with_col, key=lambda item: abs(item[1][col]))
        a = eq[col]
        m = abs(a) + 1
        widened = conjunct.add_divs(1)
        sigma_col = widened.const_col - 1
        source = widened.eqs[index]
        new_eq = [mod_hat(x, m) for x in source]
        new_eq[sigma_col] = -m
        augmented = widened.with_constraints(eqs=[tuple(new_eq)])
        # The new equality has coefficient -sign(a) (a unit) in column *col*,
        # so the recursive call terminates via case 1.
        return eliminate_col(augmented, col)

    # 3. Only inequalities involve the column: Omega-test elimination.
    return _eliminate_inequality_col(conjunct, col)


def _eliminate_inequality_col(conjunct: Conjunct, col: int) -> List[Conjunct]:
    """Eliminate a column that appears only in inequalities (exact union)."""
    lowers = [v for v in conjunct.ineqs if v[col] > 0]
    uppers = [v for v in conjunct.ineqs if v[col] < 0]
    others = [v for v in conjunct.ineqs if v[col] == 0]

    def _shadow_conjunct(shadow: List[Vector]) -> Conjunct:
        # Every row (eqs, others, resultants) has a zero coefficient in the
        # eliminated column, so dropping it is a pure row-shrink.
        if _kernel.FLAT:
            n_vars, n_div = _dropped_dims(conjunct, col)
            return Conjunct._make(
                n_vars,
                n_div,
                tuple(_kernel.drop_rows(conjunct.eqs, col)),
                tuple(_kernel.drop_rows(others + shadow, col)),
            )
        return Conjunct(
            conjunct.n_vars, conjunct.n_div, conjunct.eqs, others + shadow
        ).drop_col(col)

    if not lowers or not uppers:
        # Unbounded in at least one direction: an integer value always exists.
        renorm = normalize(_shadow_conjunct([]))
        return [renorm] if renorm is not None else []

    # When every lower bound (or every upper bound) has a unit coefficient,
    # the Fourier–Motzkin slack (a-1)(b-1) vanishes for every pair: the real
    # shadow is exact and the dark-shadow bookkeeping can be skipped.
    unit_bounds = all(v[col] == 1 for v in lowers) or all(v[col] == -1 for v in uppers)

    if _kernel.FLAT:
        real_shadow, dark_shadow, all_exact = _kernel.fm_combine(
            lowers, uppers, col, unit_bounds
        )
    else:
        real_shadow = []
        dark_shadow = []
        all_exact = True
        for lower in lowers:
            b = lower[col]
            for upper in uppers:
                a = -upper[col]
                resultant = [b * upper[j] + a * lower[j] for j in range(len(lower))]
                assert resultant[col] == 0
                real_shadow.append(tuple(resultant))
                if unit_bounds:
                    continue  # slack is provably zero for this pair
                slack = (a - 1) * (b - 1)
                if slack:
                    all_exact = False
                dark = list(resultant)
                dark[-1] -= slack
                dark_shadow.append(tuple(dark))

    if all_exact:
        renorm = normalize(_shadow_conjunct(real_shadow))
        return [renorm] if renorm is not None else []

    results: List[Conjunct] = []
    dark_norm = normalize(_shadow_conjunct(dark_shadow))
    if dark_norm is not None:
        results.append(dark_norm)

    # Splinters: force the eliminated variable onto one of finitely many
    # hyperplanes just above a lower bound (Pugh's exact-projection theorem).
    a_max = max(-upper[col] for upper in uppers)
    for lower in lowers:
        b = lower[col]
        max_offset = (a_max * b - a_max - b) // a_max
        if _METRICS.enabled:
            _METRICS.inc("presburger.dark_shadow_splinters", max_offset + 1)
        for offset in range(max_offset + 1):
            equality = list(lower)
            equality[-1] -= offset
            splinter = conjunct.with_constraints(eqs=[tuple(equality)])
            results.extend(eliminate_col(splinter, col))
    return results


def real_shadow_eliminate(conjunct: Conjunct, cols: Sequence[int]) -> Conjunct:
    """Rational Fourier–Motzkin elimination of the given columns.

    The result is an *over-approximation* of the integer projection (its real
    shadow); it is only used to derive valid outer bounding boxes for point
    enumeration, never for exact reasoning.
    """
    ineqs: List[Vector] = list(conjunct.ineqs)
    for eq in conjunct.eqs:
        ineqs.append(tuple(eq))
        ineqs.append(tuple(-x for x in eq))
    n_vars, n_div = conjunct.n_vars, conjunct.n_div
    current = Conjunct(n_vars, n_div, [], ineqs)
    for col in sorted(cols, reverse=True):
        lowers = [v for v in current.ineqs if v[col] > 0]
        uppers = [v for v in current.ineqs if v[col] < 0]
        others = [v for v in current.ineqs if v[col] == 0]
        resultants: List[Vector] = []
        for lower in lowers:
            b = lower[col]
            for upper in uppers:
                a = -upper[col]
                resultants.append(tuple(b * upper[j] + a * lower[j] for j in range(len(lower))))
        current = Conjunct(current.n_vars, current.n_div, [], others + resultants).drop_col(col)
    return current


def project_cols(conjunct: Conjunct, cols: Sequence[int]) -> List[Conjunct]:
    """Exactly eliminate several columns (indices relative to the input layout)."""
    pending = [conjunct]
    # Eliminate from the highest column index downwards so earlier indices
    # remain valid as columns are dropped.
    for col in sorted(cols, reverse=True):
        next_pending: List[Conjunct] = []
        for piece in pending:
            next_pending.extend(eliminate_col(piece, col))
        pending = next_pending
        if not pending:
            break
    return pending


# --------------------------------------------------------------------------- #
# Feasibility
# --------------------------------------------------------------------------- #
def _choose_elimination_col(conjunct: Conjunct) -> int:
    """Heuristically pick the cheapest column to eliminate next."""
    total_cols = conjunct.const_col
    best_col = 0
    best_score: Tuple[int, int] | None = None
    for col in range(total_cols):
        if not conjunct.involves_col(col):
            return col
        unit_eq = any(abs(eq[col]) == 1 for eq in conjunct.eqs)
        if unit_eq:
            return col
        in_eq = any(eq[col] != 0 for eq in conjunct.eqs)
        lowers = sum(1 for v in conjunct.ineqs if v[col] > 0)
        uppers = sum(1 for v in conjunct.ineqs if v[col] < 0)
        if in_eq:
            score = (1, 0)
        elif lowers == 0 or uppers == 0:
            score = (0, 0)
        else:
            exact = all(v[col] == 1 for v in conjunct.ineqs if v[col] > 0) or all(
                v[col] == -1 for v in conjunct.ineqs if v[col] < 0
            )
            score = (2 if exact else 3, lowers * uppers)
        if best_score is None or score < best_score:
            best_score = score
            best_col = col
    return best_col


def is_feasible(conjunct: Conjunct) -> bool:
    """Decide whether the conjunct contains at least one integer point."""
    if _METRICS.enabled:
        _METRICS.inc("presburger.feasibility_checks")
    if conjunct.is_universe():
        return True  # fast path: no constraints, every point qualifies
    normalized = normalize(conjunct)
    if normalized is None:
        return False
    conjunct = normalized
    if conjunct.is_universe():
        return True
    if conjunct.const_col == 0:
        return all(v[-1] == 0 for v in conjunct.eqs) and all(v[-1] >= 0 for v in conjunct.ineqs)
    col = _choose_elimination_col(conjunct)
    return any(is_feasible(piece) for piece in eliminate_col(conjunct, col))


# --------------------------------------------------------------------------- #
# Simplification
# --------------------------------------------------------------------------- #
def _scaled_substitution(vec: Vector, eq: Vector, col: int) -> Vector:
    """Cancel column *col* of *vec* using equality *eq* (any non-zero coefficient).

    The result is ``|eq[col]| * vec  -  vec[col] * sign(eq[col]) * eq`` which
    has a zero coefficient in *col*.  Because *eq* equals zero and the scale
    factor is positive, the transformation is exact for both equalities and
    inequalities.
    """
    c = eq[col]
    a = vec[col]
    scale = abs(c)
    sign = 1 if c > 0 else -1
    return tuple(scale * vec[j] - a * sign * eq[j] for j in range(len(vec)))


def simplify(conjunct: Conjunct) -> Optional[Conjunct]:
    """Normalise and canonicalise the existential variables of a conjunct.

    * existential columns that do not occur in any constraint are dropped;
    * existential columns with a unit coefficient in some equality are
      substituted away;
    * remaining existential columns that occur in an equality are rewritten
      into canonical "div form": they occur *only* in their defining equality
      (inequalities and other equalities are rewritten through a scaled
      substitution), which is the form :func:`complement` understands.

    Returns ``None`` for syntactically infeasible conjuncts.
    """
    current = normalize(conjunct)
    if current is None:
        return None
    changed = True
    while changed:
        changed = False
        for div_index in range(current.n_div - 1, -1, -1):
            col = current.n_vars + div_index
            if not current.involves_col(col):
                current = current.drop_col(col)
                changed = True
                break
            unit = None
            for i, eq in enumerate(current.eqs):
                if abs(eq[col]) == 1:
                    unit = (i, eq)
                    break
            if unit is not None:
                index, eq = unit
                if _kernel.FLAT:
                    remaining = [vec for j, vec in enumerate(current.eqs) if j != index]
                    n_vars, n_div = _dropped_dims(current, col)
                    reduced = Conjunct._make(
                        n_vars,
                        n_div,
                        tuple(_kernel.substitute_drop(remaining, eq, col)),
                        tuple(_kernel.substitute_drop(current.ineqs, eq, col)),
                    )
                else:
                    new_eqs = [
                        _apply_substitution(vec, eq, col)
                        for j, vec in enumerate(current.eqs)
                        if j != index
                    ]
                    new_ineqs = [
                        _apply_substitution(vec, eq, col) for vec in current.ineqs
                    ]
                    reduced = Conjunct(
                        current.n_vars, current.n_div, new_eqs, new_ineqs
                    ).drop_col(col)
                renorm = normalize(reduced)
                if renorm is None:
                    return None
                current = renorm
                changed = True
                break

    # Canonical div form: each remaining existential that is defined by an
    # equality should occur nowhere else.
    for _ in range(32):
        rewritten = False
        for div_index in range(current.n_div):
            col = current.n_vars + div_index
            eqs_with = [(i, eq) for i, eq in enumerate(current.eqs) if eq[col] != 0]
            if not eqs_with:
                continue
            extra_eqs = len(eqs_with) > 1
            in_ineqs = any(vec[col] != 0 for vec in current.ineqs)
            if not extra_eqs and not in_ineqs:
                continue
            def_index, def_eq = min(eqs_with, key=lambda item: abs(item[1][col]))
            new_eqs: List[Vector] = []
            for i, eq in enumerate(current.eqs):
                if i == def_index or eq[col] == 0:
                    new_eqs.append(eq)
                else:
                    new_eqs.append(_scaled_substitution(eq, def_eq, col))
            new_ineqs = [
                vec if vec[col] == 0 else _scaled_substitution(vec, def_eq, col)
                for vec in current.ineqs
            ]
            candidate = normalize(_build(current.n_vars, current.n_div, new_eqs, new_ineqs))
            if candidate is None:
                return None
            current = candidate
            rewritten = True
            break
        if not rewritten:
            break

    return _dedupe_divisibility(current)


def _dedupe_divisibility(conjunct: Conjunct) -> Conjunct:
    """Drop existential columns that express a divisibility already present.

    Compositions and repeated domain restrictions re-introduce identical
    constraints such as ``exists e: w = 2e`` with fresh existential columns;
    without deduplication the conjuncts grow without bound and every
    subsequent operation slows down dramatically.
    """
    if conjunct.n_div == 0:
        return conjunct
    seen: Dict[Tuple, int] = {}
    drop_cols: List[int] = []
    drop_eqs: PySet = set()
    for div_index in range(conjunct.n_div):
        col = conjunct.n_vars + div_index
        eq_hits = [(i, eq) for i, eq in enumerate(conjunct.eqs) if eq[col] != 0]
        if len(eq_hits) != 1:
            continue
        if any(vec[col] != 0 for vec in conjunct.ineqs):
            continue
        index, eq = eq_hits[0]
        other_div_coeffs = [
            eq[c] for c in range(conjunct.n_vars, conjunct.const_col) if c != col
        ]
        if any(other_div_coeffs):
            continue
        modulus = abs(eq[col])
        signature_vec = tuple(eq[: conjunct.n_vars]) + (eq[-1],)
        for value in signature_vec:
            if value != 0:
                if value < 0:
                    signature_vec = tuple(-v for v in signature_vec)
                break
        signature = (modulus, signature_vec[:-1], signature_vec[-1] % modulus if modulus else 0)
        if signature in seen:
            drop_eqs.add(index)
            drop_cols.append(col)
        else:
            seen[signature] = index
    if not drop_cols:
        return conjunct
    new_eqs = [eq for i, eq in enumerate(conjunct.eqs) if i not in drop_eqs]
    result = Conjunct(conjunct.n_vars, conjunct.n_div, new_eqs, conjunct.ineqs)
    for col in sorted(drop_cols, reverse=True):
        result = result.drop_col(col)
    # This is the last stop before simplified conjuncts are stored into a
    # Set/Map, and drop_col produced fresh row tuples: re-intern them so the
    # hash-consing invariant holds for everything a Set can contain.
    return _intern_rows(result)


# --------------------------------------------------------------------------- #
# Complement
# --------------------------------------------------------------------------- #
def conjunct_intersect(first: Conjunct, second: Conjunct) -> Conjunct:
    """Intersection of two conjuncts over the same public dimensions."""
    if first.n_vars != second.n_vars:
        raise ValueError("conjuncts have different public arity")
    widened_first = first.add_divs(second.n_div)
    shift = first.n_div

    def relocate(vec: Vector) -> Vector:
        public = vec[: second.n_vars]
        divs = vec[second.n_vars : second.n_vars + second.n_div]
        constant = vec[-1]
        return public + (0,) * shift + divs + (constant,)

    return widened_first.with_constraints(
        eqs=[relocate(v) for v in second.eqs],
        ineqs=[relocate(v) for v in second.ineqs],
    )


def _strip_div_columns(vec: Vector, n_vars: int, n_div: int) -> Vector:
    """Drop the existential columns of a vector that does not use them."""
    return vec[:n_vars] + (vec[-1],)


def complement(conjunct: Conjunct, _depth: int = 0) -> List[Conjunct]:
    """The complement of a conjunct within the universe of its public space.

    Existential variables must either be removable by simplification/exact
    projection or appear as pure divisibility constraints
    ``m * e == affine(public dims)``; otherwise
    :class:`UnsupportedOperationError` is raised.  The result is a list of
    conjuncts whose union is the complement.
    """
    if _depth > 24:
        raise UnsupportedOperationError(
            "complement: could not reduce existential variables to divisibility form"
        )
    simplified = simplify(conjunct)
    if simplified is None:
        # Empty conjunct: complement is the universe.
        return [Conjunct.universe(conjunct.n_vars)]
    conjunct = simplified

    if conjunct.n_div:
        # Validate / normalise the remaining existential variables.
        for div_index in range(conjunct.n_div):
            col = conjunct.n_vars + div_index
            eq_hits = [eq for eq in conjunct.eqs if eq[col] != 0]
            ineq_hits = [v for v in conjunct.ineqs if v[col] != 0]
            pure_div = (
                len(eq_hits) == 1
                and not ineq_hits
                and all(
                    eq_hits[0][other] == 0
                    for other in range(conjunct.n_vars, conjunct.const_col)
                    if other != col
                )
            )
            if pure_div:
                continue
            # Try to eliminate this existential exactly and recurse on the
            # resulting union: not(A or B) = not(A) and not(B).
            pieces = eliminate_col(conjunct, col)
            if not pieces:
                return [Conjunct.universe(conjunct.n_vars)]
            result = complement(pieces[0], _depth + 1)
            for piece in pieces[1:]:
                piece_complement = complement(piece, _depth + 1)
                result = [
                    normalize(conjunct_intersect(left, right))
                    for left in result
                    for right in piece_complement
                ]
                result = [c for c in result if c is not None and is_feasible(c)]
            return result

    plain_eqs: List[Vector] = []
    div_constraints: List[Tuple[int, Vector]] = []
    for eq in conjunct.eqs:
        div_part = eq[conjunct.n_vars : conjunct.const_col]
        nonzero = [c for c in div_part if c != 0]
        if not nonzero:
            plain_eqs.append(eq)
        else:
            modulus = abs(nonzero[0])
            div_constraints.append((modulus, eq))
    plain_ineqs = list(conjunct.ineqs)

    n_vars = conjunct.n_vars
    pieces: List[Conjunct] = []

    for vec in plain_ineqs:
        stripped = _strip_div_columns(vec, n_vars, conjunct.n_div)
        pieces.append(Conjunct(n_vars, 0, [], [negate_inequality(stripped)]))

    for vec in plain_eqs:
        stripped = _strip_div_columns(vec, n_vars, conjunct.n_div)
        upper = list(stripped)
        upper[-1] -= 1  # vec >= 1
        lower = negate_inequality(stripped)  # vec <= -1
        pieces.append(Conjunct(n_vars, 0, [], [tuple(upper)]))
        pieces.append(Conjunct(n_vars, 0, [], [lower]))

    for modulus, eq in div_constraints:
        # eq is: affine(public) + (+-m) * e + const == 0, i.e. m | affine + const.
        public_part = eq[:n_vars]
        constant = eq[-1]
        for remainder in range(1, modulus):
            # m | (affine + const - remainder)
            vector = public_part + (-modulus, constant - remainder)
            pieces.append(Conjunct(n_vars, 1, [vector], []))

    if not pieces:
        # The conjunct was the universe; its complement is empty.
        return []
    return pieces
