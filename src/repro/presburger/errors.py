"""Exceptions raised by the Presburger (integer set / relation) library."""


class PresburgerError(Exception):
    """Base class for all errors raised by :mod:`repro.presburger`."""


class SpaceMismatchError(PresburgerError):
    """Raised when two sets/maps with incompatible dimensionality are combined."""


class UnsupportedOperationError(PresburgerError):
    """Raised when an operation falls outside the supported (decidable) fragment.

    The library is exact on the fragment it supports; rather than silently
    approximating, operations that would require capabilities we do not
    implement (e.g. complementing a conjunct whose existential variables are
    not expressible as divisibility constraints) raise this error.
    """


class ParseError(PresburgerError):
    """Raised when the textual set/map notation cannot be parsed."""


class UnboundedSetError(PresburgerError):
    """Raised when point enumeration is requested for an unbounded set."""
