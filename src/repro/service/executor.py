"""Batch execution of verification jobs: cache front, process pool, timeouts.

The executor runs a sequence of :class:`~repro.service.job.VerificationJob`
values and returns one :class:`~repro.service.job.JobResult` per job, in the
input order.  Before any work is dispatched, every job is looked up in the
result cache; only misses are executed — serially for ``workers <= 1`` (no
pickling, easiest to debug) or on a ``ProcessPoolExecutor`` otherwise.

Timeouts are enforced *inside* the executing process (the checker is pure
Python, so there is no portable way to interrupt it from the outside without
killing the worker).  The general mechanism is the signal-free watchdog
shipped with the verification server: a timer thread that raises
:class:`JobTimeoutError` into the executing thread at the next bytecode
boundary, so any number of threads can carry independent budgets.  The main
thread of a POSIX process keeps the classic ``SIGALRM`` fast path — same
semantics, delivered by the interpreter's signal machinery instead of a
watchdog thread (see :func:`call_with_timeout` for the dispatch).  A job
that exceeds its budget yields a ``timeout`` result instead of poisoning
the pool.  Any exception a job raises is captured into an ``error`` result
with its traceback — one bad program never aborts the batch.  Two alarms
deliberately pierce that capture as ``BaseException``: the timeout itself,
and :class:`~repro.solvers.BackendDisagreement` from a cross-checked run,
which is recorded as an ``error`` result carrying the serialized query.

Each worker process keeps its own Presburger operation cache
(:mod:`repro.presburger.opcache`) warm across the jobs it executes; the
per-job share of that activity travels back inside the job's
:class:`~repro.checker.result.CheckStats` and is aggregated by
:mod:`repro.service.report`.
"""

from __future__ import annotations

import ctypes
import signal
import threading
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Callable, Iterable, List, Optional, Sequence

from ..solvers.base import BackendDisagreement
from ..telemetry import METRICS as _METRICS, TRACER as _TRACER
from .cache import ResultCache
from .fingerprint import job_fingerprint
from .job import JobResult, JobStatus, VerificationJob

__all__ = ["BatchExecutor", "JobTimeoutError", "call_with_timeout", "execute_job"]


class JobTimeoutError(BaseException):
    # BaseException, not Exception: the checker (e.g. the presburger closure
    # heuristics) uses broad `except Exception` internally, which must not
    # swallow the timeout and let a job run past its budget.
    pass


# Alias from the SIGALRM-only era, when the timeout type was private to
# this module; kept for callers that imported the old spelling.
_JobTimeout = JobTimeoutError


def _alarm_handler(signum, frame):
    raise JobTimeoutError()


def _call_with_alarm(fn: Callable[[], Any], timeout: float):
    """The main-thread POSIX path: an ``ITIMER_REAL`` alarm interrupts *fn*."""
    previous = signal.signal(signal.SIGALRM, _alarm_handler)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    # The result is captured into a list so that an alarm delivered in the
    # narrow window after fn() returns (but before the timer is cleared)
    # does not discard a verdict that was actually computed in time.
    outcome = []
    try:
        try:
            outcome.append(fn())
        except JobTimeoutError:
            pass
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
    if outcome:
        return outcome[0]
    raise JobTimeoutError()


def _call_with_watchdog(fn: Callable[[], Any], timeout: float):
    """The signal-free path: a watchdog thread raises into the caller.

    ``SIGALRM`` is main-thread-only (and POSIX-only), so worker threads — the
    verification server's execution path — use a :class:`threading.Timer`
    that delivers :class:`JobTimeoutError` into the executing thread with
    ``PyThreadState_SetAsyncExc``.  Like the alarm, the exception surfaces at
    the next bytecode boundary, which is exactly the granularity the pure-
    Python checker needs; unlike the alarm, any number of threads can carry
    independent budgets concurrently.
    """
    target = threading.get_ident()
    fired = threading.Event()

    def interrupt() -> None:
        fired.set()
        ctypes.pythonapi.PyThreadState_SetAsyncExc(
            ctypes.c_ulong(target), ctypes.py_object(JobTimeoutError)
        )

    timer = threading.Timer(timeout, interrupt)
    timer.daemon = True
    outcome = []
    timer.start()
    try:
        try:
            try:
                outcome.append(fn())
            except JobTimeoutError:
                pass
        finally:
            timer.cancel()
            if fired.is_set():
                # The async exception may still be pending delivery (the timer
                # fired after fn() returned); clearing it stops it surfacing
                # at some arbitrary later bytecode of this thread.
                ctypes.pythonapi.PyThreadState_SetAsyncExc(ctypes.c_ulong(target), None)
    except JobTimeoutError:
        # Delivered in the cleanup window above; the computed result (if any)
        # still wins, exactly like the alarm path's list capture.
        pass
    if outcome:
        return outcome[0]
    raise JobTimeoutError()


def call_with_timeout(fn: Callable[[], Any], timeout: Optional[float]):
    """Call ``fn()``, raising :class:`JobTimeoutError` past *timeout* seconds.

    Dispatches to ``SIGALRM`` on the main thread of a POSIX process and to
    the signal-free watchdog everywhere else, so callers get an enforced
    budget regardless of which thread (or platform) they run on.  ``None``
    or a non-positive *timeout* runs *fn* without a budget.
    """
    if timeout is None or timeout <= 0:
        return fn()
    if hasattr(signal, "SIGALRM") and threading.current_thread() is threading.main_thread():
        return _call_with_alarm(fn, timeout)
    return _call_with_watchdog(fn, timeout)


def _run_with_timeout(job: VerificationJob, timeout: Optional[float]):
    """Run the job's check under :func:`call_with_timeout`."""
    return call_with_timeout(job.run, timeout)


def _worker_init(collect_telemetry: bool, persist_dir: Optional[str] = None) -> None:
    """Pool-worker initializer: start every worker from a clean tracer.

    With the ``fork`` start method a worker inherits the parent's record
    buffer (and its ``pid`` stamp); shipping those inherited spans home again
    would duplicate them, so the buffers are cleared — and re-stamped with
    the worker's own pid — before the first job runs.

    The worker also (re-)attaches the persistent op-cache: with ``fork`` the
    inherited sqlite connection must not be reused, and with ``spawn`` an
    explicitly configured *persist_dir* is not inherited at all.  Every
    worker then shares the batch's warm on-disk state through its own
    connection (WAL keeps concurrent workers safe).
    """
    _TRACER.clear()
    _METRICS.clear()
    _TRACER.enabled = collect_telemetry
    _METRICS.enabled = collect_telemetry
    from ..presburger import opcache

    if persist_dir and opcache.persistent_store() is None:
        opcache.attach_persistent(persist_dir)
    else:
        opcache.reattach_persistent()


def execute_job(
    job: VerificationJob,
    timeout: Optional[float] = None,
    fingerprint: str = "",
    collect_telemetry: bool = False,
    run: Optional[Callable[[], Any]] = None,
) -> JobResult:
    """Execute one job in the current process, capturing failure and timeout.

    *timeout* is the executor-wide default budget; a job whose
    :class:`~repro.verifier.options.CheckOptions` carry their own ``timeout``
    overrides it.  With *collect_telemetry* (set by the pool path of the
    executor while tracing is on in the parent) the job's spans and metric
    increments are drained into ``JobResult.telemetry`` for the parent
    process to ingest.  *run* replaces ``job.run`` as the zero-argument check
    body — the verification server passes a warm-session closure here so the
    status/timeout/error capture stays identical between the cold and the
    warm paths.
    """
    if job.options is not None and job.options.timeout is not None:
        timeout = job.options.timeout
    if not (collect_telemetry or _TRACER.enabled):
        return _execute_job_body(job, timeout, fingerprint, run)
    mark = _TRACER.mark()
    with _TRACER.span("service.job", "service", job=job.name) as span:
        outcome = _execute_job_body(job, timeout, fingerprint, run)
        span.set(status=outcome.status)
    if collect_telemetry:
        # Ship this job's share and reset, so the worker's buffers do not
        # grow across jobs and each job carries exactly its own increments.
        outcome.telemetry = {
            "spans": [record.to_dict() for record in _TRACER.drain_since(mark)],
            "metrics": _METRICS.snapshot(),
        }
        _METRICS.clear()
    return outcome


def _execute_job_body(
    job: VerificationJob,
    timeout: Optional[float],
    fingerprint: str,
    run: Optional[Callable[[], Any]] = None,
) -> JobResult:
    started = time.perf_counter()
    try:
        result = call_with_timeout(run if run is not None else job.run, timeout)
    except JobTimeoutError:
        return JobResult(
            name=job.name,
            status=JobStatus.TIMEOUT,
            expected_equivalent=job.expected_equivalent,
            elapsed_seconds=time.perf_counter() - started,
            fingerprint=fingerprint,
            error=f"job exceeded the {timeout:g} s budget",
            metadata=dict(job.metadata),
        )
    except BackendDisagreement as error:
        # A cross-check divergence is a BaseException so the checker's broad
        # recovery paths cannot swallow it; it surfaces here as a hard ERROR
        # with the serialized query attached for offline replay
        # (repro.solvers.replay_query).
        return JobResult(
            name=job.name,
            status=JobStatus.ERROR,
            expected_equivalent=job.expected_equivalent,
            elapsed_seconds=time.perf_counter() - started,
            fingerprint=fingerprint,
            error=f"BackendDisagreement: {error}",
            metadata={**job.metadata, "backend_disagreement": error.to_dict()},
        )
    except Exception as error:
        return JobResult(
            name=job.name,
            status=JobStatus.ERROR,
            expected_equivalent=job.expected_equivalent,
            elapsed_seconds=time.perf_counter() - started,
            fingerprint=fingerprint,
            error=f"{type(error).__name__}: {error}\n{traceback.format_exc()}",
            metadata=dict(job.metadata),
        )
    return JobResult(
        name=job.name,
        status=JobStatus.OK,
        equivalent=result.equivalent,
        expected_equivalent=job.expected_equivalent,
        elapsed_seconds=time.perf_counter() - started,
        fingerprint=fingerprint,
        result=result,
        metadata=dict(job.metadata),
    )


class BatchExecutor:
    """Runs batches of jobs against an optional result cache.

    Parameters
    ----------
    cache:
        The verdict cache to consult and fill; ``None`` disables caching.
    workers:
        ``<= 1`` runs jobs serially in this process; larger values dispatch
        cache misses to a ``ProcessPoolExecutor`` of that many workers.
    timeout:
        Per-job wall-clock budget in seconds (``None``: unlimited).
    persist_dir:
        Directory of the shared persistent Presburger op-cache
        (:mod:`repro.presburger.persist`); attached in this process and in
        every pool worker, so the whole batch reads and fills one warm
        store.  ``None`` keeps whatever the process already has attached.
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        workers: int = 1,
        timeout: Optional[float] = None,
        persist_dir: Optional[str] = None,
    ):
        self.cache = cache
        self.workers = max(1, int(workers))
        self.timeout = timeout
        self.persist_dir = persist_dir
        if persist_dir:
            from ..presburger import opcache

            opcache.attach_persistent(persist_dir)
        # index of an executing job -> indices of its in-batch duplicates
        # (same fingerprint); rebuilt by every run() call.
        self._followers: dict = {}

    # ------------------------------------------------------------------ #
    def run(
        self,
        jobs: Iterable[VerificationJob],
        progress: Optional[Callable[[JobResult], None]] = None,
    ) -> List[JobResult]:
        """Run *jobs*, returning one result per job in the input order."""
        jobs = list(jobs)
        results: List[Optional[JobResult]] = [None] * len(jobs)
        pending: List[int] = []
        fingerprints: dict = {}

        for index, job in enumerate(jobs):
            fingerprint = fingerprints[index] = job_fingerprint(job)
            cached = self.cache.get(fingerprint) if self.cache is not None else None
            if cached is not None:
                outcome = JobResult(
                    name=job.name,
                    status=JobStatus.OK,
                    equivalent=cached.equivalent,
                    expected_equivalent=job.expected_equivalent,
                    elapsed_seconds=0.0,
                    cache_hit=True,
                    fingerprint=fingerprint,
                    result=cached,
                    metadata=dict(job.metadata),
                )
                results[index] = outcome
                if progress is not None:
                    progress(outcome)
            else:
                pending.append(index)

        # Deduplicate identical jobs within the batch: only the first index
        # per key is executed; the rest are fanned out from its result, so
        # duplicate pairs cost one check instead of many.  The key includes
        # the per-job timeout on top of the fingerprint (which excludes it):
        # a TIMEOUT outcome is budget-dependent, so it must never fan out to
        # a duplicate running under a different budget.
        leader_of: dict = {}
        self._followers = {}
        leaders: List[int] = []
        for index in pending:
            job = jobs[index]
            job_timeout = job.options.timeout if job.options is not None else None
            effective_timeout = job_timeout if job_timeout is not None else self.timeout
            key = (fingerprints[index], effective_timeout)
            if key in leader_of:
                self._followers.setdefault(leader_of[key], []).append(index)
            else:
                leader_of[key] = index
                leaders.append(index)

        if leaders:
            if self.workers <= 1 or len(leaders) == 1:
                for index in leaders:
                    outcome = execute_job(jobs[index], self.timeout, fingerprints[index])
                    self._record(index, outcome, jobs, results, progress)
            else:
                self._run_pool(jobs, leaders, fingerprints, results, progress)

        return [outcome for outcome in results if outcome is not None]

    # ------------------------------------------------------------------ #
    def _record(
        self,
        index: int,
        outcome: JobResult,
        jobs: Sequence[VerificationJob],
        results: List[Optional[JobResult]],
        progress: Optional[Callable[[JobResult], None]],
    ) -> None:
        results[index] = outcome
        if outcome.telemetry is not None:
            _TRACER.ingest(outcome.telemetry.get("spans", ()))
            _METRICS.merge(outcome.telemetry.get("metrics", ()))
            outcome.telemetry = None
        if (
            self.cache is not None
            and outcome.status == JobStatus.OK
            and outcome.result is not None
            and not outcome.cache_hit
        ):
            try:
                self.cache.put(outcome.fingerprint, outcome.result)
            except OSError:
                # Caching is an optimization: a full disk or read-only cache
                # directory must not discard the batch's computed verdicts.
                self.cache.stats.store_errors += 1
        if progress is not None:
            progress(outcome)
        # Fan the leader's outcome out to in-batch duplicates (same
        # fingerprint): they inherit the verdict (or failure) at zero cost.
        # Not marked cache_hit — dedup reuse works with caching disabled and
        # must not inflate the reported hit rate.
        for follower_index in self._followers.pop(index, ()):
            job = jobs[follower_index]
            derived = JobResult(
                name=job.name,
                status=outcome.status,
                equivalent=outcome.equivalent,
                expected_equivalent=job.expected_equivalent,
                elapsed_seconds=0.0,
                cache_hit=False,
                fingerprint=outcome.fingerprint,
                result=outcome.result,
                error=outcome.error,
                metadata={**job.metadata, "deduplicated": True},
            )
            results[follower_index] = derived
            if progress is not None:
                progress(derived)

    def _run_pool(
        self,
        jobs: Sequence[VerificationJob],
        pending: Sequence[int],
        fingerprints: dict,
        results: List[Optional[JobResult]],
        progress: Optional[Callable[[JobResult], None]],
    ) -> None:
        collect = _TRACER.enabled or _METRICS.enabled
        with ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_worker_init,
            initargs=(collect, self.persist_dir),
        ) as pool:
            future_index = {
                pool.submit(
                    execute_job, jobs[index], self.timeout, fingerprints[index], collect
                ): index
                for index in pending
            }
            not_done = set(future_index)
            while not_done:
                done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for future in done:
                    index = future_index[future]
                    try:
                        outcome = future.result()
                    except Exception as error:  # e.g. BrokenProcessPool
                        job = jobs[index]
                        outcome = JobResult(
                            name=job.name,
                            status=JobStatus.ERROR,
                            expected_equivalent=job.expected_equivalent,
                            fingerprint=fingerprints[index],
                            error=f"{type(error).__name__}: {error}",
                            metadata=dict(job.metadata),
                        )
                    self._record(index, outcome, jobs, results, progress)
