"""Content-addressed fingerprints of verification jobs.

Two jobs that describe the same check must hash to the same fingerprint even
if their source text differs in whitespace, comments or ``#define`` folding.
The fingerprint therefore hashes the *normalised* program pair — the source
re-printed from its parsed AST, which is canonical up to these details — plus
every checker option that can influence the verdict, under a format version
that invalidates all cached verdicts whenever the semantics of the checker or
of the fingerprint itself change.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict

from ..lang import parse_program
from ..verifier import normalized_program_text
from .job import VerificationJob

__all__ = ["CACHE_FORMAT_VERSION", "normalize_source", "job_fingerprint"]

#: Bump to invalidate every previously cached verdict.
#: Version 2: checker options are hashed through
#: :meth:`repro.verifier.options.CheckOptions.fingerprint` (the same digest
#: every layer shares) instead of an ad-hoc re-spelling of the job fields.
CACHE_FORMAT_VERSION = 2


def normalize_source(source: str) -> str:
    """Canonicalise mini-C source text (parse → pretty-print).

    Unparseable text is returned stripped: the job will fail identically on
    every run, so caching its failure under the raw text is still sound.
    """
    try:
        return normalized_program_text(parse_program(source))
    except Exception:
        return source.strip()


def _canonical_payload(job: VerificationJob) -> Dict[str, Any]:
    return {
        "format_version": CACHE_FORMAT_VERSION,
        "original": normalize_source(job.original_source),
        "transformed": normalize_source(job.transformed_source),
        # Every verdict-relevant checker option (method, operator
        # declarations, focused outputs, correspondences, tabling,
        # preconditions) enters through the shared options digest, so
        # verdicts computed under different options can never alias.
        "options": job.options.fingerprint(),
    }


def job_fingerprint(job: VerificationJob) -> str:
    """The SHA-256 fingerprint (hex) identifying this job's verdict."""
    payload = json.dumps(_canonical_payload(job), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
