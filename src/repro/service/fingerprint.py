"""Content-addressed fingerprints of verification jobs.

Two jobs that describe the same check must hash to the same fingerprint even
if their source text differs in whitespace, comments or ``#define`` folding.
The fingerprint therefore hashes the *normalised* program pair — the source
re-printed from its parsed AST, which is canonical up to these details — plus
every checker option that can influence the verdict, under a format version
that invalidates all cached verdicts whenever the semantics of the checker or
of the fingerprint itself change.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict

from ..lang import parse_program, program_to_text
from .job import VerificationJob

__all__ = ["CACHE_FORMAT_VERSION", "normalize_source", "job_fingerprint"]

#: Bump to invalidate every previously cached verdict.
CACHE_FORMAT_VERSION = 1


def normalize_source(source: str) -> str:
    """Canonicalise mini-C source text (parse → pretty-print).

    Unparseable text is returned stripped: the job will fail identically on
    every run, so caching its failure under the raw text is still sound.
    """
    try:
        text = program_to_text(parse_program(source))
    except Exception:
        return source.strip()
    # The parser folds #define constants into the body, so the re-emitted
    # preamble is inert decoration; dropping it makes the canonical form
    # independent of whether sizes were spelled as macros or literals.
    return "".join(
        line for line in text.splitlines(keepends=True) if not line.startswith("#define")
    ).lstrip("\n")


def _canonical_payload(job: VerificationJob) -> Dict[str, Any]:
    return {
        "format_version": CACHE_FORMAT_VERSION,
        "original": normalize_source(job.original_source),
        "transformed": normalize_source(job.transformed_source),
        "method": job.method,
        "outputs": list(job.outputs) if job.outputs is not None else None,
        "correspondences": sorted(list(pair) for pair in job.correspondences),
        "operators": sorted([op, "".join(sorted(props.upper()))] for op, props in job.operators),
        "tabling": job.tabling,
        "check_preconditions": job.check_preconditions,
    }


def job_fingerprint(job: VerificationJob) -> str:
    """The SHA-256 fingerprint (hex) identifying this job's verdict."""
    payload = json.dumps(_canonical_payload(job), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
