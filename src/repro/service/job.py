"""The job model of the batch verification service.

A :class:`VerificationJob` is a self-contained, picklable description of one
equivalence check: the two programs as mini-C source text plus a
:class:`~repro.verifier.options.CheckOptions` describing every checker
option that can influence the verdict.  Carrying source text (rather than
parsed :class:`~repro.lang.ast.Program` values) keeps jobs cheap to ship
across process boundaries and trivially serialisable into job files.

Jobs can be constructed either with an ``options`` value directly or with
the historical flat keyword arguments (``method``, ``outputs``,
``correspondences``, ``operators``, ``tabling``, ``check_preconditions``,
``timeout``); the two spellings are kept in sync, and the flat form remains
the JSON job-file schema.  ``options`` is authoritative: :meth:`run`,
:func:`~repro.service.fingerprint.job_fingerprint` and the executor all read
it.

A :class:`JobResult` is the service-level outcome of running (or recalling
from cache) one job: the checker verdict plus execution status, wall time,
cache provenance and — when the corpus runner attached an expectation — the
comparison against the expected verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..checker import EquivalenceResult, OperatorRegistry, default_registry
from ..verifier import CheckOptions, Verifier

__all__ = ["JobStatus", "VerificationJob", "JobResult"]


class JobStatus:
    """Execution status of one job (independent of the verdict)."""

    OK = "ok"
    ERROR = "error"
    TIMEOUT = "timeout"

    ALL = (OK, ERROR, TIMEOUT)


def _as_pairs(entries) -> Tuple[Tuple[str, str], ...]:
    return tuple((str(a), str(b)) for a, b in entries)


def _operators_delta(registry: OperatorRegistry) -> Tuple[Tuple[str, str], ...]:
    """Express *registry* as incremental declarations over the default registry.

    A declaration with empty props overwrites (removes) a default law, so the
    delta form is complete: any registry round-trips through it.
    """
    default = default_registry()
    names = {op for op, _ in registry.items()} | {op for op, _ in default.items()}
    delta = []
    for op in sorted(names):
        props = registry.get(op)
        if props != default.get(op):
            delta.append(
                (op, ("A" if props.associative else "") + ("C" if props.commutative else ""))
            )
    return tuple(delta)


@dataclass
class VerificationJob:
    """One (original, transformed) pair plus the checker options to use.

    ``operators`` declares extra operator properties as ``(name, props)``
    pairs where ``props`` is a string containing ``"A"`` (associative) and/or
    ``"C"`` (commutative), applied on top of the default registry — the
    historical picklable spelling.  Passing ``options`` instead makes that
    :class:`CheckOptions` authoritative and refreshes the flat fields from
    it.  ``timeout`` is this job's wall-clock budget in seconds; it overrides
    the executor-wide budget when set.
    """

    name: str
    original_source: str
    transformed_source: str
    method: str = "extended"
    outputs: Optional[Tuple[str, ...]] = None
    correspondences: Tuple[Tuple[str, str], ...] = ()
    operators: Tuple[Tuple[str, str], ...] = ()
    tabling: bool = True
    check_preconditions: bool = True
    expected_equivalent: Optional[bool] = None
    metadata: Dict[str, Any] = field(default_factory=dict)
    timeout: Optional[float] = None
    backend: str = "omega"
    smt_solver: Optional[str] = None
    options: Optional[CheckOptions] = None

    def __post_init__(self) -> None:
        if self.options is None:
            if self.outputs is not None:
                self.outputs = tuple(self.outputs)
            self.correspondences = _as_pairs(self.correspondences)
            self.operators = _as_pairs(self.operators)
            registry = default_registry()
            for op, props in self.operators:
                props = props.upper()
                registry.declare(op, associative="A" in props, commutative="C" in props)
            self.options = CheckOptions.from_registry(
                registry,
                method=self.method,
                outputs=self.outputs,
                correspondences=self.correspondences,
                tabling=self.tabling,
                check_preconditions=self.check_preconditions,
                timeout=self.timeout,
                backend=self.backend,
                smt_solver=self.smt_solver,
            )
        else:
            # ``options`` wins; mirror it into the flat (legacy) views so the
            # JSON job-file schema and older readers stay faithful.
            self.method = self.options.method
            self.outputs = self.options.outputs
            self.correspondences = self.options.correspondences
            self.operators = _operators_delta(self.options.registry())
            self.tabling = self.options.tabling
            self.check_preconditions = self.options.check_preconditions
            self.timeout = self.options.timeout
            self.backend = self.options.backend
            self.smt_solver = self.options.smt_solver

    def registry(self) -> OperatorRegistry:
        """The operator registry implied by this job's options."""
        return self.options.registry()

    def run(self) -> EquivalenceResult:
        """Run the equivalence check described by this job (in-process)."""
        return Verifier().check(
            self.original_source, self.transformed_source, options=self.options
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "original_source": self.original_source,
            "transformed_source": self.transformed_source,
            "method": self.method,
            "outputs": list(self.outputs) if self.outputs is not None else None,
            "correspondences": [list(pair) for pair in self.correspondences],
            "operators": [list(pair) for pair in self.operators],
            "tabling": self.tabling,
            "check_preconditions": self.check_preconditions,
            "timeout": self.timeout,
            "backend": self.backend,
            "smt_solver": self.smt_solver,
            "expected_equivalent": self.expected_equivalent,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "VerificationJob":
        """Build a job from its JSON form.

        The flat (legacy) keys remain the canonical schema; a job file entry
        may alternatively carry an ``"options"`` object in the
        :meth:`CheckOptions.to_dict` shape, which then takes precedence over
        the flat option keys.
        """
        common = dict(
            name=data["name"],
            original_source=data["original_source"],
            transformed_source=data["transformed_source"],
            expected_equivalent=data.get("expected_equivalent"),
            metadata=dict(data.get("metadata", {})),
        )
        if data.get("options") is not None:
            return cls(options=CheckOptions.from_dict(data["options"]), **common)
        outputs = data.get("outputs")
        return cls(
            method=data.get("method", "extended"),
            outputs=tuple(outputs) if outputs is not None else None,
            correspondences=_as_pairs(data.get("correspondences", ())),
            operators=_as_pairs(data.get("operators", ())),
            tabling=data.get("tabling", True),
            check_preconditions=data.get("check_preconditions", True),
            timeout=data.get("timeout"),
            backend=data.get("backend", "omega"),
            smt_solver=data.get("smt_solver"),
            **common,
        )


@dataclass
class JobResult:
    """The service-level outcome of one job."""

    name: str
    status: str
    equivalent: Optional[bool] = None
    expected_equivalent: Optional[bool] = None
    elapsed_seconds: float = 0.0
    cache_hit: bool = False
    fingerprint: str = ""
    result: Optional[EquivalenceResult] = None
    error: Optional[str] = None
    metadata: Dict[str, Any] = field(default_factory=dict)
    # Spans/metrics drained by the worker that executed the job, shipped home
    # for the parent tracer to ingest.  Transient: the executor consumes (and
    # clears) it, and it never appears in ``to_dict`` / the JSONL reports.
    telemetry: Optional[Dict[str, Any]] = None

    @property
    def matches_expectation(self) -> Optional[bool]:
        """Whether the verdict matched the expectation (``None`` when unknown).

        ``None`` means no expectation was attached or the job did not complete.
        """
        if self.expected_equivalent is None or self.status != JobStatus.OK:
            return None
        return self.equivalent == self.expected_equivalent

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "status": self.status,
            "equivalent": self.equivalent,
            "expected_equivalent": self.expected_equivalent,
            "matches_expectation": self.matches_expectation,
            "elapsed_seconds": self.elapsed_seconds,
            "cache_hit": self.cache_hit,
            "fingerprint": self.fingerprint,
            "result": self.result.to_dict() if self.result is not None else None,
            "error": self.error,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobResult":
        result = data.get("result")
        return cls(
            name=data["name"],
            status=data["status"],
            equivalent=data.get("equivalent"),
            expected_equivalent=data.get("expected_equivalent"),
            elapsed_seconds=data.get("elapsed_seconds", 0.0),
            cache_hit=data.get("cache_hit", False),
            fingerprint=data.get("fingerprint", ""),
            result=EquivalenceResult.from_dict(result) if result is not None else None,
            error=data.get("error"),
            metadata=dict(data.get("metadata", {})),
        )
