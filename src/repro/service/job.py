"""The job model of the batch verification service.

A :class:`VerificationJob` is a self-contained, picklable description of one
equivalence check: the two programs as mini-C source text plus every checker
option that can influence the verdict.  Carrying source text (rather than
parsed :class:`~repro.lang.ast.Program` values) keeps jobs cheap to ship
across process boundaries and trivially serialisable into job files.

A :class:`JobResult` is the service-level outcome of running (or recalling
from cache) one job: the checker verdict plus execution status, wall time,
cache provenance and — when the corpus runner attached an expectation — the
comparison against the expected verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..checker import EquivalenceResult, OperatorRegistry, check_equivalence, default_registry

__all__ = ["JobStatus", "VerificationJob", "JobResult"]


class JobStatus:
    """Execution status of one job (independent of the verdict)."""

    OK = "ok"
    ERROR = "error"
    TIMEOUT = "timeout"

    ALL = (OK, ERROR, TIMEOUT)


def _as_pairs(entries) -> Tuple[Tuple[str, str], ...]:
    return tuple((str(a), str(b)) for a, b in entries)


@dataclass
class VerificationJob:
    """One (original, transformed) pair plus the checker options to use.

    ``operators`` declares extra operator properties as ``(name, props)``
    pairs where ``props`` is a string containing ``"A"`` (associative) and/or
    ``"C"`` (commutative) — the picklable equivalent of passing an
    :class:`~repro.checker.properties.OperatorRegistry`.
    """

    name: str
    original_source: str
    transformed_source: str
    method: str = "extended"
    outputs: Optional[Tuple[str, ...]] = None
    correspondences: Tuple[Tuple[str, str], ...] = ()
    operators: Tuple[Tuple[str, str], ...] = ()
    tabling: bool = True
    check_preconditions: bool = True
    expected_equivalent: Optional[bool] = None
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.outputs is not None:
            self.outputs = tuple(self.outputs)
        self.correspondences = _as_pairs(self.correspondences)
        self.operators = _as_pairs(self.operators)

    def registry(self) -> OperatorRegistry:
        """The operator registry implied by the ``operators`` declarations."""
        registry = default_registry()
        for op, props in self.operators:
            props = props.upper()
            registry.declare(op, associative="A" in props, commutative="C" in props)
        return registry

    def run(self) -> EquivalenceResult:
        """Run the equivalence check described by this job (in-process)."""
        return check_equivalence(
            self.original_source,
            self.transformed_source,
            method=self.method,
            registry=self.registry(),
            outputs=self.outputs,
            correspondences=self.correspondences,
            tabling=self.tabling,
            check_preconditions=self.check_preconditions,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "original_source": self.original_source,
            "transformed_source": self.transformed_source,
            "method": self.method,
            "outputs": list(self.outputs) if self.outputs is not None else None,
            "correspondences": [list(pair) for pair in self.correspondences],
            "operators": [list(pair) for pair in self.operators],
            "tabling": self.tabling,
            "check_preconditions": self.check_preconditions,
            "expected_equivalent": self.expected_equivalent,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "VerificationJob":
        outputs = data.get("outputs")
        return cls(
            name=data["name"],
            original_source=data["original_source"],
            transformed_source=data["transformed_source"],
            method=data.get("method", "extended"),
            outputs=tuple(outputs) if outputs is not None else None,
            correspondences=_as_pairs(data.get("correspondences", ())),
            operators=_as_pairs(data.get("operators", ())),
            tabling=data.get("tabling", True),
            check_preconditions=data.get("check_preconditions", True),
            expected_equivalent=data.get("expected_equivalent"),
            metadata=dict(data.get("metadata", {})),
        )


@dataclass
class JobResult:
    """The service-level outcome of one job."""

    name: str
    status: str
    equivalent: Optional[bool] = None
    expected_equivalent: Optional[bool] = None
    elapsed_seconds: float = 0.0
    cache_hit: bool = False
    fingerprint: str = ""
    result: Optional[EquivalenceResult] = None
    error: Optional[str] = None
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def matches_expectation(self) -> Optional[bool]:
        """Whether the verdict matched the expectation (``None`` when unknown).

        ``None`` means no expectation was attached or the job did not complete.
        """
        if self.expected_equivalent is None or self.status != JobStatus.OK:
            return None
        return self.equivalent == self.expected_equivalent

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "status": self.status,
            "equivalent": self.equivalent,
            "expected_equivalent": self.expected_equivalent,
            "matches_expectation": self.matches_expectation,
            "elapsed_seconds": self.elapsed_seconds,
            "cache_hit": self.cache_hit,
            "fingerprint": self.fingerprint,
            "result": self.result.to_dict() if self.result is not None else None,
            "error": self.error,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobResult":
        result = data.get("result")
        return cls(
            name=data["name"],
            status=data["status"],
            equivalent=data.get("equivalent"),
            expected_equivalent=data.get("expected_equivalent"),
            elapsed_seconds=data.get("elapsed_seconds", 0.0),
            cache_hit=data.get("cache_hit", False),
            fingerprint=data.get("fingerprint", ""),
            result=EquivalenceResult.from_dict(result) if result is not None else None,
            error=data.get("error"),
            metadata=dict(data.get("metadata", {})),
        )
