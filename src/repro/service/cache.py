"""Content-addressed result cache: JSON files on disk with an LRU front.

Verdicts are keyed by the job fingerprint (:mod:`repro.service.fingerprint`).
The disk layout shards entries by the first two hex digits of the fingerprint
(``<dir>/ab/abcdef….json``) so directories stay small even with hundreds of
thousands of entries.  Writes are atomic (temp file + ``os.replace``) and a
corrupt or stale entry is treated as a miss and deleted, never propagated.

This is the *verdict* cache (whole checks skipped across service runs); it
is distinct from the in-process Presburger *operation* cache of
:mod:`repro.presburger.opcache`, which accelerates the set/relation algebra
inside a running check.  The two compound: a batch first consults this
cache, and only the misses exercise (and warm) the operation cache.

An in-memory LRU front (bounded, default 1024 entries) makes repeated hits
within one batch run free of any filesystem traffic.  The cache can also run
purely in memory (``directory=None``) for ephemeral runs and tests.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..checker import EquivalenceResult
from .fingerprint import CACHE_FORMAT_VERSION

__all__ = ["CacheStats", "ResultCache"]


@dataclass
class CacheStats:
    """Counters of one cache instance's lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    store_errors: int = 0
    memory_hits: int = 0
    corrupt_entries: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "store_errors": self.store_errors,
            "memory_hits": self.memory_hits,
            "corrupt_entries": self.corrupt_entries,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class ResultCache:
    """A two-level (memory LRU over disk JSON) verdict cache."""

    def __init__(self, directory: Optional[str] = None, memory_entries: int = 1024):
        self.directory = os.path.abspath(directory) if directory else None
        self.memory_entries = max(0, memory_entries)
        self.stats = CacheStats()
        self._memory: "OrderedDict[str, EquivalenceResult]" = OrderedDict()
        if self.directory:
            os.makedirs(self.directory, exist_ok=True)

    # ------------------------------------------------------------------ #
    def _path(self, fingerprint: str) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, fingerprint[:2], fingerprint + ".json")

    def _remember(self, fingerprint: str, result: EquivalenceResult) -> None:
        if self.memory_entries == 0:
            return
        self._memory[fingerprint] = result
        self._memory.move_to_end(fingerprint)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    def _drop_corrupt(self, path: str) -> None:
        self.stats.corrupt_entries += 1
        try:
            os.remove(path)
        except OSError:
            pass

    # ------------------------------------------------------------------ #
    def get(self, fingerprint: str) -> Optional[EquivalenceResult]:
        """The cached verdict for *fingerprint*, or ``None`` on a miss."""
        cached = self._memory.get(fingerprint)
        if cached is not None:
            self._memory.move_to_end(fingerprint)
            self.stats.hits += 1
            self.stats.memory_hits += 1
            return cached
        if self.directory:
            path = self._path(fingerprint)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
                if payload.get("format_version") != CACHE_FORMAT_VERSION:
                    raise ValueError("stale cache format")
                if payload.get("fingerprint") != fingerprint:
                    raise ValueError("fingerprint mismatch")
                result = EquivalenceResult.from_dict(payload["result"])
            except FileNotFoundError:
                pass
            except (OSError, ValueError, KeyError, TypeError):
                self._drop_corrupt(path)
            else:
                self._remember(fingerprint, result)
                self.stats.hits += 1
                return result
        self.stats.misses += 1
        return None

    def put(self, fingerprint: str, result: EquivalenceResult) -> None:
        """Store a verdict under *fingerprint* (atomically on disk)."""
        self._remember(fingerprint, result)
        self.stats.stores += 1
        if not self.directory:
            return
        path = self._path(fingerprint)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = {
            "format_version": CACHE_FORMAT_VERSION,
            "fingerprint": fingerprint,
            "result": result.to_dict(),
        }
        fd, temp_path = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.remove(temp_path)
            except OSError:
                pass
            raise

    def __contains__(self, fingerprint: str) -> bool:
        """Fast existence probe (no I/O beyond a stat).

        May return ``True`` for an entry :meth:`get` will still reject (and
        delete) as stale or corrupt — never use ``in`` to guarantee that a
        subsequent ``get`` returns a result.
        """
        if fingerprint in self._memory:
            return True
        return bool(self.directory) and os.path.exists(self._path(fingerprint))

    def __len__(self) -> int:
        """The number of entries on disk (memory-only: entries in the LRU)."""
        if not self.directory:
            return len(self._memory)
        count = 0
        for _root, _dirs, files in os.walk(self.directory):
            count += sum(1 for name in files if name.endswith(".json"))
        return count

    def clear(self) -> None:
        """Drop every entry (memory and disk)."""
        self._memory.clear()
        if self.directory:
            for root, _dirs, files in os.walk(self.directory):
                for name in files:
                    if name.endswith(".json"):
                        try:
                            os.remove(os.path.join(root, name))
                        except OSError:
                            pass
