"""Batch verification service: jobs, result cache, parallel executor, corpus.

This package is the production layer above :func:`repro.checker.api.check_equivalence`:
it runs many (original, transformed) pairs per invocation, reuses verdicts
through a content-addressed cache, fans cache misses out to worker processes,
and aggregates the outcomes into a JSONL report.  The ``repro-eqcheck batch``
CLI subcommand and :mod:`benchmarks.bench_service` are thin wrappers over it.

Module tour
-----------

* :mod:`~repro.service.job` — :class:`VerificationJob` (picklable check
  description carrying a :class:`~repro.verifier.options.CheckOptions`) and
  :class:`JobResult` (verdict + execution status);
* :mod:`~repro.service.fingerprint` — content-addressed job fingerprints
  over normalised sources, the cache key;
* :mod:`~repro.service.cache` — the on-disk verdict cache with an LRU front;
* :mod:`~repro.service.executor` — :class:`BatchExecutor`: in-batch
  deduplication, process pool, per-job timeouts (``SIGALRM`` on the main
  thread, a signal-free watchdog elsewhere — see :func:`call_with_timeout`);
* :mod:`~repro.service.corpus` — turns the repo's workloads (kernels,
  generated pairs, mutated buggy pairs) into labelled job lists;
* :mod:`~repro.service.report` — JSONL report writing/reading and the batch
  summary (verdict counts, timing percentiles, verdict-cache and Presburger
  operation-cache aggregates).

The end-to-end workflow is documented in ``docs/batch-verification.md``.
"""

from ..verifier import CheckOptions
from .cache import CacheStats, ResultCache
from .corpus import CorpusSpec, build_corpus, jobs_from_file
from .executor import BatchExecutor, JobTimeoutError, call_with_timeout, execute_job
from .fingerprint import CACHE_FORMAT_VERSION, job_fingerprint, normalize_source
from .job import JobResult, JobStatus, VerificationJob
from .report import (
    aggregate_results,
    format_summary,
    read_report,
    scenario_summary,
    write_report,
    write_result_row,
    write_summary_row,
)

__all__ = [
    "BatchExecutor",
    "CACHE_FORMAT_VERSION",
    "CacheStats",
    "CheckOptions",
    "CorpusSpec",
    "JobResult",
    "JobStatus",
    "JobTimeoutError",
    "ResultCache",
    "VerificationJob",
    "aggregate_results",
    "build_corpus",
    "call_with_timeout",
    "execute_job",
    "format_summary",
    "job_fingerprint",
    "jobs_from_file",
    "normalize_source",
    "read_report",
    "scenario_summary",
    "write_report",
    "write_result_row",
    "write_summary_row",
]
