"""Corpus enumeration: turn the repo's workloads into verification jobs.

The corpus runner composes the workload generators with the transformation
pipeline to produce a labelled job list:

* every registered DSP **kernel pair** (:mod:`repro.workloads.kernels`),
  expected equivalent;
* **generated pairs** — random programs transformed by a random
  equivalence-preserving pipeline (:mod:`repro.transforms.pipeline`),
  expected equivalent;
* **buggy pairs** — the same, but with one random error injected by
  :mod:`repro.transforms.mutate`, expected *not* equivalent, so the service
  exercises the diagnostic path and catches false-positive regressions.

Jobs carry their provenance in ``metadata`` and the expected verdict in
``expected_equivalent``, which the report aggregator turns into an
expectation-mismatch count.  Job lists can also be loaded from a JSON file
(see :func:`jobs_from_file`) for user-supplied corpora.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..lang import program_to_text
from ..verifier import CheckOptions
from ..workloads import RandomProgramGenerator, kernel_names, kernel_pair
from .job import VerificationJob

__all__ = ["CorpusSpec", "build_corpus", "jobs_from_file"]


@dataclass
class CorpusSpec:
    """What the built-in corpus should contain.

    ``kernels`` lists kernel names (``("all",)`` expands to the full
    registry); ``generated``/``buggy`` count random equivalent/mutated pairs
    derived from seeds ``seed, seed+1, …`` so the corpus is fully
    deterministic and grows by appending, never by reshuffling.

    Every job of the corpus carries the same
    :class:`~repro.verifier.options.CheckOptions`: either ``options``
    verbatim, or — when ``options`` is ``None`` — the defaults with
    ``method`` applied (the historical spelling).
    """

    kernels: Sequence[str] = ()
    kernel_params: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    generated: int = 0
    buggy: int = 0
    seed: int = 0
    stages: int = 3
    size: int = 24
    transform_steps: int = 3
    method: str = "extended"
    options: Optional[CheckOptions] = None

    def resolved_kernels(self) -> List[str]:
        if any(name == "all" for name in self.kernels):
            return kernel_names()
        return list(self.kernels)

    def job_options(self) -> CheckOptions:
        """The options every job of this corpus carries."""
        if self.options is not None:
            return self.options
        return CheckOptions(method=self.method)


def _generated_job(
    spec: CorpusSpec, seed: int, name: str, inject_error: bool
) -> VerificationJob:
    generator = RandomProgramGenerator(seed=seed, stages=spec.stages, size=spec.size)
    pair = generator.generate_pair(
        transform_steps=spec.transform_steps, inject_error=inject_error
    )
    metadata: Dict[str, Any] = {
        "source": "generator",
        "seed": seed,
        "stages": spec.stages,
        "size": spec.size,
        "transform_steps": [step.name for step in pair.steps],
    }
    if pair.mutation is not None:
        metadata["mutation"] = {
            "kind": pair.mutation.kind,
            "label": pair.mutation.label,
            "description": pair.mutation.description,
        }
    return VerificationJob(
        name=name,
        original_source=program_to_text(pair.original),
        transformed_source=program_to_text(pair.transformed),
        options=spec.job_options(),
        expected_equivalent=pair.expected_equivalent,
        metadata=metadata,
    )


def build_corpus(spec: CorpusSpec) -> List[VerificationJob]:
    """Enumerate the jobs described by *spec* (deterministic in the spec)."""
    jobs: List[VerificationJob] = []
    for name in spec.resolved_kernels():
        pair = kernel_pair(name, **spec.kernel_params.get(name, {}))
        jobs.append(
            VerificationJob(
                name=f"kernel/{name}",
                original_source=program_to_text(pair.original),
                transformed_source=program_to_text(pair.transformed),
                options=spec.job_options(),
                expected_equivalent=True,
                metadata={
                    "source": "kernel",
                    "kernel": name,
                    "description": pair.description,
                    "uses_algebraic": pair.uses_algebraic,
                    "uses_recurrence": pair.uses_recurrence,
                },
            )
        )
    for offset in range(spec.generated):
        seed = spec.seed + offset
        jobs.append(_generated_job(spec, seed, f"generated/eq-{seed}", inject_error=False))
    for offset in range(spec.buggy):
        # A disjoint seed range keeps buggy pairs from shadowing equivalent
        # ones (same generator seed would yield the same original program).
        seed = spec.seed + 100_000 + offset
        jobs.append(_generated_job(spec, seed, f"generated/bug-{seed}", inject_error=True))
    return jobs


def jobs_from_file(path: str) -> List[VerificationJob]:
    """Load a job list from a JSON file.

    The file holds a list of job objects.  Each object either embeds the
    programs (``original_source`` / ``transformed_source``) or references
    mini-C files (``original`` / ``transformed``, resolved relative to the
    job file); the remaining keys are the :class:`VerificationJob` fields.
    """
    with open(path, "r", encoding="utf-8") as handle:
        entries = json.load(handle)
    if not isinstance(entries, list):
        raise ValueError(f"job file {path!r} must contain a JSON list of jobs")
    base = os.path.dirname(os.path.abspath(path))
    jobs = []
    for position, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise ValueError(f"job #{position} in {path!r} is not an object")
        entry = dict(entry)
        for source_key, path_key in (
            ("original_source", "original"),
            ("transformed_source", "transformed"),
        ):
            if source_key not in entry:
                if path_key not in entry:
                    raise ValueError(
                        f"job #{position} in {path!r} needs {source_key!r} or {path_key!r}"
                    )
                file_path = entry.pop(path_key)
                if not os.path.isabs(file_path):
                    file_path = os.path.join(base, file_path)
                with open(file_path, "r", encoding="utf-8") as handle:
                    entry[source_key] = handle.read()
            else:
                entry.pop(path_key, None)
        entry.setdefault("name", f"job-{position}")
        try:
            jobs.append(VerificationJob.from_dict(entry))
        except (TypeError, KeyError) as error:
            # Normalise wrong-typed fields into the ValueError contract the
            # CLI reports cleanly (instead of a raw traceback).
            raise ValueError(f"job #{position} in {path!r} is malformed: {error}") from error
    return jobs
