"""JSONL report writing and batch-level aggregation.

A report is one JSON object per line: a ``{"type": "result", …}`` row per
job (in batch order) followed by a single ``{"type": "summary", …}`` row with
the aggregate — verdict and status counts, expectation mismatches, cache hit
rate, Presburger operation-cache totals and wall-time percentiles.  JSONL
keeps reports streamable and appendable: a crashed run still leaves every
completed row readable.

Two caches appear in the summary and must not be confused: ``cache_hits``
counts **verdict**-cache hits (whole checks skipped, see
:mod:`repro.service.cache`), while the ``opcache`` block aggregates the
**operation**-cache counters (:mod:`repro.presburger.opcache`) of the jobs
that actually executed.  ``docs/batch-verification.md`` walks through a full
report.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, TextIO, Tuple

from .cache import CacheStats
from .job import JobResult, JobStatus

__all__ = [
    "SERVER_SNAPSHOT_VERSION",
    "aggregate_results",
    "format_server_snapshot",
    "scenario_summary",
    "write_report",
    "write_result_row",
    "write_summary_row",
    "read_report",
    "format_summary",
    "percentile",
]

#: Version of the server's deep ``stats`` snapshot schema, carried in the
#: payload as ``schema_version`` so fleet tooling can detect shape changes.
#: The schema is produced by
#: :meth:`repro.server.daemon.VerificationServer.snapshot`, rendered to
#: Prometheus text by :func:`repro.telemetry.prom.render_server_snapshot`
#: and pretty-printed by :func:`format_server_snapshot` — bump this when any
#: of the three would disagree about a field.
SERVER_SNAPSHOT_VERSION = 1


def percentile(values: Sequence[float], fraction: float) -> float:
    """The *fraction*-quantile of *values* (nearest-rank; 0 for no samples)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


_LABEL_EQUIVALENT = "EQUIVALENT"
_LABEL_NOT_EQUIVALENT = "NOT_EQUIVALENT"
_LABEL_UNKNOWN = "UNKNOWN"


def _expected_label(outcome: JobResult) -> Optional[str]:
    label = outcome.metadata.get("expected_label")
    if label is not None:
        return label
    if outcome.expected_equivalent is None:
        return None
    return _LABEL_EQUIVALENT if outcome.expected_equivalent else _LABEL_NOT_EQUIVALENT


def scenario_summary(results: Sequence[JobResult]) -> Optional[Dict[str, Any]]:
    """The checker-vs-expected-vs-oracle confusion block of a labelled batch.

    Returns ``None`` unless at least one result carries scenario labels
    (``expected_label`` or an ``oracle`` verdict in its metadata — attached
    by :func:`repro.scenarios.corpus.scenario_jobs`).  Three disagreement
    classes are reported by name:

    * ``soundness_errors`` — the checker proved a pair EQUIVALENT although the
      oracle holds a concrete witness input on which the outputs differ.
      This is the one *hard* error class: an interpreter witness is
      definitive, so such a verdict is a checker soundness bug.
    * ``label_disputes`` — the oracle contradicts the pair's expected label
      (a corpus-construction bug: a "transformation" that was not
      equivalence-preserving, or a mutation label gone stale).
    * ``incompleteness`` — the checker could not prove a pair that both the
      label and the oracle consider equivalent.  The checker is conservative
      by design, so these are tracked but not errors.

    Results whose metadata carries a ``failure_report`` block (attached by
    :func:`repro.diagnostics.attach_failure_report`, e.g. by the ``fuzz``
    CLI) additionally populate a ``witness`` sub-block gating the *diagnosis*
    layer:

    * ``witness_errors`` — the oracle holds a concrete witness input but the
      checker-side diagnosis could not reproduce any divergence by replay.
      Hard error: the symbolic and concrete layers disagree about a pair
      both call non-equivalent.
    * ``bisection_misses`` — a mutated twin whose pipeline bisection failed
      to name the injected mutation step.  Hard error: every proper prefix
      of a twin's trace is equivalence-preserving by construction, so the
      bisection must land on the mutation.
    """
    labelled = [
        outcome
        for outcome in results
        if outcome.metadata.get("expected_label") is not None
        or outcome.metadata.get("oracle") is not None
    ]
    if not labelled:
        return None
    confusion = {
        "expected_equivalent": {"checker_equivalent": 0, "checker_not_equivalent": 0, "not_completed": 0},
        "expected_not_equivalent": {"checker_equivalent": 0, "checker_not_equivalent": 0, "not_completed": 0},
    }
    oracle_counts = {"equivalent": 0, "not_equivalent": 0, "unknown": 0, "missing": 0}
    soundness_errors: List[str] = []
    label_disputes: List[str] = []
    incompleteness: List[str] = []
    for outcome in labelled:
        expected = _expected_label(outcome)
        oracle = outcome.metadata.get("oracle") or {}
        oracle_label = oracle.get("label")
        if expected in (_LABEL_EQUIVALENT, _LABEL_NOT_EQUIVALENT):
            row = confusion[
                "expected_equivalent" if expected == _LABEL_EQUIVALENT else "expected_not_equivalent"
            ]
            if outcome.status != JobStatus.OK or outcome.equivalent is None:
                row["not_completed"] += 1
            elif outcome.equivalent:
                row["checker_equivalent"] += 1
            else:
                row["checker_not_equivalent"] += 1
        if oracle_label == _LABEL_EQUIVALENT:
            oracle_counts["equivalent"] += 1
        elif oracle_label == _LABEL_NOT_EQUIVALENT:
            oracle_counts["not_equivalent"] += 1
        elif oracle_label == _LABEL_UNKNOWN:
            oracle_counts["unknown"] += 1
        else:
            oracle_counts["missing"] += 1
        checker_ok = outcome.status == JobStatus.OK and outcome.equivalent is not None
        if checker_ok and outcome.equivalent and oracle_label == _LABEL_NOT_EQUIVALENT:
            soundness_errors.append(outcome.name)
        if (
            expected in (_LABEL_EQUIVALENT, _LABEL_NOT_EQUIVALENT)
            and oracle_label in (_LABEL_EQUIVALENT, _LABEL_NOT_EQUIVALENT)
            and oracle_label != expected
        ):
            label_disputes.append(outcome.name)
        if (
            checker_ok
            and not outcome.equivalent
            and expected == _LABEL_EQUIVALENT
            and oracle_label == _LABEL_EQUIVALENT
        ):
            incompleteness.append(outcome.name)
    summary = {
        "labelled": len(labelled),
        "confusion": confusion,
        "oracle": oracle_counts,
        "soundness_errors": soundness_errors,
        "label_disputes": label_disputes,
        "incompleteness": incompleteness,
    }
    witness = _witness_summary(labelled)
    if witness is not None:
        summary["witness"] = witness
    return summary


def _witness_summary(labelled: Sequence[JobResult]) -> Optional[Dict[str, Any]]:
    """Aggregate the ``failure_report`` diagnosis blocks of a labelled batch."""
    diagnosed = 0
    confirmed = 0
    unconfirmed: List[str] = []
    witness_errors: List[str] = []
    bisection_hits = 0
    bisection_misses: List[str] = []
    for outcome in labelled:
        failure = outcome.metadata.get("failure_report")
        if not failure:
            continue
        diagnosed += 1
        if failure.get("confirmed"):
            confirmed += 1
        else:
            unconfirmed.append(outcome.name)
            oracle = outcome.metadata.get("oracle") or {}
            if oracle.get("witness_seed") is not None:
                witness_errors.append(outcome.name)
        if outcome.metadata.get("mutation") is not None:
            bisection = failure.get("bisection") or {}
            if bisection.get("step_name") == "mutation":
                bisection_hits += 1
            else:
                bisection_misses.append(outcome.name)
    if not diagnosed:
        return None
    return {
        "diagnosed": diagnosed,
        "confirmed": confirmed,
        "unconfirmed": unconfirmed,
        "witness_errors": witness_errors,
        "bisection_hits": bisection_hits,
        "bisection_misses": bisection_misses,
    }


def aggregate_results(
    results: Sequence[JobResult],
    cache_stats: Optional[CacheStats] = None,
    opcache_stats: Optional["OpCacheStats"] = None,
) -> Dict[str, Any]:
    """Aggregate per-job results into the batch summary.

    *opcache_stats*, when given, is the process-wide
    :class:`~repro.presburger.opcache.OpCacheStats` delta of the run; it
    enriches the ``opcache`` block with evictions, intern misses and the
    per-operation hit/miss breakdown (counters the per-job
    :class:`~repro.checker.result.CheckStats` do not carry).  With worker
    processes the parent's delta covers only its own share, so callers
    should pass it for serial runs.
    """
    total = len(results)
    by_status = {status: 0 for status in JobStatus.ALL}
    equivalent = not_equivalent = 0
    cache_hits = 0
    opcache_hits = opcache_misses = intern_hits = 0
    mismatches: List[str] = []
    failures: List[str] = []
    times = [r.elapsed_seconds for r in results]
    for outcome in results:
        by_status[outcome.status] = by_status.get(outcome.status, 0) + 1
        if outcome.status != JobStatus.OK:
            failures.append(outcome.name)
        elif outcome.equivalent:
            equivalent += 1
        else:
            not_equivalent += 1
        if outcome.cache_hit:
            cache_hits += 1
        if outcome.matches_expectation is False:
            mismatches.append(outcome.name)
        if (
            outcome.result is not None
            and not outcome.cache_hit
            and not outcome.metadata.get("deduplicated")
        ):
            # Presburger operation-cache activity of the jobs that actually
            # ran in this batch (result-cache hits and in-batch duplicates,
            # which share the leader's result object, did no Presburger work).
            opcache_hits += outcome.result.stats.opcache_hits
            opcache_misses += outcome.result.stats.opcache_misses
            intern_hits += outcome.result.stats.intern_hits
    opcache_total = opcache_hits + opcache_misses
    summary: Dict[str, Any] = {
        "total_jobs": total,
        "by_status": by_status,
        "equivalent": equivalent,
        "not_equivalent": not_equivalent,
        "cache_hits": cache_hits,
        "cache_hit_rate": cache_hits / total if total else 0.0,
        "opcache": {
            "hits": opcache_hits,
            "misses": opcache_misses,
            "hit_rate": opcache_hits / opcache_total if opcache_total else 0.0,
            "intern_hits": intern_hits,
        },
        "expectation_mismatches": mismatches,
        "failed_jobs": failures,
        "timing": {
            "total_seconds": sum(times),
            "mean_seconds": sum(times) / total if total else 0.0,
            "p50_seconds": percentile(times, 0.50),
            "p90_seconds": percentile(times, 0.90),
            "p99_seconds": percentile(times, 0.99),
            "max_seconds": max(times) if times else 0.0,
        },
    }
    if opcache_stats is not None:
        summary["opcache"]["evictions"] = opcache_stats.evictions
        summary["opcache"]["intern_misses"] = opcache_stats.intern_misses
        summary["opcache"]["per_op"] = {
            op: {"hits": h, "misses": m}
            for op, (h, m) in sorted(opcache_stats.per_op.items())
        }
    scenarios = scenario_summary(results)
    if scenarios is not None:
        summary["scenarios"] = scenarios
    solvers = _solvers_summary(results)
    if solvers is not None:
        summary["solvers"] = solvers
    if cache_stats is not None:
        summary["cache"] = cache_stats.as_dict()
    return summary


def _solvers_summary(results: Sequence[JobResult]) -> Optional[Dict[str, Any]]:
    """The decision-backend block: per-backend query counts and divergences.

    Present when any job ran under a non-default backend (its
    :class:`~repro.checker.result.CheckStats` carry ``solver_queries``) or
    was aborted by a :class:`~repro.solvers.BackendDisagreement` (its
    metadata carries the serialized query).  Absent for pure omega batches,
    keeping their summary schema unchanged.
    """
    backends: Dict[str, int] = {}
    queries: Dict[str, int] = {}
    disagreements: List[str] = []
    for outcome in results:
        if outcome.metadata.get("backend_disagreement") is not None:
            disagreements.append(outcome.name)
        if outcome.result is None:
            continue
        stats = outcome.result.stats
        backend = getattr(stats, "backend", "omega")
        if backend != "omega":
            backends[backend] = backends.get(backend, 0) + 1
        if outcome.cache_hit or outcome.metadata.get("deduplicated"):
            continue
        for key, count in (stats.solver_queries or {}).items():
            queries[key] = queries.get(key, 0) + count
    if not backends and not queries and not disagreements:
        return None
    return {
        "backends": dict(sorted(backends.items())),
        "queries": dict(sorted(queries.items())),
        "disagreements": len(disagreements),
        "disagreement_jobs": disagreements,
    }


def write_report(
    target,
    results: Sequence[JobResult],
    cache_stats: Optional[CacheStats] = None,
) -> Dict[str, Any]:
    """Write the JSONL report to *target* (path or text file), returning the summary."""
    summary = aggregate_results(results, cache_stats)
    if hasattr(target, "write"):
        _write_rows(target, results, summary)
    else:
        with open(target, "w", encoding="utf-8") as handle:
            _write_rows(handle, results, summary)
    return summary


def write_result_row(handle: TextIO, outcome: JobResult) -> None:
    """Append one result row (used to stream a report while a batch runs)."""
    handle.write(json.dumps({"type": "result", **outcome.to_dict()}) + "\n")
    handle.flush()


def write_summary_row(handle: TextIO, summary: Dict[str, Any]) -> None:
    """Append the final summary row of a report."""
    handle.write(json.dumps({"type": "summary", **summary}) + "\n")
    handle.flush()


def _write_rows(handle: TextIO, results: Sequence[JobResult], summary: Dict[str, Any]) -> None:
    for outcome in results:
        write_result_row(handle, outcome)
    write_summary_row(handle, summary)


def read_report(path: str) -> Tuple[List[JobResult], Optional[Dict[str, Any]]]:
    """Read a JSONL report back into results + summary (inverse of writing)."""
    results: List[JobResult] = []
    summary: Optional[Dict[str, Any]] = None
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            kind = row.pop("type", "result")
            if kind == "summary":
                summary = row
            else:
                results.append(JobResult.from_dict(row))
    return results, summary


def _format_opcache_line(opcache: Dict[str, Any]) -> str:
    line = (
        f"opcache     : {opcache.get('hits', 0)} hit(s), "
        f"{opcache.get('hit_rate', 0.0):.1%} hit rate, "
        f"{opcache.get('intern_hits', 0)} intern hit(s)"
    )
    if "evictions" in opcache:
        line += f", {opcache['evictions']} eviction(s)"
    per_op = opcache.get("per_op")
    if per_op:
        parts = [
            f"{op} {counts['hits']}/{counts['hits'] + counts['misses']}"
            for op, counts in sorted(per_op.items())
        ]
        line += "\n  per-op    : " + ", ".join(parts)
    return line


def format_summary(summary: Dict[str, Any]) -> str:
    """A compact human readable rendering of the batch summary."""
    by_status = summary["by_status"]
    timing = summary["timing"]
    lines = [
        f"jobs        : {summary['total_jobs']} "
        f"(ok {by_status.get(JobStatus.OK, 0)}, error {by_status.get(JobStatus.ERROR, 0)}, "
        f"timeout {by_status.get(JobStatus.TIMEOUT, 0)})",
        f"verdicts    : {summary['equivalent']} equivalent, "
        f"{summary['not_equivalent']} not proven equivalent",
        f"cache       : {summary['cache_hits']} hit(s), "
        f"{summary['cache_hit_rate']:.1%} hit rate",
        _format_opcache_line(summary.get("opcache", {})),
        f"wall time   : total {timing['total_seconds']:.3f} s, "
        f"p50 {timing['p50_seconds']:.3f} s, p90 {timing['p90_seconds']:.3f} s, "
        f"max {timing['max_seconds']:.3f} s",
    ]
    scenarios = summary.get("scenarios")
    if scenarios:
        confusion = scenarios["confusion"]
        expected_eq = confusion["expected_equivalent"]
        expected_neq = confusion["expected_not_equivalent"]
        oracle = scenarios["oracle"]
        lines.append(
            f"scenarios   : {scenarios['labelled']} labelled | "
            f"expected-eq: {expected_eq['checker_equivalent']} proven, "
            f"{expected_eq['checker_not_equivalent']} unproven | "
            f"expected-neq: {expected_neq['checker_not_equivalent']} caught, "
            f"{expected_neq['checker_equivalent']} missed"
        )
        lines.append(
            f"oracle      : {oracle['equivalent']} agree-equivalent, "
            f"{oracle['not_equivalent']} distinguished, {oracle['unknown']} unknown"
        )
        if scenarios["soundness_errors"]:
            lines.append(
                "SOUNDNESS   : checker proved pairs the oracle refutes: "
                + ", ".join(scenarios["soundness_errors"])
            )
        if scenarios["label_disputes"]:
            lines.append(
                "LABEL BUGS  : oracle contradicts the expected label: "
                + ", ".join(scenarios["label_disputes"])
            )
        if scenarios["incompleteness"]:
            lines.append(
                "incomplete  : equivalent pairs the checker could not prove: "
                + ", ".join(scenarios["incompleteness"])
            )
        witness = scenarios.get("witness")
        if witness:
            lines.append(
                f"witness     : {witness['confirmed']}/{witness['diagnosed']} failures "
                f"confirmed by replay, {witness['bisection_hits']} bisection(s) named "
                "the mutation"
            )
            if witness["witness_errors"]:
                lines.append(
                    "WITNESS ERRS: oracle witness exists but replay found no divergence: "
                    + ", ".join(witness["witness_errors"])
                )
            if witness["bisection_misses"]:
                lines.append(
                    "BISECT MISS : bisection failed to name the injected mutation: "
                    + ", ".join(witness["bisection_misses"])
                )
    solvers = summary.get("solvers")
    if solvers:
        per_backend = ", ".join(
            f"{name} x{count}" for name, count in sorted(solvers.get("backends", {}).items())
        ) or "omega only"
        total_queries = sum(solvers.get("queries", {}).values())
        lines.append(f"solvers     : {per_backend} | {total_queries} backend quer(ies)")
        per_kind = solvers.get("queries", {})
        if per_kind:
            parts = [f"{key} {count}" for key, count in sorted(per_kind.items())]
            lines.append("  queries   : " + ", ".join(parts))
        if solvers.get("disagreements"):
            lines.append(
                "DISAGREEMENT: backends diverged on: "
                + ", ".join(solvers.get("disagreement_jobs", []))
            )
    if summary["expectation_mismatches"]:
        lines.append(
            "MISMATCHES  : " + ", ".join(summary["expectation_mismatches"])
        )
    if summary["failed_jobs"]:
        lines.append("failed jobs : " + ", ".join(summary["failed_jobs"]))
    return "\n".join(lines)


def _format_latency(name: str, snapshot: Optional[Dict[str, Any]]) -> Optional[str]:
    if not snapshot or not snapshot.get("count"):
        return None
    return (
        f"{name} n={snapshot['count']} "
        f"mean={snapshot.get('mean', 0.0):.4f}s max={snapshot.get('max', 0.0):.4f}s"
    )


def format_server_snapshot(snapshot: Dict[str, Any]) -> str:
    """Human-readable rendering of the server's deep ``stats`` snapshot.

    The display half of the shared snapshot schema (see
    :data:`SERVER_SNAPSHOT_VERSION`): ``repro-eqcheck stats`` and its
    ``--watch`` loop print exactly this.  Tolerant of missing keys so an
    older or newer daemon still renders usefully.
    """
    lines: List[str] = []
    lines.append(
        f"server      : pid {snapshot.get('pid', '?')} · protocol v{snapshot.get('protocol_version', '?')}"
        f" · up {snapshot.get('uptime_seconds', 0.0):.1f}s"
        + (" · DRAINING" if snapshot.get("draining") else "")
    )
    lines.append(
        f"requests    : {snapshot.get('requests', 0)} total, "
        f"{snapshot.get('rejected', 0)} rejected, {snapshot.get('errors', 0)} errors, "
        f"{snapshot.get('timeouts', 0)} timeouts | inflight {snapshot.get('inflight', 0)}, "
        f"connections {snapshot.get('connections', 0)}, workers {snapshot.get('workers', '?')}"
    )
    hit_rate = snapshot.get("cache_hit_rate", 0.0) or 0.0
    lines.append(
        f"checks      : {snapshot.get('checks_executed', 0)} executed, "
        f"{snapshot.get('cache_hits', 0)} verdict-cache hits ({hit_rate:.1%}), "
        f"{snapshot.get('dedup_hits', 0)} dedup"
    )
    latency = snapshot.get("latency") or {}
    latency_parts = [
        part
        for part in (
            _format_latency("request", latency.get("request_seconds")),
            _format_latency("check", latency.get("check_seconds")),
        )
        if part
    ]
    if latency_parts:
        lines.append("latency     : " + " | ".join(latency_parts))
    compiled = snapshot.get("compiled_store") or {}
    if compiled:
        lines.append(
            f"compiled    : {compiled.get('entries', 0)} entries, "
            f"{compiled.get('hits', 0)} hits / {compiled.get('misses', 0)} misses, "
            f"{compiled.get('evictions', 0)} evictions"
        )
    opcache = snapshot.get("opcache") or {}
    if opcache:
        line = (
            f"opcache     : {opcache.get('hits', 0)} hits / {opcache.get('misses', 0)} misses"
        )
        if opcache.get("disk_hits") or opcache.get("disk_writes"):
            line += (
                f" (disk: {opcache.get('disk_hits', 0)} hits, "
                f"{opcache.get('disk_writes', 0)} writes)"
            )
        lines.append(line)
    solver_queries = snapshot.get("solver_queries") or {}
    if solver_queries:
        parts = [f"{kind} {count}" for kind, count in sorted(solver_queries.items())]
        lines.append("solvers     : " + ", ".join(parts))
    slow = snapshot.get("slow") or {}
    if slow.get("threshold_seconds") is not None:
        lines.append(
            f"slow        : {slow.get('captured', 0)} captured over "
            f"{slow.get('threshold_seconds')}s (holding {slow.get('held', 0)}"
            f"/{slow.get('capacity', 0)})"
        )
    request_log = snapshot.get("request_log")
    if request_log:
        state = "DEGRADED to stderr" if request_log.get("degraded") else request_log.get("path")
        lines.append(
            f"log         : {state}, {request_log.get('events_written', 0)} events"
            f" ({request_log.get('events_dropped', 0)} below level)"
        )
    return "\n".join(lines)
