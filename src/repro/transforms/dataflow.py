"""Global data-flow transformations: expression propagation in both directions.

Expression propagation either *eliminates* a temporary array by substituting
its defining expression into its uses (forward substitution) or *introduces*
a temporary array that holds an intermediate value (the reverse direction).
These are the data-flow transformations of the paper's target set that do not
rely on algebraic properties.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..lang.ast import (
    ArrayDecl,
    ArrayRef,
    Assignment,
    BinOp,
    Expr,
    ForLoop,
    IntConst,
    Program,
    Statement,
    UnaryOp,
    VarRef,
    map_expr,
    substitute_vars,
    walk_expr,
)
from .errors import TransformError
from .locate import enclosing_loops, find_assignment, get_subexpr, replace_subexpr, statement_container

__all__ = ["forward_substitution", "introduce_temporary"]


def _invert_write_index(write_index: Expr, use_index: Expr, iterator: str) -> Optional[Expr]:
    """Solve ``write_index(iterator) == use_index`` for the iterator.

    Supports write indices of the form ``k``, ``k + c``, ``k - c`` and
    ``-k + c`` (unit coefficient), which covers the overwhelmingly common
    cases; returns ``None`` otherwise.
    """
    if isinstance(write_index, VarRef) and write_index.name == iterator:
        return use_index.clone()
    if isinstance(write_index, BinOp) and write_index.op in ("+", "-"):
        lhs, rhs = write_index.lhs, write_index.rhs
        if isinstance(lhs, VarRef) and lhs.name == iterator and isinstance(rhs, IntConst):
            # k + c = u  ->  k = u - c     |   k - c = u  ->  k = u + c
            op = "-" if write_index.op == "+" else "+"
            return BinOp(op, use_index.clone(), IntConst(rhs.value))
        if isinstance(rhs, VarRef) and rhs.name == iterator and isinstance(lhs, IntConst):
            if write_index.op == "+":
                # c + k = u  ->  k = u - c
                return BinOp("-", use_index.clone(), IntConst(lhs.value))
            # c - k = u  ->  k = c - u
            return BinOp("-", IntConst(lhs.value), use_index.clone())
    if isinstance(write_index, UnaryOp) and write_index.op == "-":
        inner = write_index.operand
        if isinstance(inner, VarRef) and inner.name == iterator:
            return UnaryOp("-", use_index.clone())
    return None


def forward_substitution(program: Program, array: str) -> Program:
    """Eliminate the intermediate *array* by substituting its definition into all uses.

    Requirements (checked, :class:`TransformError` otherwise):

    * *array* is a local (intermediate) array of the program;
    * it is defined by exactly one assignment, nested in exactly one loop,
      with a write index that is invertible in the loop iterator
      (``tmp[k]``, ``tmp[k + c]``, ``tmp[c - k]``, ...);
    * its defining expression only reads arrays that are not written between
      the definition and the uses (not checked here — the equivalence checker
      verifies the result, in the spirit of a-posteriori validation).
    """
    if array not in [decl.name for decl in program.locals if not decl.is_scalar]:
        raise TransformError(f"{array!r} is not an intermediate array of the program")
    definitions = [a for a in program.assignments() if a.target.name == array]
    if len(definitions) != 1:
        raise TransformError(
            f"forward substitution requires exactly one definition of {array!r}, found {len(definitions)}"
        )
    definition = definitions[0]
    if len(definition.target.indices) != 1:
        raise TransformError("forward substitution currently supports one-dimensional temporaries")
    loops = enclosing_loops(program, definition.label) if definition.label else []
    if len(loops) != 1:
        raise TransformError("the definition must be nested in exactly one loop")
    iterator = loops[-1].var
    write_index = definition.target.indices[0]

    result = program.clone()
    new_definition = find_assignment(result, definition.label)

    def substitute_use(node: Expr) -> Expr:
        if isinstance(node, ArrayRef) and node.name == array:
            if len(node.indices) != 1:
                raise TransformError(f"use of {array!r} has unexpected dimensionality")
            solved = _invert_write_index(write_index, node.indices[0], iterator)
            if solved is None:
                raise TransformError(
                    f"cannot invert the write index {write_index!r} of {array!r} for substitution"
                )
            return substitute_vars(new_definition.rhs.clone(), {iterator: solved})
        return node

    for assignment in result.assignments():
        if assignment.target.name == array:
            continue
        assignment.rhs = map_expr(assignment.rhs, substitute_use)

    # Remove the defining statement (and its loop if it becomes empty) and the declaration.
    container, index = statement_container(result, new_definition)
    del container[index]
    _prune_empty_loops(result.body)
    result.locals = [decl for decl in result.locals if decl.name != array]
    return result


def _prune_empty_loops(statements: List[Statement]) -> None:
    index = 0
    while index < len(statements):
        statement = statements[index]
        if isinstance(statement, ForLoop):
            _prune_empty_loops(statement.body)
            if not statement.body:
                del statements[index]
                continue
        index += 1


def introduce_temporary(
    program: Program,
    label: str,
    path: Sequence[int],
    temp_name: str,
) -> Program:
    """Introduce a temporary array holding the sub-expression at *path* of statement *label*.

    A new loop nest (copying the headers of the loops enclosing the statement)
    is inserted immediately before the outermost enclosing loop; it assigns
    the sub-expression to ``temp_name[iterators...]`` and the original
    statement reads the temporary instead.  This is the inverse of forward
    substitution and is only applicable when the loop bounds are constants
    (needed to size the temporary).
    """
    declared = {decl.name for decl in list(program.params) + list(program.locals)}
    if temp_name in declared:
        raise TransformError(f"array name {temp_name!r} is already declared")
    assignment = find_assignment(program, label)
    loops = enclosing_loops(program, label)
    if not loops:
        raise TransformError("the target statement must be nested in at least one loop")
    subexpr = get_subexpr(assignment.rhs, path)
    if isinstance(subexpr, IntConst):
        raise TransformError("introducing a temporary for a constant is not useful")

    sizes: List[int] = []
    for loop in loops:
        init = loop.init
        bound = loop.bound
        if not isinstance(init, IntConst) or not isinstance(bound, IntConst):
            raise TransformError("introduce_temporary requires constant loop bounds")
        extent = max(abs(bound.value), abs(init.value)) + 2
        sizes.append(extent)

    result = program.clone()
    new_assignment = find_assignment(result, label)
    iterators = [loop.var for loop in loops]
    temp_ref = ArrayRef(temp_name, [VarRef(name) for name in iterators])

    # Labels are unique program-wide in the allowed class, so a second
    # temporary introduced for the same statement needs a fresh one.
    existing_labels = {a.label for a in result.assignments() if a.label}
    pre_label = f"{label}_pre"
    counter = 1
    while pre_label in existing_labels:
        counter += 1
        pre_label = f"{label}_pre{counter}"

    sub = get_subexpr(new_assignment.rhs, path)
    temp_statement = Assignment(pre_label, ArrayRef(temp_name, [VarRef(n) for n in iterators]), sub.clone())
    new_assignment.rhs = replace_subexpr(new_assignment.rhs, path, temp_ref)

    # Build the new loop nest around the temporary's definition.
    body: List[Statement] = [temp_statement]
    for loop in reversed(loops):
        body = [ForLoop(loop.var, loop.init.clone(), loop.cond_op, loop.bound.clone(), loop.step, body)]

    # Insert the new loop nest immediately before the outermost loop that
    # encloses the (cloned) target statement.
    target_outer = enclosing_loops(result, label)[0]
    container, index = statement_container(result, target_outer)
    container[index:index] = body
    result.locals.append(ArrayDecl(temp_name, sizes))
    return result
