"""Composing transformations into pipelines and random equivalent variants.

The scaling benchmarks (EXPERIMENTS E7–E9) and the scenario engine
(:mod:`repro.scenarios`) need many (original, transformed) pairs whose
transformed member is obtained by a *random but equivalence-preserving*
sequence of the paper's transformations.  This module provides the machinery:

* a :class:`Probe` is one named, applicability-probed rewrite — it draws a
  random target from the program, applies the underlying transformation and
  raises :class:`~repro.transforms.errors.TransformError` when nothing in the
  current program is a legal target;
* :func:`default_probes` is the historical seven-transformation set used by
  :func:`apply_random_transforms`; :func:`extended_probes` adds loop
  interchange, step normalisation, temporary introduction, commutation and
  rotation for the scenario engine's deeper pipelines;
* :func:`compose_random_pipeline` draws probes until the requested number of
  steps have been applied, skipping steps that are not applicable and
  discarding candidates that break the def-use prerequisites (so the produced
  variant is really equivalent).
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence, Tuple

from ..lang.ast import Assignment, BinOp, Expr, ForLoop, IntConst, Program
from .algebraic import collect_chain, commute_operands, random_reassociation, rotate_left, rotate_right
from .dataflow import forward_substitution, introduce_temporary
from .errors import TransformError
from .locate import enclosing_loops, get_subexpr, loop_of_label
from .loop import (
    loop_fission,
    loop_fusion,
    loop_interchange,
    loop_normalize_steps,
    loop_reversal,
    loop_shift,
    loop_split,
)

__all__ = [
    "Probe",
    "TransformStep",
    "apply_pipeline",
    "apply_random_transforms",
    "compose_random_pipeline",
    "default_probes",
    "extended_probes",
]


class TransformStep:
    """A record of one applied transformation (for reporting / debugging).

    ``snapshot_source`` optionally carries the mini-C source text of the
    program *after* this step was applied.  Pipelines that capture snapshots
    (:func:`compose_random_pipeline` does) make their traces replayable:
    :mod:`repro.diagnostics` bisects the snapshot sequence to name the exact
    step that broke equivalence.
    """

    def __init__(self, name: str, detail: str, snapshot_source: Optional[str] = None):
        self.name = name
        self.detail = detail
        self.snapshot_source = snapshot_source

    def __repr__(self) -> str:
        return f"TransformStep({self.name}: {self.detail})"

    def to_dict(self) -> dict:
        return {"name": self.name, "detail": self.detail, "snapshot_source": self.snapshot_source}

    @classmethod
    def from_dict(cls, data: dict) -> "TransformStep":
        return cls(data["name"], data.get("detail", ""), data.get("snapshot_source"))


class Probe:
    """One named rewrite that picks its own random target.

    ``fn(program, rng)`` returns ``(candidate, step)`` or raises
    :class:`TransformError` when no legal target exists.  ``guarded`` probes
    additionally have their candidate validated against the def-use
    prerequisites (:func:`repro.analysis.check_dataflow`) before being
    accepted — the structural rewrites that can reorder reads relative to
    writes (fusion, shifting, interchange, temporary introduction) are not
    legal for every program, and an illegal candidate would silently turn an
    "expected equivalent" pair into a buggy one.
    """

    def __init__(
        self,
        name: str,
        fn: Callable[[Program, random.Random], Tuple[Program, TransformStep]],
        guarded: bool = False,
    ):
        self.name = name
        self.fn = fn
        self.guarded = guarded

    def __repr__(self) -> str:
        return f"Probe({self.name}{', guarded' if self.guarded else ''})"


def _labelled_assignments(program: Program) -> List[Assignment]:
    return [a for a in program.assignments() if a.label]


def _try_loop_reversal(program: Program, rng: random.Random) -> Tuple[Program, TransformStep]:
    assignment = rng.choice(_labelled_assignments(program))
    result = loop_reversal(program, assignment.label or "")
    return result, TransformStep("loop-reversal", f"loop of statement {assignment.label}")


def _try_loop_fission(program: Program, rng: random.Random) -> Tuple[Program, TransformStep]:
    assignment = rng.choice(_labelled_assignments(program))
    result = loop_fission(program, assignment.label or "")
    return result, TransformStep("loop-fission", f"loop of statement {assignment.label}")


def _try_loop_split(program: Program, rng: random.Random) -> Tuple[Program, TransformStep]:
    assignment = rng.choice(_labelled_assignments(program))
    label = assignment.label or ""
    loop = loop_of_label(program, label)
    if not isinstance(loop.init, IntConst) or not isinstance(loop.bound, IntConst):
        raise TransformError("loop split needs constant bounds")
    low, high = loop.init.value, loop.bound.value
    if abs(high - low) < 4:
        raise TransformError("loop too small to split")
    at = (low + high) // 2
    result = loop_split(program, label, at)
    return result, TransformStep("loop-split", f"loop of statement {label} at {at}")


def _try_loop_shift(program: Program, rng: random.Random) -> Tuple[Program, TransformStep]:
    assignment = rng.choice(_labelled_assignments(program))
    label = assignment.label or ""
    offset = rng.choice([1, 2, 3, -1])
    result = loop_shift(program, label, offset)
    return result, TransformStep("loop-shift", f"loop of statement {label} by {offset}")


def _try_loop_fusion(program: Program, rng: random.Random) -> Tuple[Program, TransformStep]:
    # Find two adjacent top-level loops with identical headers.
    body = program.body
    for index in range(len(body) - 1):
        first, second = body[index], body[index + 1]
        if (
            isinstance(first, ForLoop)
            and isinstance(second, ForLoop)
            and first.init == second.init
            and first.bound == second.bound
            and first.cond_op == second.cond_op
            and first.step == second.step
        ):
            first_label = _first_label(first)
            second_label = _first_label(second)
            if first_label and second_label:
                result = loop_fusion(program, first_label, second_label)
                return result, TransformStep("loop-fusion", f"loops of {first_label} and {second_label}")
    raise TransformError("no fusable adjacent loops")


def _first_label(loop: ForLoop) -> Optional[str]:
    for statement in loop.body:
        if isinstance(statement, Assignment) and statement.label:
            return statement.label
        if isinstance(statement, ForLoop):
            inner = _first_label(statement)
            if inner:
                return inner
    return None


def _try_forward_substitution(program: Program, rng: random.Random) -> Tuple[Program, TransformStep]:
    intermediates = list(program.intermediate_arrays())
    rng.shuffle(intermediates)
    for array in intermediates:
        try:
            result = forward_substitution(program, array)
            return result, TransformStep("forward-substitution", f"eliminated {array}")
        except TransformError:
            continue
    raise TransformError("no intermediate array can be forward substituted")


def _try_reassociation(program: Program, rng: random.Random) -> Tuple[Program, TransformStep]:
    assignments = _labelled_assignments(program)
    rng.shuffle(assignments)
    for assignment in assignments:
        if len(collect_chain(assignment.rhs, "+")) >= 2:
            result = random_reassociation(program, assignment.label or "", rng, op="+")
            return result, TransformStep("algebraic-reassociation", f"statement {assignment.label}")
    raise TransformError("no +-chain to reassociate")


# ------------------------------------------------------------------ #
# Extended probes (scenario engine)
# ------------------------------------------------------------------ #

def _try_loop_interchange(program: Program, rng: random.Random) -> Tuple[Program, TransformStep]:
    candidates = [
        a for a in _labelled_assignments(program)
        if len(enclosing_loops(program, a.label or "")) >= 2
    ]
    if not candidates:
        raise TransformError("no assignment inside a loop nest of depth two")
    assignment = rng.choice(candidates)
    result = loop_interchange(program, assignment.label or "")
    return result, TransformStep("loop-interchange", f"nest of statement {assignment.label}")


def _try_loop_normalize(program: Program, rng: random.Random) -> Tuple[Program, TransformStep]:
    assignment = rng.choice(_labelled_assignments(program))
    label = assignment.label or ""
    result = loop_normalize_steps(program, label)
    return result, TransformStep("loop-normalize-steps", f"loop of statement {label}")


def _binop_paths(expr: Expr, ops: Tuple[str, ...]) -> List[Tuple[int, ...]]:
    """The 1-based operand paths of every BinOp in *expr* whose op is in *ops*.

    Paths follow the :mod:`~repro.transforms.locate` convention — operand
    positions of BinOp/UnaryOp/Call nodes only, never descending into
    ArrayRef subscripts — so every returned path resolves via
    :func:`~repro.transforms.locate.get_subexpr`.
    """
    from .locate import _expr_children

    found: List[Tuple[int, ...]] = []

    def visit(node: Expr, path: Tuple[int, ...]) -> None:
        if isinstance(node, BinOp) and node.op in ops:
            found.append(path)
        for position, child in enumerate(_expr_children(node), start=1):
            visit(child, path + (position,))

    visit(expr, ())
    return found


def _try_commute(program: Program, rng: random.Random) -> Tuple[Program, TransformStep]:
    assignments = _labelled_assignments(program)
    rng.shuffle(assignments)
    for assignment in assignments:
        paths = _binop_paths(assignment.rhs, ("+", "*"))
        if paths:
            path = rng.choice(paths)
            result = commute_operands(program, assignment.label or "", path)
            return result, TransformStep(
                "commute-operands", f"statement {assignment.label} path {tuple(path)}"
            )
    raise TransformError("no commutative operator to commute")


def _try_rotate(program: Program, rng: random.Random) -> Tuple[Program, TransformStep]:
    assignments = _labelled_assignments(program)
    rng.shuffle(assignments)
    for assignment in assignments:
        rotations = []
        for path in _binop_paths(assignment.rhs, ("+", "*")):
            node = get_subexpr(assignment.rhs, path)
            if isinstance(node.rhs, BinOp) and node.rhs.op == node.op:
                rotations.append((path, rotate_left, "left"))
            if isinstance(node.lhs, BinOp) and node.lhs.op == node.op:
                rotations.append((path, rotate_right, "right"))
        if rotations:
            path, rotate, direction = rng.choice(rotations)
            result = rotate(program, assignment.label or "", path)
            return result, TransformStep(
                f"rotate-{direction}", f"statement {assignment.label} path {tuple(path)}"
            )
    raise TransformError("no associative chain to rotate")


def _fresh_temp_name(program: Program) -> str:
    declared = {decl.name for decl in list(program.params) + list(program.locals)}
    counter = 0
    while f"st{counter}" in declared:
        counter += 1
    return f"st{counter}"


def _try_introduce_temporary(program: Program, rng: random.Random) -> Tuple[Program, TransformStep]:
    assignments = _labelled_assignments(program)
    rng.shuffle(assignments)
    for assignment in assignments:
        label = assignment.label or ""
        loops = enclosing_loops(program, label)
        if not loops:
            continue
        if any(
            not isinstance(loop.init, IntConst)
            or not isinstance(loop.bound, IntConst)
            or loop.init.value < 0
            or loop.bound.value < 0
            for loop in loops
        ):
            # Constant, non-negative bounds keep the temporary's index domain
            # inside the declarable array extents.
            continue
        paths = _binop_paths(assignment.rhs, ("+", "-", "*", "/", "%"))
        if not paths:
            continue
        path = rng.choice(paths)
        temp = _fresh_temp_name(program)
        result = introduce_temporary(program, label, path, temp)
        return result, TransformStep(
            "introduce-temporary", f"statement {label} path {tuple(path)} as {temp}"
        )
    raise TransformError("no sub-expression suitable for a temporary")


_DEFAULT_PROBES: List[Probe] = [
    # loop-reversal reorders iterations, which is illegal across a
    # loop-carried recurrence (e.g. reversing the accumulation loop of
    # matvec makes acc[i][j] read acc[i][j-1] before it is written); the
    # historical corpus never hit this because generated programs carry no
    # recurrences, but the scenario engine also draws kernel bases.
    Probe("loop-reversal", _try_loop_reversal, guarded=True),
    Probe("loop-fission", _try_loop_fission),
    Probe("loop-split", _try_loop_split),
    Probe("loop-shift", _try_loop_shift, guarded=True),
    Probe("loop-fusion", _try_loop_fusion, guarded=True),
    # forward substitution moves the defining expression to its use sites;
    # if an array it reads is rewritten in between, the substituted reads
    # observe different values — guard rather than trust.
    Probe("forward-substitution", _try_forward_substitution, guarded=True),
    Probe("algebraic-reassociation", _try_reassociation),
]

_EXTENDED_PROBES: List[Probe] = _DEFAULT_PROBES + [
    Probe("loop-interchange", _try_loop_interchange, guarded=True),
    Probe("loop-normalize-steps", _try_loop_normalize),
    Probe("commute-operands", _try_commute),
    Probe("rotate-chain", _try_rotate),
    Probe("introduce-temporary", _try_introduce_temporary, guarded=True),
]

_ALGEBRAIC_PROBE_NAMES = frozenset(
    {"algebraic-reassociation", "commute-operands", "rotate-chain"}
)


def default_probes() -> List[Probe]:
    """The historical probe set of :func:`apply_random_transforms`."""
    return list(_DEFAULT_PROBES)


def extended_probes() -> List[Probe]:
    """The scenario engine's probe set: the default set plus loop interchange,
    step normalisation, commutation, rotation and temporary introduction."""
    return list(_EXTENDED_PROBES)


def compose_random_pipeline(
    program: Program,
    rng: random.Random,
    steps: int = 3,
    probes: Optional[Sequence[Probe]] = None,
    allowed: Optional[Sequence[str]] = None,
    attempts_per_step: int = 12,
) -> Tuple[Program, List[TransformStep]]:
    """Apply up to *steps* random equivalence-preserving transformations.

    Each attempt draws one probe from *probes* (default:
    :func:`default_probes`); probes that raise :class:`TransformError` and
    guarded candidates that violate the def-use prerequisites are skipped.
    Returns the final program and the trace of the applied steps (possibly
    fewer than *steps* when the program runs out of applicable targets).
    """
    from ..analysis import check_dataflow

    probe_list = list(probes) if probes is not None else default_probes()
    allowed_names = set(allowed) if allowed is not None else None
    current = program
    applied: List[TransformStep] = []
    attempts = 0
    while len(applied) < steps and attempts < steps * attempts_per_step:
        attempts += 1
        probe = rng.choice(probe_list)
        if allowed_names is not None and probe.name not in allowed_names:
            continue
        try:
            candidate, step = probe.fn(current, rng)
        except TransformError:
            continue
        # Some structural rewrites (e.g. fusing loops whose second half reads
        # values produced by later iterations of the first half) are not legal
        # for every program; keep only candidates that still satisfy the
        # def-use prerequisites, so the produced variant is really equivalent.
        if probe.guarded and check_dataflow(candidate):
            continue
        current = candidate
        if step.snapshot_source is None:
            from ..lang import program_to_text

            step.snapshot_source = program_to_text(current)
        applied.append(step)
    return current, applied


def apply_random_transforms(
    program: Program,
    rng: random.Random,
    steps: int = 3,
    allow_algebraic: bool = True,
    allowed: Optional[Sequence[str]] = None,
) -> Tuple[Program, List[TransformStep]]:
    """Apply *steps* random equivalence-preserving transformations.

    ``allow_algebraic=False`` restricts the pipeline to expression propagation
    and loop transformations only (producing pairs that the *basic* method can
    verify); ``allowed`` restricts the pipeline to a subset of transformation
    names.  This is the historical entry point over :func:`default_probes`;
    the scenario engine calls :func:`compose_random_pipeline` with
    :func:`extended_probes` directly.
    """
    allowed_names: Optional[set] = set(allowed) if allowed is not None else None
    if not allow_algebraic:
        all_names = {probe.name for probe in _DEFAULT_PROBES}
        base = allowed_names if allowed_names is not None else all_names
        allowed_names = base - _ALGEBRAIC_PROBE_NAMES
    return compose_random_pipeline(
        program, rng, steps=steps, probes=default_probes(),
        allowed=sorted(allowed_names) if allowed_names is not None else None,
    )


def apply_pipeline(
    program: Program, steps: Sequence[Tuple[Callable[..., Program], dict]]
) -> Program:
    """Apply an explicit list of ``(transformation, kwargs)`` steps in order."""
    current = program
    for transform, kwargs in steps:
        current = transform(current, **kwargs)
    return current
