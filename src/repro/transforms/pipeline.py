"""Composing transformations into pipelines and random equivalent variants.

The scaling benchmarks (EXPERIMENTS E7–E9) need many (original, transformed)
pairs whose transformed member is obtained by a *random but
equivalence-preserving* sequence of the paper's transformations.  This module
provides that: :func:`apply_random_transforms` draws loop transformations,
expression propagations and algebraic rewrites until the requested number of
steps have been applied, skipping steps that are not applicable to the
current program.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence, Tuple

from ..lang.ast import Assignment, ForLoop, IntConst, Program
from .algebraic import collect_chain, random_reassociation
from .dataflow import forward_substitution
from .errors import TransformError
from .locate import enclosing_loops, loop_of_label
from .loop import (
    loop_fission,
    loop_fusion,
    loop_reversal,
    loop_shift,
    loop_split,
)

__all__ = ["TransformStep", "apply_random_transforms", "apply_pipeline"]


class TransformStep:
    """A record of one applied transformation (for reporting / debugging)."""

    def __init__(self, name: str, detail: str):
        self.name = name
        self.detail = detail

    def __repr__(self) -> str:
        return f"TransformStep({self.name}: {self.detail})"


def _labelled_assignments(program: Program) -> List[Assignment]:
    return [a for a in program.assignments() if a.label]


def _try_loop_reversal(program: Program, rng: random.Random) -> Tuple[Program, TransformStep]:
    assignment = rng.choice(_labelled_assignments(program))
    result = loop_reversal(program, assignment.label or "")
    return result, TransformStep("loop-reversal", f"loop of statement {assignment.label}")


def _try_loop_fission(program: Program, rng: random.Random) -> Tuple[Program, TransformStep]:
    assignment = rng.choice(_labelled_assignments(program))
    result = loop_fission(program, assignment.label or "")
    return result, TransformStep("loop-fission", f"loop of statement {assignment.label}")


def _try_loop_split(program: Program, rng: random.Random) -> Tuple[Program, TransformStep]:
    assignment = rng.choice(_labelled_assignments(program))
    label = assignment.label or ""
    loop = loop_of_label(program, label)
    if not isinstance(loop.init, IntConst) or not isinstance(loop.bound, IntConst):
        raise TransformError("loop split needs constant bounds")
    low, high = loop.init.value, loop.bound.value
    if abs(high - low) < 4:
        raise TransformError("loop too small to split")
    at = (low + high) // 2
    result = loop_split(program, label, at)
    return result, TransformStep("loop-split", f"loop of statement {label} at {at}")


def _try_loop_shift(program: Program, rng: random.Random) -> Tuple[Program, TransformStep]:
    assignment = rng.choice(_labelled_assignments(program))
    label = assignment.label or ""
    offset = rng.choice([1, 2, 3, -1])
    result = loop_shift(program, label, offset)
    return result, TransformStep("loop-shift", f"loop of statement {label} by {offset}")


def _try_loop_fusion(program: Program, rng: random.Random) -> Tuple[Program, TransformStep]:
    # Find two adjacent top-level loops with identical headers.
    body = program.body
    for index in range(len(body) - 1):
        first, second = body[index], body[index + 1]
        if (
            isinstance(first, ForLoop)
            and isinstance(second, ForLoop)
            and first.init == second.init
            and first.bound == second.bound
            and first.cond_op == second.cond_op
            and first.step == second.step
        ):
            first_label = _first_label(first)
            second_label = _first_label(second)
            if first_label and second_label:
                result = loop_fusion(program, first_label, second_label)
                return result, TransformStep("loop-fusion", f"loops of {first_label} and {second_label}")
    raise TransformError("no fusable adjacent loops")


def _first_label(loop: ForLoop) -> Optional[str]:
    for statement in loop.body:
        if isinstance(statement, Assignment) and statement.label:
            return statement.label
        if isinstance(statement, ForLoop):
            inner = _first_label(statement)
            if inner:
                return inner
    return None


def _try_forward_substitution(program: Program, rng: random.Random) -> Tuple[Program, TransformStep]:
    intermediates = list(program.intermediate_arrays())
    rng.shuffle(intermediates)
    for array in intermediates:
        try:
            result = forward_substitution(program, array)
            return result, TransformStep("forward-substitution", f"eliminated {array}")
        except TransformError:
            continue
    raise TransformError("no intermediate array can be forward substituted")


def _try_reassociation(program: Program, rng: random.Random) -> Tuple[Program, TransformStep]:
    assignments = _labelled_assignments(program)
    rng.shuffle(assignments)
    for assignment in assignments:
        if len(collect_chain(assignment.rhs, "+")) >= 2:
            result = random_reassociation(program, assignment.label or "", rng, op="+")
            return result, TransformStep("algebraic-reassociation", f"statement {assignment.label}")
    raise TransformError("no +-chain to reassociate")


_EQUIVALENCE_PRESERVING: List[Tuple[str, Callable[[Program, random.Random], Tuple[Program, TransformStep]]]] = [
    ("loop-reversal", _try_loop_reversal),
    ("loop-fission", _try_loop_fission),
    ("loop-split", _try_loop_split),
    ("loop-shift", _try_loop_shift),
    ("loop-fusion", _try_loop_fusion),
    ("forward-substitution", _try_forward_substitution),
    ("algebraic-reassociation", _try_reassociation),
]


def apply_random_transforms(
    program: Program,
    rng: random.Random,
    steps: int = 3,
    allow_algebraic: bool = True,
    allowed: Optional[Sequence[str]] = None,
) -> Tuple[Program, List[TransformStep]]:
    """Apply *steps* random equivalence-preserving transformations.

    ``allow_algebraic=False`` restricts the pipeline to expression propagation
    and loop transformations only (producing pairs that the *basic* method can
    verify); ``allowed`` restricts the pipeline to a subset of transformation
    names.
    """
    from ..analysis import check_dataflow

    current = program
    applied: List[TransformStep] = []
    attempts = 0
    while len(applied) < steps and attempts < steps * 12:
        attempts += 1
        name, transform = rng.choice(_EQUIVALENCE_PRESERVING)
        if not allow_algebraic and name == "algebraic-reassociation":
            continue
        if allowed is not None and name not in allowed:
            continue
        try:
            candidate, step = transform(current, rng)
        except TransformError:
            continue
        # Some structural rewrites (e.g. fusing loops whose second half reads
        # values produced by later iterations of the first half) are not legal
        # for every program; keep only candidates that still satisfy the
        # def-use prerequisites, so the produced variant is really equivalent.
        if name in ("loop-fusion", "loop-shift") and check_dataflow(candidate):
            continue
        current = candidate
        applied.append(step)
    return current, applied


def apply_pipeline(
    program: Program, steps: Sequence[Tuple[Callable[..., Program], dict]]
) -> Program:
    """Apply an explicit list of ``(transformation, kwargs)`` steps in order."""
    current = program
    for transform, kwargs in steps:
        current = transform(current, **kwargs)
    return current
