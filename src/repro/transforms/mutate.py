"""Error injection (mutation) for evaluating the checker's diagnostics.

The paper motivates the tool by the error-proneness of manual index-expression
manipulation.  This module injects exactly those kinds of errors into a
(correctly) transformed program so that the test-suite and the benchmarks can
measure that the checker (i) detects the inequivalence and (ii) points at the
mutated statements / arrays.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..lang.ast import (
    ArrayRef,
    Assignment,
    BinOp,
    Expr,
    ForLoop,
    IntConst,
    Program,
    map_expr,
)
from .errors import TransformError
from .locate import find_assignment, statement_container
from .loop import _constant_value, _find_loop_like, loop_of_label

__all__ = [
    "Mutation",
    "perturb_read_index",
    "perturb_write_index",
    "replace_read_array",
    "change_operator",
    "shrink_loop_bound",
    "random_mutation",
]


class Mutation:
    """A description of one injected error (used to evaluate diagnostics)."""

    def __init__(self, kind: str, label: str, description: str, arrays: Tuple[str, ...] = ()):
        self.kind = kind
        self.label = label
        self.description = description
        self.arrays = arrays

    def __repr__(self) -> str:
        return f"Mutation({self.kind!r}, statement={self.label!r}: {self.description})"


def _mutate_nth_read(expr: Expr, array: Optional[str], occurrence: int, transform) -> Tuple[Expr, bool]:
    """Apply *transform* to the *occurrence*-th read (optionally of *array*) in *expr*."""
    counter = [0]
    hit = [False]

    def visit(node: Expr) -> Expr:
        if isinstance(node, ArrayRef) and (array is None or node.name == array):
            if counter[0] == occurrence and not hit[0]:
                hit[0] = True
                counter[0] += 1
                return transform(node)
            counter[0] += 1
        return node

    rebuilt = map_expr(expr, visit)
    return rebuilt, hit[0]


def perturb_read_index(
    program: Program, label: str, occurrence: int = 0, delta: int = 1, array: Optional[str] = None
) -> Tuple[Program, Mutation]:
    """Add *delta* to an index expression of a read in statement *label*."""
    result = program.clone()
    assignment = find_assignment(result, label)

    def transform(node: ArrayRef) -> ArrayRef:
        indices = [BinOp("+", node.indices[0].clone(), IntConst(delta))] + [
            index.clone() for index in node.indices[1:]
        ]
        return ArrayRef(node.name, indices)

    assignment.rhs, hit = _mutate_nth_read(assignment.rhs, array, occurrence, transform)
    if not hit:
        raise TransformError(f"statement {label!r} has no matching array read to perturb")
    mutation = Mutation(
        "read-index", label, f"read index of occurrence {occurrence} offset by {delta}",
        arrays=(array,) if array else (),
    )
    return result, mutation


def perturb_write_index(program: Program, label: str, delta: int = 1) -> Tuple[Program, Mutation]:
    """Add *delta* to the write index of statement *label* (breaks the access pattern)."""
    result = program.clone()
    assignment = find_assignment(result, label)
    indices = [BinOp("+", assignment.target.indices[0].clone(), IntConst(delta))] + [
        index.clone() for index in assignment.target.indices[1:]
    ]
    assignment.target = ArrayRef(assignment.target.name, indices)
    mutation = Mutation("write-index", label, f"write index offset by {delta}", arrays=(assignment.target.name,))
    return result, mutation


def replace_read_array(
    program: Program, label: str, old_array: str, new_array: str, occurrence: int = 0
) -> Tuple[Program, Mutation]:
    """Replace a read of *old_array* by a read of *new_array* (same indices)."""
    result = program.clone()
    assignment = find_assignment(result, label)

    def transform(node: ArrayRef) -> ArrayRef:
        return ArrayRef(new_array, [index.clone() for index in node.indices])

    assignment.rhs, hit = _mutate_nth_read(assignment.rhs, old_array, occurrence, transform)
    if not hit:
        raise TransformError(f"statement {label!r} does not read {old_array!r}")
    mutation = Mutation(
        "wrong-array", label, f"read of {old_array!r} replaced by {new_array!r}", arrays=(old_array, new_array)
    )
    return result, mutation


def change_operator(program: Program, label: str, old_op: str, new_op: str) -> Tuple[Program, Mutation]:
    """Change the first occurrence of *old_op* in statement *label* to *new_op*."""
    result = program.clone()
    assignment = find_assignment(result, label)
    changed = [False]

    def transform(node: Expr) -> Expr:
        if isinstance(node, BinOp) and node.op == old_op and not changed[0]:
            changed[0] = True
            return BinOp(new_op, node.lhs, node.rhs)
        return node

    assignment.rhs = map_expr(assignment.rhs, transform)
    if not changed[0]:
        raise TransformError(f"statement {label!r} has no {old_op!r} operator")
    mutation = Mutation("operator", label, f"operator {old_op!r} changed to {new_op!r}")
    return result, mutation


def shrink_loop_bound(program: Program, label: str, delta: int = 1) -> Tuple[Program, Mutation]:
    """Shrink the iteration range of the loop enclosing *label* (drops output elements)."""
    target = loop_of_label(program, label, -1)
    result = program.clone()
    loop = _find_loop_like(result, target)
    bound = _constant_value(loop.bound)
    if bound is None:
        raise TransformError("shrink_loop_bound requires a constant loop bound")
    loop.bound = IntConst(bound - delta if loop.step > 0 else bound + delta)
    mutation = Mutation("loop-bound", label, f"loop bound changed by {delta}")
    return result, mutation


def random_mutation(program: Program, rng: random.Random) -> Tuple[Program, Mutation]:
    """Inject one random error into *program* (raising if no mutation applies)."""
    assignments = [a for a in program.assignments() if a.label]
    rng.shuffle(assignments)
    for assignment in assignments:
        label = assignment.label or ""
        candidates = []
        reads = [n for n in _walk_reads(assignment.rhs)]
        if reads:
            candidates.append(lambda l=label: perturb_read_index(program, l, rng.randrange(len(reads)), rng.choice([1, -1, 2])))
        candidates.append(lambda l=label: perturb_write_index(program, l, rng.choice([1, -1])))
        inputs = list(program.input_arrays())
        # Deduplicate in first-read order (a set comprehension would make the
        # rng.choice below depend on the process's hash seed, breaking the
        # documented determinism of generated corpora).
        read_names = list(dict.fromkeys(r.name for r in reads))
        swappable = [name for name in read_names if name in inputs]
        if swappable and len(inputs) > 1:
            dims = {decl.name: len(decl.dims) for decl in program.params}
            old = rng.choice(swappable)
            # Only swap in an array of the same rank: the mutated program must
            # stay inside the allowed class so the checker answers "not
            # equivalent" rather than rejecting the input.
            replacements = [n for n in inputs if n != old and dims.get(n) == dims.get(old)]
            if replacements:
                new = rng.choice(replacements)
                candidates.append(lambda l=label, o=old, n=new: replace_read_array(program, l, o, n))
        if any(isinstance(n, BinOp) and n.op == "+" for n in _walk(assignment.rhs)):
            candidates.append(lambda l=label: change_operator(program, l, "+", "-"))
        rng.shuffle(candidates)
        for candidate in candidates:
            try:
                return candidate()
            except TransformError:
                continue
    raise TransformError("no mutation is applicable to this program")


def _walk(expr: Expr):
    yield expr
    for child in expr.children():
        yield from _walk(child)


def _walk_reads(expr: Expr) -> List[ArrayRef]:
    return [node for node in _walk(expr) if isinstance(node, ArrayRef)]
