"""Locating statements, loops and sub-expressions inside a program.

Transformations address their targets by statement label (every assignment in
the allowed class carries one), optionally refined with an expression *path*:
a tuple of 1-based operand positions descending from the root of the
right-hand side, mirroring :attr:`repro.addg.graph.OpNode.path`.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from ..lang.ast import (
    ArrayRef,
    Assignment,
    BinOp,
    Call,
    Expr,
    ForLoop,
    IfThenElse,
    Program,
    Statement,
    UnaryOp,
)
from .errors import LocateError

__all__ = [
    "find_assignment",
    "enclosing_loops",
    "statement_container",
    "loop_of_label",
    "get_subexpr",
    "replace_subexpr",
    "replace_statement_body",
]


def find_assignment(program: Program, label: str) -> Assignment:
    """The assignment statement carrying *label*."""
    for assignment in program.assignments():
        if assignment.label == label:
            return assignment
    raise LocateError(f"no assignment labelled {label!r}")


def enclosing_loops(program: Program, label: str) -> List[ForLoop]:
    """The loops enclosing the labelled assignment, outermost first."""
    result: List[ForLoop] = []

    def visit(statements: Sequence[Statement], stack: List[ForLoop]) -> bool:
        for statement in statements:
            if isinstance(statement, Assignment):
                if statement.label == label:
                    result.extend(stack)
                    return True
            elif isinstance(statement, ForLoop):
                if visit(statement.body, stack + [statement]):
                    return True
            elif isinstance(statement, IfThenElse):
                if visit(statement.then_body, stack) or visit(statement.else_body, stack):
                    return True
        return False

    if not visit(program.body, []):
        raise LocateError(f"no assignment labelled {label!r}")
    return result


def statement_container(program: Program, target: Statement) -> Tuple[List[Statement], int]:
    """The statement list that directly contains *target* and its index in it."""

    def visit(statements: List[Statement]) -> Optional[Tuple[List[Statement], int]]:
        for index, statement in enumerate(statements):
            if statement is target:
                return statements, index
            if isinstance(statement, ForLoop):
                found = visit(statement.body)
                if found:
                    return found
            elif isinstance(statement, IfThenElse):
                found = visit(statement.then_body)
                if found:
                    return found
                found = visit(statement.else_body)
                if found:
                    return found
        return None

    found = visit(program.body)
    if found is None:
        raise LocateError("statement is not part of the program")
    return found


def loop_of_label(program: Program, label: str, depth: int = -1) -> ForLoop:
    """The loop enclosing the labelled assignment.

    ``depth = -1`` (default) selects the innermost enclosing loop, ``0`` the
    outermost, and so on.
    """
    loops = enclosing_loops(program, label)
    if not loops:
        raise LocateError(f"assignment {label!r} is not enclosed by any loop")
    try:
        return loops[depth]
    except IndexError as exc:
        raise LocateError(
            f"assignment {label!r} has only {len(loops)} enclosing loop(s), depth {depth} requested"
        ) from exc


def get_subexpr(expr: Expr, path: Sequence[int]) -> Expr:
    """The sub-expression at *path* (1-based operand positions) of *expr*."""
    current = expr
    for position in path:
        children = _expr_children(current)
        if not (1 <= position <= len(children)):
            raise LocateError(f"expression path {tuple(path)} does not exist")
        current = children[position - 1]
    return current


def replace_subexpr(expr: Expr, path: Sequence[int], replacement: Expr) -> Expr:
    """A copy of *expr* with the sub-expression at *path* replaced."""
    if not path:
        return replacement.clone()
    position = path[0]
    children = _expr_children(expr)
    if not (1 <= position <= len(children)):
        raise LocateError(f"expression path {tuple(path)} does not exist")
    new_children = [
        replace_subexpr(child, path[1:], replacement) if index == position - 1 else child.clone()
        for index, child in enumerate(children)
    ]
    return _rebuild_expr(expr, new_children)


def _expr_children(expr: Expr) -> Tuple[Expr, ...]:
    if isinstance(expr, BinOp):
        return (expr.lhs, expr.rhs)
    if isinstance(expr, UnaryOp):
        return (expr.operand,)
    if isinstance(expr, Call):
        return expr.args
    return ()


def _rebuild_expr(expr: Expr, children: List[Expr]) -> Expr:
    if isinstance(expr, BinOp):
        return BinOp(expr.op, children[0], children[1])
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, children[0])
    if isinstance(expr, Call):
        return Call(expr.func, children)
    raise LocateError(f"cannot rebuild expression of type {type(expr).__name__}")


def replace_statement_body(program: Program, old: Statement, new: Sequence[Statement]) -> Program:
    """A copy-free in-place replacement of *old* by the statements *new*.

    The caller is expected to have cloned the program first (all public
    transformation entry points do).
    """
    container, index = statement_container(program, old)
    container[index : index + 1] = list(new)
    return program
