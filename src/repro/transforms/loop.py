"""Global loop transformations (fission, fusion, reversal, interchange, splitting, shifting).

These are the loop transformations of the paper's target transformation set:
they reorder and restructure the ``for`` loops of the program to improve the
temporal / spatial locality of array accesses.  The functions here are
*syntactic rewrites*: they do not verify legality — that is precisely the job
of the equivalence checker (the paper's a-posteriori verification philosophy).
All functions return a new program and leave the input untouched.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..lang.ast import (
    Assignment,
    BinOp,
    Expr,
    ForLoop,
    IfThenElse,
    IntConst,
    Program,
    Statement,
    VarRef,
    substitute_vars,
)
from .errors import TransformError
from .locate import enclosing_loops, loop_of_label, statement_container

__all__ = [
    "loop_fission",
    "loop_fusion",
    "loop_reversal",
    "loop_interchange",
    "loop_split",
    "loop_shift",
    "loop_normalize_steps",
]


def _constant_value(expr: Expr) -> Optional[int]:
    if isinstance(expr, IntConst):
        return expr.value
    return None


def _find_loop_like(program: Program, template: ForLoop) -> ForLoop:
    """Find the loop in *program* equal to *template* (used after cloning)."""
    for statement in program.statements():
        if isinstance(statement, ForLoop) and statement == template:
            return statement
    raise TransformError("loop not found in cloned program")


def loop_fission(program: Program, label: str, depth: int = -1) -> Program:
    """Distribute the loop enclosing *label* over its top-level body statements.

    ``for (k) { S1; S2; ... }`` becomes ``for (k) S1; for (k) S2; ...``.
    """
    target = loop_of_label(program, label, depth)
    result = program.clone()
    loop = _find_loop_like(result, target)
    if len(loop.body) < 2:
        raise TransformError("loop fission requires a loop body with at least two statements")
    replacements: List[Statement] = []
    for statement in loop.body:
        replacements.append(
            ForLoop(loop.var, loop.init.clone(), loop.cond_op, loop.bound.clone(), loop.step, [statement.clone()], loop.line)
        )
    container, index = statement_container(result, loop)
    container[index : index + 1] = replacements
    return result


def loop_fusion(program: Program, first_label: str, second_label: str) -> Program:
    """Fuse the loops enclosing the two labels into a single loop.

    The two loops must be adjacent siblings with identical bounds and step.
    """
    first_target = loop_of_label(program, first_label, 0)
    second_target = loop_of_label(program, second_label, 0)
    result = program.clone()
    first = _find_loop_like(result, first_target)
    second = _find_loop_like(result, second_target)
    container, index = statement_container(result, first)
    container2, index2 = statement_container(result, second)
    if container is not container2 or index2 != index + 1:
        raise TransformError("loop fusion requires two adjacent sibling loops")
    if (
        first.init != second.init
        or first.bound != second.bound
        or first.cond_op != second.cond_op
        or first.step != second.step
    ):
        raise TransformError("loop fusion requires identical loop headers")
    renamed_body = [
        _rename_iterator(statement, second.var, first.var) for statement in second.body
    ]
    fused = ForLoop(
        first.var,
        first.init.clone(),
        first.cond_op,
        first.bound.clone(),
        first.step,
        [s.clone() for s in first.body] + renamed_body,
        first.line,
    )
    container[index : index + 2] = [fused]
    return result


def _rename_iterator(statement: Statement, old: str, new: str) -> Statement:
    if old == new:
        return statement.clone()
    binding = {old: VarRef(new)}
    if isinstance(statement, Assignment):
        target = substitute_vars(statement.target, binding)
        return Assignment(statement.label, target, substitute_vars(statement.rhs, binding), statement.line)
    if isinstance(statement, ForLoop):
        return ForLoop(
            statement.var,
            substitute_vars(statement.init, binding),
            statement.cond_op,
            substitute_vars(statement.bound, binding),
            statement.step,
            [_rename_iterator(child, old, new) for child in statement.body],
            statement.line,
        )
    if isinstance(statement, IfThenElse):
        condition = statement.condition.clone()
        from ..lang.ast import And, Comparison

        def rename_condition(cond):
            if isinstance(cond, Comparison):
                return Comparison(cond.op, substitute_vars(cond.lhs, binding), substitute_vars(cond.rhs, binding))
            if isinstance(cond, And):
                return And([rename_condition(part) for part in cond.parts])
            raise TransformError("unsupported condition")

        return IfThenElse(
            rename_condition(statement.condition),
            [_rename_iterator(child, old, new) for child in statement.then_body],
            [_rename_iterator(child, old, new) for child in statement.else_body],
            statement.line,
        )
    raise TransformError(f"cannot rename iterator in {type(statement).__name__}")


def loop_reversal(program: Program, label: str, depth: int = -1) -> Program:
    """Reverse the iteration order of the loop enclosing *label*.

    Requires constant loop bounds (the common case after preprocessing).
    """
    target = loop_of_label(program, label, depth)
    result = program.clone()
    loop = _find_loop_like(result, target)
    init = _constant_value(loop.init)
    bound = _constant_value(loop.bound)
    if init is None or bound is None:
        raise TransformError("loop reversal requires constant loop bounds")
    step = loop.step
    values = _iteration_values(init, loop.cond_op, bound, step)
    if not values:
        raise TransformError("cannot reverse a loop with an empty iteration range")
    first, last = values[0], values[-1]
    new_loop = ForLoop(
        loop.var,
        IntConst(last),
        ">=" if step > 0 else "<=",
        IntConst(first),
        -step,
        [statement.clone() for statement in loop.body],
        loop.line,
    )
    container, index = statement_container(result, loop)
    container[index] = new_loop
    return result


def _iteration_values(init: int, cond_op: str, bound: int, step: int) -> List[int]:
    values = []
    current = init
    comparator = {
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }[cond_op]
    guard = 0
    while comparator(current, bound):
        values.append(current)
        current += step
        guard += 1
        if guard > 10_000_000:
            raise TransformError("loop range too large to reverse")
    return values


def loop_interchange(program: Program, label: str) -> Program:
    """Interchange the two innermost loops enclosing *label* (must be perfectly nested)."""
    loops = enclosing_loops(program, label)
    if len(loops) < 2:
        raise TransformError("loop interchange requires a loop nest of depth at least two")
    outer_target, inner_target = loops[-2], loops[-1]
    result = program.clone()
    outer = _find_loop_like(result, outer_target)
    if len(outer.body) != 1 or not isinstance(outer.body[0], ForLoop):
        raise TransformError("loop interchange requires perfectly nested loops")
    inner = outer.body[0]
    if _depends_on(inner.init, outer.var) or _depends_on(inner.bound, outer.var):
        raise TransformError("loop interchange requires rectangular (non-triangular) loop nests")
    new_inner = ForLoop(
        outer.var,
        outer.init.clone(),
        outer.cond_op,
        outer.bound.clone(),
        outer.step,
        [statement.clone() for statement in inner.body],
        outer.line,
    )
    new_outer = ForLoop(
        inner.var,
        inner.init.clone(),
        inner.cond_op,
        inner.bound.clone(),
        inner.step,
        [new_inner],
        inner.line,
    )
    container, index = statement_container(result, outer)
    container[index] = new_outer
    return result


def _depends_on(expr: Expr, var: str) -> bool:
    from ..lang.ast import walk_expr

    return any(isinstance(node, VarRef) and node.name == var for node in walk_expr(expr))


def loop_split(program: Program, label: str, at: int, depth: int = -1) -> Program:
    """Split the iteration range of the loop enclosing *label* at value *at*.

    ``for (k = lo; k < hi; k++) S`` becomes two consecutive loops over
    ``[lo, at)`` and ``[at, hi)`` (adjusted analogously for other condition
    operators and for negative steps).
    """
    target = loop_of_label(program, label, depth)
    result = program.clone()
    loop = _find_loop_like(result, target)
    existing_labels = {a.label for a in result.assignments() if a.label}
    second_body = [_relabel(s.clone(), existing_labels) for s in loop.body]
    if loop.step > 0:
        first = ForLoop(
            loop.var, loop.init.clone(), "<", IntConst(at), loop.step,
            [s.clone() for s in loop.body], loop.line,
        )
        second = ForLoop(
            loop.var, IntConst(at), loop.cond_op, loop.bound.clone(), loop.step,
            second_body, loop.line,
        )
    else:
        first = ForLoop(
            loop.var, loop.init.clone(), ">=", IntConst(at), loop.step,
            [s.clone() for s in loop.body], loop.line,
        )
        second = ForLoop(
            loop.var, IntConst(at - 1), loop.cond_op, loop.bound.clone(), loop.step,
            second_body, loop.line,
        )
    container, index = statement_container(result, loop)
    container[index : index + 1] = [first, second]
    return result


def _relabel(statement: Statement, existing_labels: set) -> Statement:
    """Give duplicated assignments fresh labels (keeping labels unique program-wide)."""
    if isinstance(statement, Assignment):
        if statement.label:
            candidate = statement.label + "b"
            while candidate in existing_labels:
                candidate += "b"
            existing_labels.add(candidate)
            return Assignment(candidate, statement.target, statement.rhs, statement.line)
        return statement
    if isinstance(statement, ForLoop):
        statement.body = [_relabel(child, existing_labels) for child in statement.body]
        return statement
    if isinstance(statement, IfThenElse):
        statement.then_body = [_relabel(child, existing_labels) for child in statement.then_body]
        statement.else_body = [_relabel(child, existing_labels) for child in statement.else_body]
        return statement
    return statement


def loop_shift(program: Program, label: str, offset: int, depth: int = -1) -> Program:
    """Shift the iteration variable of the loop enclosing *label* by *offset*.

    The loop ``for (k = lo; k < hi; k += s) S(k)`` becomes
    ``for (k = lo + offset; k < hi + offset; k += s) S(k - offset)``.
    """
    target = loop_of_label(program, label, depth)
    result = program.clone()
    loop = _find_loop_like(result, target)
    shifted_body = [
        _substitute_in_statement(statement, loop.var, BinOp("-", VarRef(loop.var), IntConst(offset)))
        for statement in loop.body
    ]
    new_loop = ForLoop(
        loop.var,
        BinOp("+", loop.init.clone(), IntConst(offset)),
        loop.cond_op,
        BinOp("+", loop.bound.clone(), IntConst(offset)),
        loop.step,
        shifted_body,
        loop.line,
    )
    container, index = statement_container(result, loop)
    container[index] = new_loop
    return result


def _substitute_in_statement(statement: Statement, var: str, replacement: Expr) -> Statement:
    binding = {var: replacement}
    if isinstance(statement, Assignment):
        return Assignment(
            statement.label,
            substitute_vars(statement.target, binding),
            substitute_vars(statement.rhs, binding),
            statement.line,
        )
    if isinstance(statement, ForLoop):
        return ForLoop(
            statement.var,
            substitute_vars(statement.init, binding),
            statement.cond_op,
            substitute_vars(statement.bound, binding),
            statement.step,
            [_substitute_in_statement(child, var, replacement) for child in statement.body],
            statement.line,
        )
    if isinstance(statement, IfThenElse):
        from ..lang.ast import And, Comparison

        def substitute_condition(cond):
            if isinstance(cond, Comparison):
                return Comparison(cond.op, substitute_vars(cond.lhs, binding), substitute_vars(cond.rhs, binding))
            if isinstance(cond, And):
                return And([substitute_condition(part) for part in cond.parts])
            raise TransformError("unsupported condition")

        return IfThenElse(
            substitute_condition(statement.condition),
            [_substitute_in_statement(child, var, replacement) for child in statement.then_body],
            [_substitute_in_statement(child, var, replacement) for child in statement.else_body],
            statement.line,
        )
    raise TransformError(f"cannot substitute in {type(statement).__name__}")


def loop_normalize_steps(program: Program, label: str, depth: int = -1) -> Program:
    """Rewrite a strided loop ``for (k = lo; k < hi; k += s)`` into a unit-step loop.

    The body accesses ``lo + s*k`` where it used to access ``k``; this is the
    classical loop-normalisation preprocessing transformation.
    """
    target = loop_of_label(program, label, depth)
    result = program.clone()
    loop = _find_loop_like(result, target)
    init = _constant_value(loop.init)
    bound = _constant_value(loop.bound)
    if init is None or bound is None:
        raise TransformError("loop normalisation requires constant loop bounds")
    values = _iteration_values(init, loop.cond_op, bound, loop.step)
    count = len(values)
    replacement = BinOp(
        "+", IntConst(init), BinOp("*", IntConst(loop.step), VarRef(loop.var))
    )
    new_body = [_substitute_in_statement(statement, loop.var, replacement) for statement in loop.body]
    new_loop = ForLoop(loop.var, IntConst(0), "<", IntConst(count), 1, new_body, loop.line)
    container, index = statement_container(result, loop)
    container[index] = new_loop
    return result
