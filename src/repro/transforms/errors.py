"""Exceptions raised by the source-to-source transformation engine."""


class TransformError(Exception):
    """Raised when a transformation cannot be applied to the given program."""


class LocateError(TransformError):
    """Raised when the statement / loop / expression a transformation targets cannot be found."""
