"""Source-to-source transformations: loop, data-flow, algebraic, and error injection."""

from .algebraic import (
    collect_chain,
    commute_operands,
    random_reassociation,
    reassociate_chain,
    rebuild_chain,
    rotate_left,
    rotate_right,
)
from .dataflow import forward_substitution, introduce_temporary
from .errors import LocateError, TransformError
from .loop import (
    loop_fission,
    loop_fusion,
    loop_interchange,
    loop_normalize_steps,
    loop_reversal,
    loop_shift,
    loop_split,
)
from .mutate import (
    Mutation,
    change_operator,
    perturb_read_index,
    perturb_write_index,
    random_mutation,
    replace_read_array,
    shrink_loop_bound,
)
from .pipeline import (
    Probe,
    TransformStep,
    apply_pipeline,
    apply_random_transforms,
    compose_random_pipeline,
    default_probes,
    extended_probes,
)

__all__ = [
    "LocateError",
    "Mutation",
    "Probe",
    "TransformError",
    "TransformStep",
    "apply_pipeline",
    "apply_random_transforms",
    "compose_random_pipeline",
    "default_probes",
    "extended_probes",
    "change_operator",
    "collect_chain",
    "commute_operands",
    "forward_substitution",
    "introduce_temporary",
    "loop_fission",
    "loop_fusion",
    "loop_interchange",
    "loop_normalize_steps",
    "loop_reversal",
    "loop_shift",
    "loop_split",
    "perturb_read_index",
    "perturb_write_index",
    "random_mutation",
    "random_reassociation",
    "reassociate_chain",
    "rebuild_chain",
    "replace_read_array",
    "rotate_left",
    "rotate_right",
    "shrink_loop_bound",
]
