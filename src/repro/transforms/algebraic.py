"""Global algebraic data-flow transformations (associativity / commutativity).

These rewrites exploit the algebraic properties of operators — exactly the
transformations whose verification is the headline contribution of the paper
(Section 4, Fig. 3).  They operate purely syntactically on expression trees;
combined with expression propagation they produce globally reorganised
data-flow such as the paper's version (c).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..lang.ast import Assignment, BinOp, Expr, Program
from .errors import TransformError
from .locate import find_assignment, get_subexpr, replace_subexpr

__all__ = [
    "commute_operands",
    "rotate_left",
    "rotate_right",
    "reassociate_chain",
    "random_reassociation",
    "collect_chain",
    "rebuild_chain",
]


def commute_operands(program: Program, label: str, path: Sequence[int] = ()) -> Program:
    """Swap the two operands of the binary operator at *path* in statement *label*."""
    result = program.clone()
    assignment = find_assignment(result, label)
    node = get_subexpr(assignment.rhs, path)
    if not isinstance(node, BinOp):
        raise TransformError("commutation target is not a binary operation")
    swapped = BinOp(node.op, node.rhs.clone(), node.lhs.clone())
    assignment.rhs = replace_subexpr(assignment.rhs, path, swapped)
    return result


def rotate_left(program: Program, label: str, path: Sequence[int] = ()) -> Program:
    """Associativity rewrite ``a op (b op c)  ->  (a op b) op c`` at *path*."""
    result = program.clone()
    assignment = find_assignment(result, label)
    node = get_subexpr(assignment.rhs, path)
    if not (isinstance(node, BinOp) and isinstance(node.rhs, BinOp) and node.rhs.op == node.op):
        raise TransformError("rotate_left requires a right-nested chain of the same operator")
    rotated = BinOp(node.op, BinOp(node.op, node.lhs.clone(), node.rhs.lhs.clone()), node.rhs.rhs.clone())
    assignment.rhs = replace_subexpr(assignment.rhs, path, rotated)
    return result


def rotate_right(program: Program, label: str, path: Sequence[int] = ()) -> Program:
    """Associativity rewrite ``(a op b) op c  ->  a op (b op c)`` at *path*."""
    result = program.clone()
    assignment = find_assignment(result, label)
    node = get_subexpr(assignment.rhs, path)
    if not (isinstance(node, BinOp) and isinstance(node.lhs, BinOp) and node.lhs.op == node.op):
        raise TransformError("rotate_right requires a left-nested chain of the same operator")
    rotated = BinOp(node.op, node.lhs.lhs.clone(), BinOp(node.op, node.lhs.rhs.clone(), node.rhs.clone()))
    assignment.rhs = replace_subexpr(assignment.rhs, path, rotated)
    return result


def collect_chain(expr: Expr, op: str) -> List[Expr]:
    """The operands of the maximal *op*-chain rooted at *expr*, left to right."""
    if isinstance(expr, BinOp) and expr.op == op:
        return collect_chain(expr.lhs, op) + collect_chain(expr.rhs, op)
    return [expr]


def rebuild_chain(operands: Sequence[Expr], op: str, left_assoc: bool = True) -> Expr:
    """Rebuild an *op*-chain over *operands* with the requested association."""
    if not operands:
        raise TransformError("cannot rebuild an empty chain")
    operands = [operand.clone() for operand in operands]
    if len(operands) == 1:
        return operands[0]
    if left_assoc:
        result = operands[0]
        for operand in operands[1:]:
            result = BinOp(op, result, operand)
        return result
    result = operands[-1]
    for operand in reversed(operands[:-1]):
        result = BinOp(op, operand, result)
    return result


def reassociate_chain(
    program: Program,
    label: str,
    order: Optional[Sequence[int]] = None,
    op: str = "+",
    left_assoc: bool = True,
    path: Sequence[int] = (),
) -> Program:
    """Reorder and re-associate the *op*-chain at *path* of statement *label*.

    *order* is a permutation of the chain positions (identity if omitted).
    Reordering uses commutativity, re-association uses associativity — the
    checker must therefore be run with both properties declared to verify the
    result (which is the point of the exercise).
    """
    result = program.clone()
    assignment = find_assignment(result, label)
    node = get_subexpr(assignment.rhs, path)
    operands = collect_chain(node, op)
    if len(operands) < 2:
        raise TransformError(f"statement {label!r} has no {op!r}-chain to reassociate")
    if order is None:
        order = list(range(len(operands)))
    if sorted(order) != list(range(len(operands))):
        raise TransformError(f"order {order!r} is not a permutation of the {len(operands)} operand positions")
    reordered = [operands[i] for i in order]
    assignment.rhs = replace_subexpr(assignment.rhs, path, rebuild_chain(reordered, op, left_assoc))
    return result


def random_reassociation(program: Program, label: str, rng: random.Random, op: str = "+") -> Program:
    """Apply a random commutation + re-association to the *op*-chain of statement *label*."""
    assignment = find_assignment(program, label)
    operands = collect_chain(assignment.rhs, op)
    if len(operands) < 2:
        raise TransformError(f"statement {label!r} has no {op!r}-chain to reassociate")
    order = list(range(len(operands)))
    rng.shuffle(order)
    return reassociate_chain(program, label, order, op=op, left_assoc=bool(rng.getrandbits(1)))
