"""Scenario corpora: JSONL persistence and conversion to verification jobs.

A persisted corpus is one JSON object per line, each the
:meth:`~repro.scenarios.pair.ScenarioPair.to_dict` form of one pair (sources
as mini-C text, sorted keys).  The serialisation is the engine's determinism
contract: equal :class:`~repro.scenarios.spec.ScenarioSpec` values must yield
byte-identical corpus files, which :func:`corpus_digest` condenses into one
comparable SHA-256 hex digest.

:func:`scenario_jobs` turns pairs into :class:`~repro.service.job.VerificationJob`
values for the batch executor; the expected label, transformation trace,
mutation info and oracle verdict ride along in ``metadata``, where the report
aggregator (:func:`repro.service.report.aggregate_results`) picks them up to
build the checker-vs-expected-vs-oracle confusion matrix.
"""

from __future__ import annotations

import hashlib
import json
from typing import Iterable, List, Optional, Sequence

from ..service.job import VerificationJob
from ..verifier import CheckOptions
from .pair import ScenarioPair

__all__ = [
    "corpus_digest",
    "read_corpus",
    "scenario_jobs",
    "serialize_pair",
    "write_corpus",
]


def serialize_pair(pair: ScenarioPair) -> str:
    """The canonical one-line JSON form of *pair* (sorted keys, no spaces)."""
    return json.dumps(pair.to_dict(), sort_keys=True, separators=(",", ":"))


def write_corpus(target, pairs: Iterable[ScenarioPair]) -> None:
    """Write *pairs* as JSONL to *target* (path or text file)."""
    if hasattr(target, "write"):
        for pair in pairs:
            target.write(serialize_pair(pair) + "\n")
        return
    with open(target, "w", encoding="utf-8") as handle:
        write_corpus(handle, pairs)


def read_corpus(path: str) -> List[ScenarioPair]:
    """Read a JSONL corpus back into pairs (inverse of :func:`write_corpus`)."""
    pairs: List[ScenarioPair] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                pairs.append(ScenarioPair.from_dict(json.loads(line)))
    return pairs


def corpus_digest(pairs: Sequence[ScenarioPair]) -> str:
    """SHA-256 over the canonical serialisation of *pairs*.

    Equal specs must produce equal digests across processes and hash seeds —
    the regression tests compare digests computed in subprocesses running
    under different ``PYTHONHASHSEED`` values.
    """
    digest = hashlib.sha256()
    for pair in pairs:
        digest.update(serialize_pair(pair).encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


def scenario_jobs(
    pairs: Sequence[ScenarioPair],
    options: Optional[CheckOptions] = None,
) -> List[VerificationJob]:
    """Turn scenario pairs into verification jobs for the batch executor.

    Sources are re-rendered program text (the same form the corpus persists),
    so a job built from an in-memory pair equals one built from the pair read
    back from disk — fingerprints and verdict-cache keys agree.
    """
    from ..lang import program_to_text

    jobs: List[VerificationJob] = []
    for pair in pairs:
        metadata = {
            "source": "scenario",
            "base": pair.base,
            "scenario_seed": pair.seed,
            "expected_label": pair.expected_label,
            "trace": [step.to_dict() for step in pair.trace],
            "mutation": dict(pair.mutation) if pair.mutation is not None else None,
            "oracle": pair.oracle.to_dict() if pair.oracle is not None else None,
        }
        jobs.append(
            VerificationJob(
                name=pair.name,
                original_source=program_to_text(pair.original),
                transformed_source=program_to_text(pair.transformed),
                options=options if options is not None else CheckOptions(),
                expected_equivalent=pair.expected_equivalent,
                metadata=metadata,
            )
        )
    return jobs
