"""Scenario engine: manufactured, labelled corpora for self-exercising checks.

The paper verifies equivalence across *sequences* of loop and data-flow
transformations; this package manufactures exactly that regime at scale and
cross-checks every checker verdict against an independent execution oracle:

* :mod:`~repro.scenarios.spec` — :class:`ScenarioSpec`, the deterministic
  knob set (seed, pair count, pipeline depth, mutation rate, oracle trials);
* :mod:`~repro.scenarios.engine` — :func:`build_scenarios`: composed,
  applicability-probed transformation pipelines over the kernel suite and
  randomly generated programs, paired with oracle-validated mutated twins;
* :mod:`~repro.scenarios.oracle` — :func:`differential_label`, the
  interpreter-based differential oracle and its :class:`OracleVerdict`;
* :mod:`~repro.scenarios.pair` — :class:`ScenarioPair`, a labelled pair with
  its transformation trace;
* :mod:`~repro.scenarios.corpus` — JSONL persistence, corpus digests and the
  bridge into :class:`~repro.service.job.VerificationJob` batches.

The ``repro-eqcheck fuzz`` CLI subcommand drives the whole loop: build a
corpus, label it with the oracle, run it through the batch service, and
report the checker-vs-expected-vs-oracle confusion matrix (any soundness
disagreement — checker EQUIVALENT against an oracle witness — is a hard
error).  See ``docs/scenarios.md``.
"""

from .corpus import corpus_digest, read_corpus, scenario_jobs, serialize_pair, write_corpus
from .engine import build_scenarios
from .oracle import OracleReference, OracleVerdict, differential_label
from .pair import LABEL_EQUIVALENT, LABEL_NOT_EQUIVALENT, LABEL_UNKNOWN, ScenarioPair
from .spec import SMALL_KERNEL_PARAMS, ScenarioSpec

__all__ = [
    "LABEL_EQUIVALENT",
    "LABEL_NOT_EQUIVALENT",
    "LABEL_UNKNOWN",
    "OracleReference",
    "OracleVerdict",
    "SMALL_KERNEL_PARAMS",
    "ScenarioPair",
    "ScenarioSpec",
    "build_scenarios",
    "corpus_digest",
    "differential_label",
    "read_corpus",
    "scenario_jobs",
    "serialize_pair",
    "write_corpus",
]
