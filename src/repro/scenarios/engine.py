"""The scenario engine: composed pipelines plus oracle-validated buggy twins.

For every scenario the engine

1. draws a **base program** — a random multi-stage array program
   (:class:`~repro.workloads.generator.RandomProgramGenerator`) or a shrunken
   DSP kernel original (:data:`~repro.scenarios.spec.SMALL_KERNEL_PARAMS`);
2. composes a **transformation pipeline** of random depth from the extended
   probe set (:func:`repro.transforms.pipeline.extended_probes`): loop
   reversal / fission / fusion / splitting / shifting / interchange / step
   normalisation, forward substitution, temporary introduction, algebraic
   reassociation, commutation and rotation — every step applicability-probed
   and, for the structural rewrites, validated against the def-use
   prerequisites so the resulting variant is genuinely equivalent;
3. labels the pair with the **differential interpreter oracle** and emits it
   as expected-``EQUIVALENT``;
4. with probability ``mutation_rate``, additionally injects one random error
   (:func:`repro.transforms.mutate.random_mutation`) into the transformed
   member and emits the result as an expected-``NOT_EQUIVALENT`` twin.  The
   mutation is **oracle-validated**: candidates the interpreter cannot
   distinguish from the original (semantically invisible mutations) are
   redrawn up to ``mutation_retries`` times, so the corpus contains no
   silently no-op mutations and every buggy label is backed by a concrete
   witness input.

Everything is derived from :meth:`ScenarioSpec.scenario_seed` string seeds,
so corpora are byte-identical across processes and hash seeds.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..lang import Program, parse_program, program_to_text
from ..transforms import TransformStep, compose_random_pipeline, extended_probes, random_mutation
from ..transforms.errors import TransformError
from ..workloads import RandomProgramGenerator, kernel_names, kernel_pair
from .oracle import LABEL_EQUIVALENT, LABEL_NOT_EQUIVALENT, OracleReference, OracleVerdict
from .pair import ScenarioPair
from .spec import SMALL_KERNEL_PARAMS, ScenarioSpec

from ..telemetry import TRACER as _TRACER

__all__ = ["build_scenarios"]


def _canonical(program: Program) -> Program:
    """Round-trip *program* through the printer and parser.

    Transformations build expressions like ``0 + 2`` in loop bounds, which
    the parser constant-folds on re-parse; pairs therefore store the
    print/parse fixpoint, so a corpus written to disk and read back is
    byte-identical to the in-memory one (and the oracle and checker judge
    exactly the programs the corpus persists).
    """
    return parse_program(program_to_text(program))


def _resolved_kernels(spec: ScenarioSpec) -> List[str]:
    if any(name == "all" for name in spec.kernels):
        return kernel_names()
    return sorted(spec.kernels)


def _base_program(spec: ScenarioSpec, index: int, rng: random.Random) -> Tuple[str, Program]:
    """Draw the base program of scenario *index* (kernel or generated)."""
    kernels = _resolved_kernels(spec)
    if kernels and rng.random() < spec.kernel_fraction:
        name = rng.choice(kernels)
        pair = kernel_pair(name, **SMALL_KERNEL_PARAMS.get(name, {}))
        return f"kernel/{name}", pair.original
    generator_seed = spec.seed * 100_003 + index
    generator = RandomProgramGenerator(
        seed=generator_seed,
        stages=rng.randint(*spec.stages_range),
        size=spec.size,
    )
    return f"gen/{generator_seed}", generator.generate()


def _validated_mutation(
    spec: ScenarioSpec,
    oracle: OracleReference,
    transformed: Program,
    rng: random.Random,
) -> Optional[Tuple[Program, dict, OracleVerdict]]:
    """Draw a mutation of *transformed* that *oracle* distinguishes from its original.

    Returns ``None`` when no applicable mutation survives validation within
    ``mutation_retries`` draws (rare: it needs every candidate mutation to be
    semantically invisible on every sampled input).
    """
    for _ in range(max(1, spec.mutation_retries)):
        try:
            mutated, mutation = random_mutation(transformed, rng)
        except TransformError:
            return None
        verdict = oracle.label(mutated)
        if verdict.label == LABEL_NOT_EQUIVALENT:
            info = {
                "kind": mutation.kind,
                "label": mutation.label,
                "description": mutation.description,
                "arrays": list(mutation.arrays),
            }
            return mutated, info, verdict
    return None


def build_scenarios(spec: ScenarioSpec) -> List[ScenarioPair]:
    """Manufacture the labelled scenario corpus described by *spec*."""
    with _TRACER.span("scenario.build", "scenario", pairs=spec.pairs):
        return _build_scenarios(spec)


def _build_scenarios(spec: ScenarioSpec) -> List[ScenarioPair]:
    probes = extended_probes()
    pairs: List[ScenarioPair] = []
    for index in range(spec.pairs):
        rng = random.Random(spec.scenario_seed(index))
        base_id, base = _base_program(spec, index, rng)
        depth = rng.randint(1, spec.max_depth)
        with _TRACER.span("scenario.pipeline", "scenario", index=index, base=base_id, steps=depth):
            transformed, trace = compose_random_pipeline(
                base, rng, steps=depth, probes=probes
            )
        base = _canonical(base)
        transformed = _canonical(transformed)
        # One reference per scenario: the oracle executes the base program
        # once per trial seed and reuses the outputs for the equivalent pair
        # and for every mutation-validation retry below.
        oracle = OracleReference(
            base, trials=spec.oracle_trials, base_seed=spec.oracle_seed
        )
        with _TRACER.span("scenario.oracle", "scenario", index=index):
            verdict = oracle.label(transformed)
        pairs.append(
            ScenarioPair(
                name=f"scenario/{index:04d}",
                base=base_id,
                original=base,
                transformed=transformed,
                expected_label=LABEL_EQUIVALENT,
                trace=list(trace),
                mutation=None,
                seed=spec.scenario_seed(index),
                oracle=verdict,
            )
        )
        if rng.random() >= spec.mutation_rate:
            continue
        mutation_rng = random.Random(spec.scenario_seed(index, "mutation"))
        with _TRACER.span("scenario.mutation", "scenario", index=index):
            validated = _validated_mutation(spec, oracle, transformed, mutation_rng)
        if validated is None:
            continue
        mutated, info, bug_verdict = validated
        mutated = _canonical(mutated)
        bug_trace = list(trace) + [
            TransformStep(
                "mutation",
                f"{info['kind']} at {info['label']}: {info['description']}",
                snapshot_source=program_to_text(mutated),
            )
        ]
        pairs.append(
            ScenarioPair(
                name=f"scenario/{index:04d}-bug",
                base=base_id,
                original=base,
                transformed=mutated,
                expected_label=LABEL_NOT_EQUIVALENT,
                trace=bug_trace,
                mutation=info,
                seed=spec.scenario_seed(index, "mutation"),
                oracle=bug_verdict,
            )
        )
    return pairs
