"""The differential interpreter oracle: an independent labelling of pairs.

The checker (:mod:`repro.verifier`) decides equivalence *symbolically*; the
oracle decides it *operationally*, by executing both programs of a pair with
:func:`repro.lang.interpreter.run_program` on deterministic pseudo-random
inputs and comparing the output arrays.  The two judgements are produced by
entirely disjoint code paths (the interpreter shares only the AST with the
checker), which is what makes the cross-check meaningful:

* oracle ``NOT_EQUIVALENT`` is *definitive* — a concrete input witnesses the
  difference, so a checker verdict of EQUIVALENT on the same pair is a
  soundness bug (the hard-error case of the fuzz report);
* oracle ``EQUIVALENT`` means "agreed on every sampled input" — it cannot
  prove equivalence, so a checker NOT-EQUIVALENT verdict against it only
  counts as (possible) incompleteness, never as an error.

A program that raises :class:`~repro.lang.errors.InterpreterError` while its
partner runs cleanly is distinguishable by that very input (reads of undefined
elements are observable behaviour in the allowed class); when the *original*
program fails the oracle abstains with ``UNKNOWN``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..lang import Program, outputs_equal, random_input_provider, run_program
from ..lang.errors import InterpreterError

__all__ = ["OracleReference", "OracleVerdict", "differential_label"]

#: Oracle / expected-label vocabulary (shared with :mod:`repro.scenarios.pair`).
LABEL_EQUIVALENT = "EQUIVALENT"
LABEL_NOT_EQUIVALENT = "NOT_EQUIVALENT"
LABEL_UNKNOWN = "UNKNOWN"


@dataclass(frozen=True)
class OracleVerdict:
    """The oracle's judgement of one (original, transformed) pair.

    ``witness_seed`` is the input-provider seed that distinguished the pair
    (``None`` unless the label is ``NOT_EQUIVALENT``); re-running the two
    programs under ``random_input_provider(witness_seed)`` reproduces the
    difference.
    """

    label: str
    trials: int
    witness_seed: Optional[int] = None
    detail: str = ""

    @property
    def distinguished(self) -> bool:
        return self.label == LABEL_NOT_EQUIVALENT

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "trials": self.trials,
            "witness_seed": self.witness_seed,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "OracleVerdict":
        return cls(
            label=data["label"],
            trials=int(data.get("trials", 0)),
            witness_seed=data.get("witness_seed"),
            detail=data.get("detail", ""),
        )


class OracleReference:
    """One original program's cached reference runs, reusable across candidates.

    The engine labels several candidates against the same original (the
    transformed variant, then up to ``mutation_retries`` mutated twins); the
    reference outputs per trial seed never change, so they are executed once
    and memoized.  :meth:`label` produces verdicts identical to
    :func:`differential_label` — including the lazy trial order, so an
    original that fails on a late seed still yields ``NOT_EQUIVALENT`` when
    an earlier seed already distinguishes the candidate.
    """

    def __init__(
        self,
        original: Program,
        trials: int = 3,
        base_seed: int = 0,
        low: int = -64,
        high: int = 64,
    ):
        self.original = original
        self.trials = max(1, trials)
        self.base_seed = base_seed
        self.low = low
        self.high = high
        self._runs: Dict[int, tuple] = {}  # trial -> ("ok", outputs) | ("error", message)

    def _reference(self, trial: int) -> tuple:
        if trial not in self._runs:
            provider = random_input_provider(self.base_seed + trial, self.low, self.high)
            try:
                self._runs[trial] = ("ok", run_program(self.original, provider))
            except InterpreterError as error:
                self._runs[trial] = ("error", str(error))
        return self._runs[trial]

    def label(self, transformed: Program) -> OracleVerdict:
        """The oracle's judgement of (original, *transformed*)."""
        for trial in range(self.trials):
            seed = self.base_seed + trial
            kind, reference = self._reference(trial)
            if kind == "error":
                return OracleVerdict(
                    LABEL_UNKNOWN, trial + 1, None,
                    f"original failed on seed {seed}: {reference}",
                )
            provider = random_input_provider(seed, self.low, self.high)
            try:
                candidate = run_program(transformed, provider)
            except InterpreterError as error:
                return OracleVerdict(
                    LABEL_NOT_EQUIVALENT,
                    trial + 1,
                    seed,
                    f"transformed failed on seed {seed}: {error}",
                )
            if not outputs_equal(reference, candidate):
                return OracleVerdict(
                    LABEL_NOT_EQUIVALENT, trial + 1, seed, f"outputs differ on seed {seed}"
                )
        return OracleVerdict(LABEL_EQUIVALENT, self.trials)


def differential_label(
    original: Program,
    transformed: Program,
    trials: int = 3,
    base_seed: int = 0,
    low: int = -64,
    high: int = 64,
) -> OracleVerdict:
    """Execute both programs on *trials* seeded random inputs and compare.

    The input providers are pure functions of ``(seed, array, index)``, so
    both programs observe identical abstract inputs regardless of their
    access order, and any reported witness seed replays exactly.  Labelling
    several candidates against one original?  Build one
    :class:`OracleReference` and call :meth:`~OracleReference.label`
    repeatedly — same verdicts, the original executed once per trial seed.
    """
    return OracleReference(original, trials, base_seed, low, high).label(transformed)
