"""The labelled scenario pair: programs, expected label, trace, oracle verdict.

A :class:`ScenarioPair` is one manufactured test case for the checker: an
(original, transformed) pair together with

* the **expected label** — ``EQUIVALENT`` when the transformed member was
  produced purely by equivalence-preserving rewrites, ``NOT_EQUIVALENT`` when
  one mutation was additionally injected;
* the **transformation trace** — the exact probe steps that produced the
  transformed member (and the mutation, for buggy twins), so every pair is
  explainable and the distribution of exercised transformations measurable;
* the **oracle verdict** — the differential interpreter's independent
  judgement (:mod:`repro.scenarios.oracle`).

Pairs serialise to plain JSON dictionaries carrying the two programs as
mini-C source text, which keeps persisted corpora diffable, re-parsable and
byte-stable across processes (the determinism contract of the engine).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..lang import Program, parse_program, program_to_text
from ..transforms import TransformStep
from .oracle import LABEL_EQUIVALENT, LABEL_NOT_EQUIVALENT, LABEL_UNKNOWN, OracleVerdict

__all__ = [
    "LABEL_EQUIVALENT",
    "LABEL_NOT_EQUIVALENT",
    "LABEL_UNKNOWN",
    "ScenarioPair",
]


@dataclass
class ScenarioPair:
    """One labelled (original, transformed) scenario with full provenance."""

    name: str
    base: str
    original: Program
    transformed: Program
    expected_label: str
    trace: List[TransformStep] = field(default_factory=list)
    mutation: Optional[Dict[str, Any]] = None
    seed: str = ""
    oracle: Optional[OracleVerdict] = None

    @property
    def expected_equivalent(self) -> bool:
        return self.expected_label == LABEL_EQUIVALENT

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "base": self.base,
            "original_source": program_to_text(self.original),
            "transformed_source": program_to_text(self.transformed),
            "expected_label": self.expected_label,
            "trace": [step.to_dict() for step in self.trace],
            "mutation": dict(self.mutation) if self.mutation is not None else None,
            "seed": self.seed,
            "oracle": self.oracle.to_dict() if self.oracle is not None else None,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScenarioPair":
        oracle = data.get("oracle")
        return cls(
            name=data["name"],
            base=data.get("base", ""),
            original=parse_program(data["original_source"]),
            transformed=parse_program(data["transformed_source"]),
            expected_label=data["expected_label"],
            trace=[TransformStep.from_dict(step) for step in data.get("trace", [])],
            mutation=dict(data["mutation"]) if data.get("mutation") is not None else None,
            seed=data.get("seed", ""),
            oracle=OracleVerdict.from_dict(oracle) if oracle is not None else None,
        )
