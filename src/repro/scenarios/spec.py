"""The knob set of the scenario engine.

A :class:`ScenarioSpec` fully determines a corpus: two runs with equal specs
produce byte-identical serialised corpora (see
:func:`repro.scenarios.corpus.corpus_digest` and the determinism regression
tests).  All randomness is derived from string seeds of the form
``"<seed>:<index>:<role>"`` via :class:`random.Random`, which seeds through
SHA-512 and is therefore independent of the process's hash seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Sequence, Tuple

from ..workloads import SMALL_KERNEL_PARAMS

__all__ = ["ScenarioSpec", "SMALL_KERNEL_PARAMS"]


@dataclass(frozen=True)
class ScenarioSpec:
    """What the scenario corpus should contain.

    ``pairs`` counts *scenarios*: each scenario contributes one expected-
    equivalent pair (a composed transformation pipeline applied to a base
    program) and, with probability ``mutation_rate``, one additional
    known-buggy twin (the same transformed program with one oracle-validated
    mutation injected).  ``max_depth`` bounds the pipeline length; the actual
    depth of each scenario is drawn uniformly from ``[1, max_depth]``.

    Base programs are drawn from the random program generator (domain
    ``size``, ``stages`` drawn from ``stages_range``) and — with probability
    ``kernel_fraction`` — from the shrunken DSP kernel suite.
    """

    seed: int = 0
    pairs: int = 20
    max_depth: int = 4
    mutation_rate: float = 0.35
    size: int = 20
    stages_range: Tuple[int, int] = (2, 4)
    kernel_fraction: float = 0.2
    kernels: Sequence[str] = ("all",)
    oracle_trials: int = 3
    oracle_seed: int = 0
    mutation_retries: int = 8

    def scenario_seed(self, index: int, role: str = "pipeline") -> str:
        """The deterministic string seed of scenario *index* for *role*."""
        return f"{self.seed}:{index}:{role}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "pairs": self.pairs,
            "max_depth": self.max_depth,
            "mutation_rate": self.mutation_rate,
            "size": self.size,
            "stages_range": list(self.stages_range),
            "kernel_fraction": self.kernel_fraction,
            "kernels": list(self.kernels),
            "oracle_trials": self.oracle_trials,
            "oracle_seed": self.oracle_seed,
            "mutation_retries": self.mutation_retries,
        }
