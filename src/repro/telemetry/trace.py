"""A zero-dependency hierarchical span tracer for the verification pipeline.

A *span* is a named, timed region of work — "parse this program", "traverse
this output", "run this FM elimination" — recorded with its start time, its
duration, the process and thread it ran on, and a link to the span that was
open when it started.  Nesting therefore falls out of execution order: the
frontend span of a check contains its lex/parse/extract spans, the traversal
span contains the Presburger operation spans, and a Perfetto-loaded Chrome
trace renders the whole verification stack as a flame graph
(:mod:`repro.telemetry.export` does the conversion).

Design constraints, in priority order:

1. **Disabled is (nearly) free.**  Tracing is off by default; every
   instrumentation site guards on :attr:`Tracer.enabled` (one attribute
   load) or calls :meth:`Tracer.span`, which returns a shared no-op context
   manager without allocating.  The budget — enforced by
   ``tests/unit/telemetry/test_overhead.py`` and the ``bench_verifier``
   gate — is <2% on an end-to-end check.
2. **Thread-aware.**  Span stacks are per-thread (``threading.local``), so
   concurrent checks on different threads nest correctly; the shared record
   buffer is guarded by a lock taken only when tracing is on.
3. **Process-aware by explicit serialization.**  There is no magic shared
   buffer across a ``ProcessPoolExecutor`` boundary: a worker drains its
   finished spans into plain dicts (:meth:`Tracer.drain_since` +
   :meth:`SpanRecord.to_dict`) that travel home inside the
   :class:`~repro.service.job.JobResult`, and the parent re-ingests them
   (:meth:`Tracer.ingest`) with their original ``pid``/``tid`` intact, so
   the exported trace shows one track per worker process.

Timestamps are wall-clock epoch microseconds (``time.time_ns``), which are
comparable across processes; durations are measured with
``time.perf_counter_ns`` so they are monotonic within a span.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["SpanRecord", "Span", "Tracer", "TRACER"]


class SpanRecord:
    """One finished span: plain, immutable-ish data, trivially serialisable."""

    __slots__ = ("name", "category", "start_us", "duration_us", "pid", "tid", "span_id", "parent_id", "args")

    def __init__(
        self,
        name: str,
        category: str,
        start_us: int,
        duration_us: int,
        pid: int,
        tid: int,
        span_id: int,
        parent_id: Optional[int],
        args: Optional[Dict[str, Any]] = None,
    ):
        self.name = name
        self.category = category
        self.start_us = start_us
        self.duration_us = duration_us
        self.pid = pid
        self.tid = tid
        self.span_id = span_id
        self.parent_id = parent_id
        self.args = args or {}

    @property
    def duration_seconds(self) -> float:
        return self.duration_us / 1e6

    def to_dict(self) -> Dict[str, Any]:
        """The serialised form shipped across process boundaries."""
        return {
            "name": self.name,
            "cat": self.category,
            "ts": self.start_us,
            "dur": self.duration_us,
            "pid": self.pid,
            "tid": self.tid,
            "id": self.span_id,
            "parent": self.parent_id,
            "args": dict(self.args),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SpanRecord":
        return cls(
            name=data["name"],
            category=data.get("cat", ""),
            start_us=data["ts"],
            duration_us=data.get("dur", 0),
            pid=data.get("pid", 0),
            tid=data.get("tid", 0),
            span_id=data.get("id", 0),
            parent_id=data.get("parent"),
            args=dict(data.get("args", {})),
        )

    def __repr__(self) -> str:
        return (
            f"SpanRecord({self.name!r}, cat={self.category!r}, "
            f"dur={self.duration_us}us, pid={self.pid})"
        )


class Span:
    """A live span: a context manager that records itself on exit."""

    __slots__ = ("_tracer", "name", "category", "args", "span_id", "parent_id", "_start_us", "_start_ns")

    def __init__(self, tracer: "Tracer", name: str, category: str, args: Optional[Dict[str, Any]]):
        self._tracer = tracer
        self.name = name
        self.category = category
        self.args = args
        self.span_id = 0
        self.parent_id: Optional[int] = None
        self._start_us = 0
        self._start_ns = 0

    def set(self, **args: Any) -> "Span":
        """Attach (or overwrite) argument annotations on the live span."""
        if self.args is None:
            self.args = {}
        self.args.update(args)
        return self

    def __enter__(self) -> "Span":
        tracer = self._tracer
        stack = tracer._stack()
        self.parent_id = stack[-1] if stack else None
        self.span_id = tracer._next_id()
        stack.append(self.span_id)
        self._start_us = time.time_ns() // 1000
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration_us = (time.perf_counter_ns() - self._start_ns) // 1000
        tracer = self._tracer
        stack = tracer._stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        if exc_type is not None:
            self.set(error=exc_type.__name__)
        tracer._record(
            SpanRecord(
                name=self.name,
                category=self.category,
                start_us=self._start_us,
                duration_us=duration_us,
                pid=tracer.pid,
                tid=threading.get_ident(),
                span_id=self.span_id,
                parent_id=self.parent_id,
                args=self.args,
            )
        )


class _NoopSpan:
    """The shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def set(self, **args: Any) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class Tracer:
    """The process-wide span recorder (one instance, see :data:`TRACER`).

    The tracer is mutated in place by :func:`repro.telemetry.enable` /
    :func:`~repro.telemetry.disable` rather than swapped, so modules may bind
    it once at import time (``_TR = TRACER``) and guard hot paths with a
    single ``_TR.enabled`` attribute load.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.pid = os.getpid()
        self._records: List[SpanRecord] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._id_lock = threading.Lock()
        self._id_counter = 0

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def span(self, name: str, category: str = "", **args: Any):
        """A context manager timing the enclosed block (no-op when disabled)."""
        if not self.enabled:
            return _NOOP_SPAN
        return Span(self, name, category, args or None)

    def event(self, name: str, category: str = "", **args: Any) -> None:
        """Record an instant (zero-duration) event at the current position."""
        if not self.enabled:
            return
        stack = self._stack()
        self._record(
            SpanRecord(
                name=name,
                category=category,
                start_us=time.time_ns() // 1000,
                duration_us=0,
                pid=self.pid,
                tid=threading.get_ident(),
                span_id=self._next_id(),
                parent_id=stack[-1] if stack else None,
                args=args or None,
            )
        )

    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _next_id(self) -> int:
        with self._id_lock:
            self._id_counter += 1
            return self._id_counter

    def _record(self, record: SpanRecord) -> None:
        with self._lock:
            self._records.append(record)

    # ------------------------------------------------------------------ #
    # Collection
    # ------------------------------------------------------------------ #
    def mark(self) -> int:
        """A position in the record buffer; pair with :meth:`records_since`."""
        with self._lock:
            return len(self._records)

    def records_since(self, mark: int) -> List[SpanRecord]:
        """The finished spans recorded after *mark* (buffer unchanged)."""
        with self._lock:
            return list(self._records[mark:])

    def drain_since(self, mark: int) -> List[SpanRecord]:
        """Remove and return the spans recorded after *mark*.

        Used at the ``ProcessPoolExecutor`` boundary: a worker drains the
        spans of each finished job into its result, keeping the worker's
        buffer from growing across the jobs it executes.
        """
        with self._lock:
            drained = self._records[mark:]
            del self._records[mark:]
            return drained

    def records(self) -> List[SpanRecord]:
        """A snapshot of every finished span recorded so far."""
        with self._lock:
            return list(self._records)

    def clear(self) -> None:
        """Drop all recorded spans (e.g. in a freshly forked worker)."""
        with self._lock:
            self._records.clear()
        self.pid = os.getpid()

    def ingest(self, records: Sequence[Any]) -> int:
        """Merge spans serialised by another process into this buffer.

        Accepts :class:`SpanRecord` values or their :meth:`~SpanRecord.to_dict`
        forms; the original ``pid``/``tid``/span identifiers are preserved so
        the exported trace keeps one track per worker.  Returns the number of
        spans ingested.
        """
        converted = [
            record if isinstance(record, SpanRecord) else SpanRecord.from_dict(record)
            for record in records
        ]
        with self._lock:
            self._records.extend(converted)
        return len(converted)


TRACER = Tracer()
