"""Live-serving observability primitives: request logs and slow-request capture.

The tracer and metrics registry in this package answer questions about one
process run; a long-lived verification daemon needs the complementary
*operational* views:

* :class:`RequestLogger` — a structured JSONL event log (one JSON object
  per line) for connection and request lifecycle events, with level
  filtering, size-based rotation and degrade-to-stderr on IO errors, so a
  failing disk never takes the serving path down;
* :class:`SlowRequestRing` — a bounded in-memory ring of self-contained
  slow-request records, exposed through the server's ``stats`` RPC and
  dumpable with ``repro-eqcheck stats --slow``;
* a request-scoped context (:func:`set_current_request` /
  :func:`current_request`) that lets deep instrumentation sites — e.g. the
  ``verifier.check`` root span in :mod:`repro.verifier.session` — tag their
  spans with the id of the server request they are running under, without
  threading an argument through every layer.

Everything here is stdlib-only and safe to call from multiple threads.
"""

from __future__ import annotations

import io
import json
import math
import os
import re
import sys
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, Iterator, List, Optional

__all__ = [
    "EVENT_KINDS",
    "LOG_LEVELS",
    "RequestLogger",
    "SlowRequestRing",
    "current_request",
    "request_scope",
    "set_current_request",
]

#: Event kinds emitted by the verification server's request log.
EVENT_KINDS = (
    "connect",
    "disconnect",
    "request_accepted",
    "request_rejected",
    "request_completed",
    "request_slow",
)

#: Severity ordering for :class:`RequestLogger` filtering.
LOG_LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}

#: Default severity of each event kind (``emit`` may override per call).
#: The log is completion-based at its default info level — one
#: ``request_completed`` line per request, access-log style, carrying the
#: verdict and timings.  ``request_accepted`` is debug detail: it only earns
#: its write when chasing requests that never complete.
DEFAULT_EVENT_LEVELS = {
    "connect": "debug",
    "disconnect": "debug",
    "request_accepted": "debug",
    "request_rejected": "warning",
    "request_completed": "info",
    "request_slow": "warning",
}

#: Strings that can be embedded in a JSON document without escaping.  The
#: fast path below covers every string the server actually logs (peer
#: addresses, hex fingerprints, job names, verdicts); anything containing a
#: quote, backslash or control character falls back to :func:`json.dumps`.
_NEEDS_ESCAPE = re.compile(r'["\\\x00-\x1f]')


def _encode_record(record: Dict[str, Any]) -> str:
    """Serialise one flat log record ~3x faster than :func:`json.dumps`.

    The request log is on the daemon's event loop: every microsecond spent
    encoding is a microsecond of serving latency, and the generic encoder
    spends most of its time dispatching on types this log rarely uses.
    Output is ordinary JSON — nested values and awkward strings are handed
    back to :func:`json.dumps` rather than approximated.  ``None``-valued
    fields are dropped here, which is part of :meth:`RequestLogger.emit`'s
    contract.
    """
    parts = []
    for key, value in record.items():
        if value is None:
            continue
        kind = type(value)
        if kind is str:
            if _NEEDS_ESCAPE.search(value) is None:
                encoded = f'"{value}"'
            else:
                encoded = json.dumps(value)
        elif value is True:
            encoded = "true"
        elif value is False:
            encoded = "false"
        elif kind is int:
            encoded = str(value)
        elif kind is float:
            encoded = repr(value) if math.isfinite(value) else "null"
        else:
            encoded = json.dumps(value, separators=(",", ":"), default=str)
        parts.append(f'"{key}":{encoded}')
    return "{" + ",".join(parts) + "}"


class RequestLogger:
    """Append-only JSONL event log with rotation and stderr degradation.

    Each :meth:`emit` records one JSON object per line carrying ``ts``
    (epoch seconds), ``event`` (one of :data:`EVENT_KINDS`), ``level`` and
    the caller's fields.  Events below the configured *level* are dropped.

    Writes are synchronous and land on disk before :meth:`emit` returns —
    in a single interpreter a hand-off thread would pay context switches
    without shedding any CPU, so the path is instead kept cheap: compact
    separators, unsorted keys, one small record per line.  :meth:`flush`
    exists for API symmetry (and future buffering) and is always satisfied.

    When the file would exceed *max_bytes* the current file is renamed to
    ``<path>.1`` (replacing any previous backup) and a fresh file is opened,
    so the log's on-disk footprint is bounded by roughly ``2 * max_bytes``.

    Any :class:`OSError` while writing or rotating permanently degrades the
    logger to stderr: the failure is reported once, and every subsequent
    event goes to stderr instead — observability must never make the server
    fall over.
    """

    def __init__(
        self,
        path: str,
        level: str = "info",
        max_bytes: int = 32 * 1024 * 1024,
        clock=time.time,
    ):
        if level not in LOG_LEVELS:
            raise ValueError(f"unknown log level {level!r}; expected one of {sorted(LOG_LEVELS)}")
        self.path = path
        self.level = level
        self.max_bytes = max(1024, int(max_bytes))
        self.clock = clock
        self.degraded = False
        self.events_written = 0
        self.events_dropped = 0
        self._lock = threading.Lock()
        self._handle: Optional[io.TextIOBase] = None
        self._size = 0
        self._open()

    # ------------------------------------------------------------------ #
    def _open(self) -> None:
        try:
            self._handle = open(self.path, "a", encoding="utf-8")
            self._size = self._handle.tell()
        except OSError as exc:
            self._degrade(exc)

    def _degrade(self, exc: BaseException) -> None:
        if not self.degraded:
            self.degraded = True
            print(
                f"repro-eqcheck serve: request log {self.path!r} failed ({exc}); "
                "falling back to stderr",
                file=sys.stderr,
            )
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None

    def _rotate(self) -> None:
        assert self._handle is not None
        self._handle.close()
        self._handle = None
        os.replace(self.path, self.path + ".1")
        self._handle = open(self.path, "a", encoding="utf-8")
        self._size = 0

    # ------------------------------------------------------------------ #
    def enabled_for(self, level: str) -> bool:
        return LOG_LEVELS.get(level, LOG_LEVELS["info"]) >= LOG_LEVELS[self.level]

    def emit(self, kind: str, level: Optional[str] = None, **fields: Any) -> None:
        """Write one event; drops fields whose value is ``None``."""
        resolved = level or DEFAULT_EVENT_LEVELS.get(kind, "info")
        if not self.enabled_for(resolved):
            self.events_dropped += 1
            return
        record: Dict[str, Any] = {"ts": self.clock(), "event": kind, "level": resolved, **fields}
        line = _encode_record(record) + "\n"
        with self._lock:
            if not self.degraded:
                try:
                    if self._handle is None:
                        raise ValueError("request log file is closed")
                    if self._size + len(line) > self.max_bytes and self._size > 0:
                        self._rotate()
                    self._handle.write(line)
                    self._handle.flush()
                    self._size += len(line)
                except (OSError, ValueError) as exc:
                    # ValueError covers a handle something closed under us
                    # ("I/O operation on closed file") — same degradation.
                    self._degrade(exc)
            if self.degraded:
                sys.stderr.write(line)
            self.events_written += 1

    def flush(self, timeout: float = 5.0) -> bool:
        """Every emitted event is already on disk; kept for API symmetry."""
        return True

    def stats(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "level": self.level,
            "degraded": self.degraded,
            "events_written": self.events_written,
            "events_dropped": self.events_dropped,
        }

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None


class SlowRequestRing:
    """A bounded ring of slow-request records (newest-last, thread-safe).

    Records are plain JSON-serialisable dicts, self-contained enough to
    triage without the daemon: fingerprint, options, phase breakdown,
    opcache deltas and backend query counts.  ``captured`` counts every
    record ever added, including the ones the bound has since evicted.
    """

    def __init__(self, capacity: int = 32):
        self.capacity = max(1, int(capacity))
        self.captured = 0
        self._lock = threading.Lock()
        self._records: Deque[Dict[str, Any]] = deque(maxlen=self.capacity)

    def add(self, record: Dict[str, Any]) -> None:
        with self._lock:
            self._records.append(record)
            self.captured += 1

    def snapshot(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


# --------------------------------------------------------------------------- #
# Request-scoped context: which server request is this thread working for?
# --------------------------------------------------------------------------- #
_REQUEST_CONTEXT = threading.local()


def set_current_request(request_id: Optional[Any]) -> None:
    """Bind *request_id* to the calling thread (``None`` clears it)."""
    _REQUEST_CONTEXT.request_id = request_id


def current_request() -> Optional[Any]:
    """The server request id bound to this thread, if any."""
    return getattr(_REQUEST_CONTEXT, "request_id", None)


class request_scope:
    """Context manager binding a request id for the duration of a block.

    Used by the server pool around each warm check so that spans opened
    anywhere underneath (``verifier.check`` and deeper) can tag themselves
    with the request they serve.  Restores the previous binding on exit, so
    scopes nest.
    """

    __slots__ = ("request_id", "_previous")

    def __init__(self, request_id: Optional[Any]):
        self.request_id = request_id
        self._previous: Optional[Any] = None

    def __enter__(self) -> "request_scope":
        self._previous = current_request()
        set_current_request(self.request_id)
        return self

    def __exit__(self, *exc_info) -> None:
        set_current_request(self._previous)


def iter_jsonl(path: str) -> Iterator[Dict[str, Any]]:
    """Parse a JSONL request log, skipping blank lines (strict otherwise)."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)
