"""A counter / gauge / histogram metrics registry for the verification stack.

Where spans (:mod:`repro.telemetry.trace`) answer *where did the time go*,
metrics answer *how often and how big*: tabling hits per check, FM
eliminations per Presburger operation, dark-shadow splinter explosions,
oracle runs per scenario.  The registry is deliberately small:

* :class:`Counter` — a monotonically increasing integer (``inc``);
* :class:`Gauge` — a last-value-wins number (``set``);
* :class:`Histogram` — count/sum/min/max plus power-of-two magnitude
  buckets, enough to spot skew without storing samples.

Like the tracer, the process-wide :data:`METRICS` registry is disabled by
default and mutated in place, so hot code binds it once and guards on a
single ``.enabled`` attribute load.  Snapshots are plain dicts, which makes
the cross-process story explicit: a worker ships ``snapshot()`` deltas home
with its job result and the parent :meth:`MetricsRegistry.merge`\\ s them in.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "METRICS", "delta_counters"]


class Counter:
    """A monotonically increasing event counter.

    ``inc`` is thread-safe: counters are shared between the asyncio event
    loop and pool worker threads in the verification server, where a bare
    ``value += amount`` read-modify-write can drop increments under
    preemption.  One short critical section per increment keeps the counter
    exact; reads of ``value`` are single attribute loads and need no lock.
    :class:`repro.server.pool.ServerStats` follows the same pattern.
    """

    __slots__ = ("name", "value", "_lock")
    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"type": self.kind, "name": self.name, "value": self.value}

    def merge(self, data: Dict[str, Any]) -> None:
        self.inc(int(data.get("value", 0)))


class Gauge:
    """A last-value-wins measurement (e.g. a cache population)."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> Dict[str, Any]:
        return {"type": self.kind, "name": self.name, "value": self.value}

    def merge(self, data: Dict[str, Any]) -> None:
        # Merging gauges across processes keeps the maximum: the only gauges
        # we record (cache populations, corpus sizes) are "high water" style.
        self.value = max(self.value, data.get("value", 0.0))


class Histogram:
    """Count/sum/min/max plus power-of-two magnitude buckets.

    Bucket ``k`` counts observations ``v`` with ``2**(k-1) < |v| <= 2**k``
    (bucket 0 counts ``|v| <= 1``), which is coarse but cheap and fully
    mergeable across processes.
    """

    __slots__ = ("name", "count", "total", "minimum", "maximum", "buckets")
    kind = "histogram"
    MAX_BUCKET = 40

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total: float = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self.buckets: List[int] = [0] * (self.MAX_BUCKET + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        magnitude = abs(value)
        bucket = 0
        while magnitude > 1 and bucket < self.MAX_BUCKET:
            magnitude /= 2.0
            bucket += 1
        self.buckets[bucket] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {
            "type": self.kind,
            "name": self.name,
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "buckets": {str(k): v for k, v in enumerate(self.buckets) if v},
        }

    def merge(self, data: Dict[str, Any]) -> None:
        self.count += int(data.get("count", 0))
        self.total += data.get("sum", 0.0)
        for bound in ("min", "max"):
            other = data.get(bound)
            if other is None:
                continue
            if bound == "min":
                self.minimum = other if self.minimum is None else min(self.minimum, other)
            else:
                self.maximum = other if self.maximum is None else max(self.maximum, other)
        for key, value in (data.get("buckets") or {}).items():
            index = min(int(key), self.MAX_BUCKET)
            self.buckets[index] += int(value)


class MetricsRegistry:
    """The process-wide named-metric store (one instance, see :data:`METRICS`).

    All mutating entry points are no-ops while :attr:`enabled` is false, so
    instrumentation sites can call ``METRICS.inc(...)`` unconditionally in
    warm-but-not-hot code; truly hot paths should guard on ``.enabled``
    themselves to skip even the call.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._lock = threading.Lock()
        self._metrics: Dict[str, Any] = {}

    # ------------------------------------------------------------------ #
    def _get(self, name: str, factory):
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.setdefault(name, factory(name))
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    # Convenience mutators (no-ops while disabled).
    def inc(self, name: str, amount: int = 1) -> None:
        if self.enabled:
            self.counter(name).inc(amount)

    def set(self, name: str, value: float) -> None:
        if self.enabled:
            self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        if self.enabled:
            self.histogram(name).observe(value)

    # ------------------------------------------------------------------ #
    def snapshot(self) -> List[Dict[str, Any]]:
        """Every metric's serialised state, sorted by name."""
        with self._lock:
            metrics = list(self._metrics.values())
        return [metric.snapshot() for metric in sorted(metrics, key=lambda m: m.name)]

    def counters(self) -> Dict[str, int]:
        """Just the counters, as a flat ``{name: value}`` dict."""
        with self._lock:
            return {
                name: metric.value
                for name, metric in sorted(self._metrics.items())
                if isinstance(metric, Counter)
            }

    def merge(self, snapshot: List[Dict[str, Any]]) -> None:
        """Fold a :meth:`snapshot` from another process into this registry."""
        factories = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}
        for entry in snapshot:
            factory = factories.get(entry.get("type", "counter"), Counter)
            self._get(entry["name"], factory).merge(entry)

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()


def delta_counters(later: Dict[str, int], earlier: Dict[str, int]) -> Dict[str, int]:
    """The counter increments between two :meth:`MetricsRegistry.counters` calls."""
    return {
        name: value - earlier.get(name, 0)
        for name, value in later.items()
        if value - earlier.get(name, 0)
    }


METRICS = MetricsRegistry()
