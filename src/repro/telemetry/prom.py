"""Prometheus text exposition (format 0.0.4) for the observability stack.

Two renderers over the stack's existing snapshot shapes, so a scraper can
consume the verification server without any new dependency:

* :func:`render_metric_rows` — renders a
  :meth:`repro.telemetry.metrics.MetricsRegistry.snapshot` list (typed
  counter/gauge/histogram rows);
* :func:`render_server_snapshot` — renders the server's deep ``stats``
  payload (see :meth:`repro.server.daemon.VerificationServer.snapshot`):
  nested dicts flatten into underscore-joined metric names, a few known
  keys expand into labelled samples (``solver_queries`` → ``kind=...``,
  ``per_op`` → ``op=...``), and embedded histogram snapshots become full
  ``_bucket``/``_sum``/``_count`` families.

The histogram buckets reuse :class:`repro.telemetry.metrics.Histogram`'s
power-of-two magnitude scheme: bucket ``k`` holds ``2**(k-1) < |v| <= 2**k``
(bucket 0 holds ``|v| <= 1``), so the exposed ``le`` bounds are ``1, 2, 4,
...`` — coarse, but honest and cheap, and cumulative as Prometheus requires.
"""

from __future__ import annotations

import re
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "CONTENT_TYPE",
    "escape_help",
    "escape_label_value",
    "render_metric_rows",
    "render_server_snapshot",
    "sanitize_metric_name",
]

#: The HTTP content type of exposition format 0.0.4 (informational here —
#: the server speaks JSON-RPC, not HTTP; scrape adapters should set this).
CONTENT_TYPE = "text/plain; version=0.0.4"

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

#: Snapshot keys rendered as ``counter`` (monotonic); everything else
#: numeric is a ``gauge``.
_COUNTER_KEYS = frozenset(
    {
        "requests",
        "checks_executed",
        "dedup_hits",
        "cache_hits",
        "compile_hits",
        "compile_misses",
        "errors",
        "timeouts",
        "rejected",
        "resets",
        "hits",
        "misses",
        "evictions",
        "stores",
        "store_errors",
        "memory_hits",
        "disk_hits",
        "disk_misses",
        "disk_writes",
        "intern_hits",
        "intern_misses",
        "corrupt_entries",
        "events_written",
        "events_dropped",
        "captured",
    }
)

#: Dict-valued snapshot keys whose sub-keys become a label instead of a
#: metric-name component.
_LABELLED_KEYS = {"solver_queries": "kind", "per_op": "op", "by_status": "status"}


def sanitize_metric_name(name: str) -> str:
    """Coerce *name* into a legal Prometheus metric name."""
    cleaned = _NAME_BAD_CHARS.sub("_", name)
    if not cleaned or not _NAME_OK.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def escape_label_value(value: Any) -> str:
    """Escape a label value per the exposition format (backslash, quote, LF)."""
    return str(value).replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def escape_help(text: str) -> str:
    """Escape a ``# HELP`` docstring (backslash and newline only)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _format_labels(labels: Optional[Mapping[str, Any]]) -> str:
    if not labels:
        return ""
    parts = ",".join(
        f'{sanitize_metric_name(key)}="{escape_label_value(value)}"'
        for key, value in sorted(labels.items())
    )
    return "{" + parts + "}"


class _Exposition:
    """Accumulates samples and emits one ``# HELP``/``# TYPE`` per metric."""

    def __init__(self) -> None:
        self._families: "Dict[str, Tuple[str, str, List[str]]]" = {}
        self._order: List[str] = []

    def add(
        self,
        name: str,
        kind: str,
        value: Any,
        labels: Optional[Mapping[str, Any]] = None,
        help_text: Optional[str] = None,
        suffix: str = "",
    ) -> None:
        name = sanitize_metric_name(name)
        family = self._families.get(name)
        if family is None:
            family = (kind, help_text or f"{name} ({kind})", [])
            self._families[name] = family
            self._order.append(name)
        family[2].append(f"{name}{suffix}{_format_labels(labels)} {_format_value(value)}")

    def add_histogram(
        self,
        name: str,
        snapshot: Mapping[str, Any],
        labels: Optional[Mapping[str, Any]] = None,
        help_text: Optional[str] = None,
    ) -> None:
        """One full histogram family from a ``Histogram.snapshot()`` dict."""
        buckets = {int(k): int(v) for k, v in (snapshot.get("buckets") or {}).items()}
        count = int(snapshot.get("count") or 0)
        total = snapshot.get("sum") or 0.0
        cumulative = 0
        top = max(buckets) if buckets else 0
        for index in range(top + 1):
            cumulative += buckets.get(index, 0)
            upper = 2 ** index if index else 1
            self.add(
                name,
                "histogram",
                cumulative,
                labels={**(labels or {}), "le": upper},
                help_text=help_text,
                suffix="_bucket",
            )
        self.add(
            name,
            "histogram",
            count,
            labels={**(labels or {}), "le": "+Inf"},
            help_text=help_text,
            suffix="_bucket",
        )
        self.add(name, "histogram", float(total), labels=labels, help_text=help_text, suffix="_sum")
        self.add(name, "histogram", count, labels=labels, help_text=help_text, suffix="_count")

    def render(self) -> str:
        lines: List[str] = []
        for name in self._order:
            kind, help_text, samples = self._families[name]
            lines.append(f"# HELP {name} {escape_help(help_text)}")
            lines.append(f"# TYPE {name} {kind}")
            lines.extend(samples)
        return "\n".join(lines) + "\n" if lines else ""


def _kind_for(key: str) -> str:
    return "counter" if key in _COUNTER_KEYS else "gauge"


def render_metric_rows(rows: Sequence[Mapping[str, Any]], namespace: str = "repro") -> str:
    """Render a ``MetricsRegistry.snapshot()`` list to exposition text."""
    out = _Exposition()
    for row in rows:
        name = f"{namespace}_{row.get('name', 'metric')}"
        kind = row.get("type", "counter")
        if kind == "histogram":
            out.add_histogram(name, row)
        elif kind in ("counter", "gauge"):
            out.add(name, kind, row.get("value", 0))
        # Unknown row types are skipped: this renderer must never fail a
        # scrape over a snapshot written by a newer registry.
    return out.render()


def _walk(out: _Exposition, path: Tuple[str, ...], value: Any, namespace: str) -> None:
    name = namespace + "_" + "_".join(path) if path else namespace
    key = path[-1] if path else ""
    if isinstance(value, bool) or isinstance(value, (int, float)):
        out.add(name, _kind_for(key), value)
    elif isinstance(value, Mapping):
        if value.get("type") == "histogram":
            out.add_histogram(name, value)
            return
        label = _LABELLED_KEYS.get(key)
        if label is not None:
            for sub_key in sorted(value, key=str):
                sub = value[sub_key]
                if isinstance(sub, (bool, int, float)):
                    out.add(name, _kind_for(key), sub, labels={label: sub_key})
                elif isinstance(sub, Mapping):
                    for leaf_key in sorted(sub, key=str):
                        leaf = sub[leaf_key]
                        if isinstance(leaf, (bool, int, float)):
                            out.add(
                                f"{name}_{leaf_key}",
                                _kind_for(leaf_key),
                                leaf,
                                labels={label: sub_key},
                            )
            return
        for sub_key in sorted(value, key=str):
            _walk(out, path + (str(sub_key),), value[sub_key], namespace)
    # Strings, None and lists carry no sample; they stay JSON-only fields.


def render_server_snapshot(
    snapshot: Mapping[str, Any],
    namespace: str = "repro_server",
    metric_rows: Optional[Iterable[Mapping[str, Any]]] = None,
) -> str:
    """Render the server's deep ``stats`` snapshot to exposition text.

    *metric_rows*, when given, appends the opt-in
    :data:`repro.telemetry.METRICS` registry rows under the plain ``repro``
    namespace after the always-on server metrics.
    """
    out = _Exposition()
    for key in snapshot:
        _walk(out, (str(key),), snapshot[key], namespace)
    text = out.render()
    if metric_rows:
        text += render_metric_rows(list(metric_rows))
    return text
