"""Exporters: Chrome trace-event JSON, metrics JSONL, per-phase summaries.

Three consumers, three formats:

* **Perfetto / chrome://tracing** — :func:`chrome_trace` renders finished
  spans as the Chrome trace-event JSON object format (``ph: "X"`` complete
  events plus ``ph: "M"`` process/thread name metadata), which Perfetto
  loads directly.  One track per ``(pid, tid)``, so spans merged home from
  ``ProcessPoolExecutor`` workers appear as their own process rows.
* **Machines** — :func:`write_metrics_jsonl` dumps every metric as one JSON
  object per line (plus a trailing aggregate row mirroring the Presburger
  operation-cache counters), append-friendly like the service reports.
* **Humans** — :func:`format_phase_summary` renders the per-phase wall-time
  breakdown that :func:`aggregate_phase_seconds` derives from the span tree:
  time is attributed to the *outermost* span of each category, so nested
  same-category spans (an FM elimination inside a memoized Presburger
  operation) are not double counted, and "presburger" time is reported on
  its own even though it nests inside the frontend/engine shares.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, TextIO, Union

from .trace import SpanRecord

__all__ = [
    "TelemetrySnapshot",
    "chrome_trace",
    "write_chrome_trace",
    "write_metrics_jsonl",
    "aggregate_phase_seconds",
    "format_phase_summary",
]

#: The span categories that constitute pipeline *phases*; anything else is
#: detail inside one of these (or uncategorised scaffolding).
PHASE_CATEGORIES = ("frontend", "engine", "presburger", "service", "scenario", "diagnostics")


def chrome_trace(records: Sequence[SpanRecord], process_names: Optional[Dict[int, str]] = None) -> Dict[str, Any]:
    """Render finished spans as a Chrome trace-event JSON object.

    *process_names* optionally maps a pid to a display name; unnamed worker
    pids get ``worker-<pid>``.  Timestamps are normalised so the earliest
    span starts at 0 (Perfetto handles epoch stamps, but small numbers are
    kinder to humans reading the JSON).
    """
    process_names = dict(process_names or {})
    events: List[Dict[str, Any]] = []
    if not records:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    origin = min(record.start_us for record in records)
    seen_pids: Dict[int, None] = {}
    for record in records:
        seen_pids.setdefault(record.pid, None)
        event: Dict[str, Any] = {
            "name": record.name,
            "cat": record.category or "misc",
            "ph": "X" if record.duration_us else "i",
            "ts": record.start_us - origin,
            "pid": record.pid,
            "tid": record.tid,
        }
        if record.duration_us:
            event["dur"] = record.duration_us
        else:
            event["s"] = "t"  # instant event, thread-scoped
        if record.args:
            event["args"] = dict(record.args)
        events.append(event)
    metadata = []
    for index, pid in enumerate(sorted(seen_pids)):
        name = process_names.get(pid) or ("repro-eqcheck" if index == 0 else f"worker-{pid}")
        metadata.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    target: Union[str, TextIO],
    records: Sequence[SpanRecord],
    process_names: Optional[Dict[int, str]] = None,
) -> None:
    """Write :func:`chrome_trace` of *records* to a path or open text file."""
    payload = chrome_trace(records, process_names)
    if hasattr(target, "write"):
        json.dump(payload, target)
    else:
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)


def write_metrics_jsonl(
    target: Union[str, TextIO],
    snapshot: Sequence[Dict[str, Any]],
    extra_rows: Sequence[Dict[str, Any]] = (),
) -> None:
    """Write a metrics snapshot as JSONL: one metric object per line.

    *extra_rows* lets callers append aggregate rows that are not registry
    metrics — the CLI adds an ``{"type": "opcache", ...}`` row mirroring the
    process-wide Presburger operation-cache counters so one file carries the
    full picture.
    """
    def _write(handle: TextIO) -> None:
        for row in list(snapshot) + list(extra_rows):
            handle.write(json.dumps(row, sort_keys=True) + "\n")

    if hasattr(target, "write"):
        _write(target)
    else:
        with open(target, "w", encoding="utf-8") as handle:
            _write(handle)


def aggregate_phase_seconds(records: Sequence[SpanRecord]) -> Dict[str, float]:
    """Per-phase wall time, attributing each category to its outermost spans.

    A span contributes to its category's bucket only when no ancestor span
    shares that category — so the per-output spans nested inside a traversal
    span do not double the "engine" time, and recursive FM eliminations
    count once.  Buckets are keyed by category and restricted to
    :data:`PHASE_CATEGORIES`.
    """
    by_key = {(record.pid, record.span_id): record for record in records}
    phases: Dict[str, float] = {}
    for record in records:
        category = record.category
        if category not in PHASE_CATEGORIES:
            continue
        ancestor = record.parent_id
        outermost = True
        # Walk the parent chain within this record set; spans whose parents
        # were recorded elsewhere (e.g. the job wrapper of a worker) are
        # treated as roots of their category.
        while ancestor is not None:
            parent = by_key.get((record.pid, ancestor))
            if parent is None:
                break
            if parent.category == category:
                outermost = False
                break
            ancestor = parent.parent_id
        if outermost:
            phases[category] = phases.get(category, 0.0) + record.duration_seconds
    return phases


def format_phase_summary(
    phase_seconds: Dict[str, float], span_count: int = 0, counters: Optional[Dict[str, int]] = None
) -> str:
    """A compact human-readable rendering of a per-phase breakdown."""
    lines = ["telemetry phase breakdown:"]
    total = sum(
        seconds for category, seconds in phase_seconds.items()
        if category in ("frontend", "engine", "service", "scenario", "diagnostics")
    )
    for category in PHASE_CATEGORIES:
        seconds = phase_seconds.get(category)
        if seconds is None:
            continue
        note = ""
        if category == "presburger":
            note = "  (nested inside frontend/engine time)"
        share = f"  {seconds / total:6.1%}" if total and not note else ""
        lines.append(f"  {category:<12}: {seconds:8.3f} s{share}{note}")
    if span_count:
        lines.append(f"  spans       : {span_count}")
    for name, value in sorted((counters or {}).items()):
        lines.append(f"  {name:<24}: {value}")
    return "\n".join(lines)


@dataclass
class TelemetrySnapshot:
    """What :meth:`CheckObserver.on_telemetry` receives after one check.

    ``phase_seconds`` is the per-phase breakdown of this check's spans (the
    same dict stored into ``CheckStats.phase_seconds``), ``span_count`` the
    number of spans the check recorded, and ``counters`` the metric-counter
    increments attributable to the check (empty unless metrics are enabled).
    """

    phase_seconds: Dict[str, float] = field(default_factory=dict)
    span_count: int = 0
    counters: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "phase_seconds": dict(self.phase_seconds),
            "span_count": self.span_count,
            "counters": dict(self.counters),
        }

    def format(self) -> str:
        return format_phase_summary(self.phase_seconds, self.span_count, self.counters)
