"""Observability for the verification stack: span tracing + metrics.

The paper's method lives or dies on where the time goes — frontend ADDG
extraction versus Presburger traversal versus FM elimination — and this
package is the layer that answers the question.  It is **zero-dependency,
disabled by default, and pay-for-what-you-use**:

* :mod:`repro.telemetry.trace` — a hierarchical span tracer (context-manager
  and decorator API, thread-aware, process-aware via explicit serialization
  across the ``ProcessPoolExecutor`` boundary);
* :mod:`repro.telemetry.metrics` — a counter / gauge / histogram registry;
* :mod:`repro.telemetry.export` — Chrome trace-event JSON (loadable in
  Perfetto), JSONL metrics dumps, and human-readable per-phase summaries;
* :mod:`repro.telemetry.live` — serving-side observability: the structured
  JSONL request log, the bounded slow-request ring and the request-scoped
  span-tagging context used by ``repro-eqcheck serve``;
* :mod:`repro.telemetry.prom` — Prometheus text exposition (format 0.0.4)
  over the metrics snapshots and the server's deep ``stats`` payload.

Quickstart (the CLI flags ``--trace FILE`` / ``--metrics FILE`` do exactly
this around a check)::

    from repro import telemetry

    telemetry.enable()
    ...                                  # run checks / batches / fuzzing
    telemetry.write_chrome_trace("trace.json", telemetry.spans())
    telemetry.write_metrics_jsonl("metrics.jsonl", telemetry.METRICS.snapshot())
    telemetry.disable()

Instrumentation sites throughout the stack (frontend lexer/parser/def-use/
extraction, the checker traversal, the Presburger operation cache and omega
core, the batch executor and the scenario engine) bind the process-wide
:data:`TRACER` / :data:`METRICS` singletons at import time and guard on a
single ``.enabled`` attribute load, so the whole layer costs <2% when off
(gated by ``benchmarks/bench_verifier.py`` and the telemetry unit tests).

See ``docs/observability.md`` for the full tour.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Iterable, List, Optional

from .trace import TRACER, Span, SpanRecord, Tracer
from .metrics import METRICS, Counter, Gauge, Histogram, MetricsRegistry, delta_counters
from .export import (
    TelemetrySnapshot,
    aggregate_phase_seconds,
    chrome_trace,
    format_phase_summary,
    write_chrome_trace,
    write_metrics_jsonl,
)
from .live import (
    RequestLogger,
    SlowRequestRing,
    current_request,
    request_scope,
    set_current_request,
)
from .prom import render_metric_rows, render_server_snapshot

__all__ = [
    "TRACER",
    "METRICS",
    "Tracer",
    "Span",
    "SpanRecord",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RequestLogger",
    "SlowRequestRing",
    "TelemetrySnapshot",
    "enable",
    "disable",
    "is_tracing",
    "span",
    "event",
    "traced",
    "spans",
    "ingest_spans",
    "reset",
    "aggregate_phase_seconds",
    "chrome_trace",
    "current_request",
    "format_phase_summary",
    "render_metric_rows",
    "render_server_snapshot",
    "request_scope",
    "set_current_request",
    "write_chrome_trace",
    "write_metrics_jsonl",
    "delta_counters",
]


def enable(tracing: bool = True, metrics: bool = True) -> None:
    """Switch telemetry on (both layers by default).

    Idempotent; previously recorded spans and counters are kept, so pair
    with :func:`reset` for a cold start.
    """
    if tracing:
        TRACER.enabled = True
    if metrics:
        METRICS.enabled = True


def disable() -> None:
    """Switch both tracing and metrics off (recorded data is kept)."""
    TRACER.enabled = False
    METRICS.enabled = False


def is_tracing() -> bool:
    """Whether span recording is currently active."""
    return TRACER.enabled


def span(name: str, category: str = "", **args: Any):
    """A context manager timing the enclosed block on the global tracer.

    Returns a shared no-op object while tracing is disabled, so the call is
    safe (and cheap) to leave in warm paths unconditionally::

        with telemetry.span("frontend.parse", "frontend", chars=len(text)):
            program = parse_program(text)
    """
    return TRACER.span(name, category, **args)


def event(name: str, category: str = "", **args: Any) -> None:
    """Record an instant event on the global tracer (no-op when disabled)."""
    TRACER.event(name, category, **args)


def traced(name: Optional[str] = None, category: str = "") -> Callable:
    """Decorator form of :func:`span`: times every call of the function.

    The span is named after the function unless *name* is given; when
    tracing is disabled the only residual cost is one attribute check per
    call::

        @telemetry.traced(category="frontend")
        def build_addg(program): ...
    """

    def decorate(function: Callable) -> Callable:
        span_name = name or function.__qualname__

        @functools.wraps(function)
        def wrapper(*args: Any, **kwargs: Any):
            if not TRACER.enabled:
                return function(*args, **kwargs)
            with TRACER.span(span_name, category):
                return function(*args, **kwargs)

        return wrapper

    return decorate


def spans() -> List[SpanRecord]:
    """Every finished span recorded so far (a snapshot)."""
    return TRACER.records()


def ingest_spans(records: Iterable[Any]) -> int:
    """Merge spans serialised by another process into the global tracer."""
    return TRACER.ingest(list(records))


def reset() -> None:
    """Drop all recorded spans and metrics (enablement flags are kept)."""
    TRACER.clear()
    METRICS.clear()
