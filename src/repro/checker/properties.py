"""Operator property declarations (associativity / commutativity).

The algebraic data-flow transformations the paper handles rely on the
associativity and/or commutativity of operators such as fixed-point addition
and multiplication (Section 4).  The checker consults an
:class:`OperatorRegistry` to know which operators admit which algebraic laws;
the registry can be extended with declarations for user-defined functions
(the "operator property declarations" optional input of Fig. 6).

The *basic* method of the paper (Section 5.1, our reproduction of [11])
corresponds to checking with an empty registry: no operator is assumed
associative or commutative, so only expression propagation and loop
transformations can be verified.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

__all__ = ["OperatorProperties", "OperatorRegistry", "default_registry", "empty_registry"]


@dataclass(frozen=True)
class OperatorProperties:
    """Algebraic properties declared for one operator."""

    associative: bool = False
    commutative: bool = False

    @property
    def is_algebraic(self) -> bool:
        """True when at least one algebraic law applies."""
        return self.associative or self.commutative


class OperatorRegistry:
    """A mapping from operator names to their declared algebraic properties."""

    def __init__(self, properties: Optional[Mapping[str, OperatorProperties]] = None):
        self._properties: Dict[str, OperatorProperties] = dict(properties or {})

    def declare(self, op: str, *, associative: bool = False, commutative: bool = False) -> None:
        """Declare (or overwrite) the properties of *op*."""
        self._properties[op] = OperatorProperties(associative, commutative)

    def get(self, op: str) -> OperatorProperties:
        """The declared properties of *op* (no properties if undeclared)."""
        return self._properties.get(op, OperatorProperties())

    def __contains__(self, op: str) -> bool:
        return op in self._properties

    def items(self) -> Iterable[Tuple[str, OperatorProperties]]:
        return self._properties.items()

    def copy(self) -> "OperatorRegistry":
        return OperatorRegistry(self._properties)

    def __repr__(self) -> str:
        entries = ", ".join(
            f"{op}:{'A' if p.associative else ''}{'C' if p.commutative else ''}"
            for op, p in sorted(self._properties.items())
        )
        return f"OperatorRegistry({entries})"


def default_registry() -> OperatorRegistry:
    """The default declarations: ``+`` and ``*`` are associative and commutative.

    Following the paper, fixed-point integer addition and multiplication are
    treated as associative and commutative modulo overflow; subtraction,
    division and uninterpreted function calls admit no algebraic laws.
    """
    registry = OperatorRegistry()
    registry.declare("+", associative=True, commutative=True)
    registry.declare("*", associative=True, commutative=True)
    return registry


def empty_registry() -> OperatorRegistry:
    """A registry with no algebraic laws (the *basic* method of Section 5.1)."""
    return OperatorRegistry()
