"""Push-button entry points of the equivalence checker (the tool of Fig. 6).

:func:`check_equivalence` and :func:`check_addgs` are thin backward
compatible shims over the session API of :mod:`repro.verifier`: each call
builds a :class:`~repro.verifier.options.CheckOptions` from its keyword
arguments and delegates to a one-shot
:class:`~repro.verifier.session.Verifier`.  They remain the convenient
spelling for single checks; callers that check many pairs (or many variants
of one program) should hold a :class:`Verifier` instead to reuse its
compiled-artifact cache and to stream progress through observers — see
``docs/api.md`` for the migration table.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

from ..addg import ADDG
from ..lang import Program
from .properties import OperatorRegistry
from .result import EquivalenceResult

__all__ = ["check_equivalence", "check_addgs"]

ProgramLike = Union[Program, str]


def _one_shot_options(
    method: str,
    registry: Optional[OperatorRegistry],
    outputs: Optional[Sequence[str]],
    correspondences: Sequence[Tuple[str, str]],
    tabling: bool,
    check_preconditions: bool = True,
):
    # Imported lazily: repro.verifier depends on this package's engine and
    # result modules, so a module-level import would be circular.
    from ..verifier import CheckOptions

    return CheckOptions.from_registry(
        registry,
        method=method,
        outputs=tuple(outputs) if outputs is not None else None,
        correspondences=tuple((a, b) for a, b in correspondences),
        tabling=tabling,
        check_preconditions=check_preconditions,
    )


def check_equivalence(
    original: ProgramLike,
    transformed: ProgramLike,
    *,
    method: str = "extended",
    registry: Optional[OperatorRegistry] = None,
    outputs: Optional[Sequence[str]] = None,
    correspondences: Sequence[Tuple[str, str]] = (),
    tabling: bool = True,
    check_preconditions: bool = True,
) -> EquivalenceResult:
    """Check the functional (input–output) equivalence of two program functions.

    Parameters
    ----------
    original, transformed:
        The two functions, as mini-C source text or parsed programs.
    method:
        ``"extended"`` (default) handles expression propagation, loop and
        algebraic transformations; ``"basic"`` disables the algebraic
        normalisation (flattening / matching) and corresponds to the method
        of Section 5.1 / reference [11] of the paper.
    registry:
        Operator property declarations; by default ``+`` and ``*`` are
        associative and commutative.
    outputs:
        Restrict the check to a subset of the output arrays (focused checking).
    correspondences:
        Pairs ``(original_array, transformed_array)`` of intermediate arrays
        declared by the designer to correspond element-wise; they are used as
        cut points and verified separately (focused checking, Section 6.1).
    tabling:
        Enable the reuse of established equivalences across overlapping
        sub-ADDGs (Section 6.2).  Disabling it is only useful for ablation
        benchmarks.
    check_preconditions:
        Run the def-use / single-assignment prerequisites (Fig. 6) first and
        report violations as diagnostics instead of checking equivalence.
    """
    from ..verifier import Verifier

    options = _one_shot_options(
        method, registry, outputs, correspondences, tabling, check_preconditions
    )
    return Verifier().check(original, transformed, options=options)


def check_addgs(
    original: ADDG,
    transformed: ADDG,
    *,
    method: str = "extended",
    registry: Optional[OperatorRegistry] = None,
    outputs: Optional[Sequence[str]] = None,
    correspondences: Sequence[Tuple[str, str]] = (),
    tabling: bool = True,
) -> EquivalenceResult:
    """Check equivalence of two already-extracted ADDGs (skips the frontend)."""
    from ..verifier import Verifier

    options = _one_shot_options(method, registry, outputs, correspondences, tabling)
    return Verifier().check_addgs(original, transformed, options=options)
