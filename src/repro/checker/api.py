"""Public entry points of the equivalence checker (the tool of Fig. 6).

:func:`check_equivalence` is the push-button interface: it takes the original
and the transformed program (as source text or parsed
:class:`~repro.lang.ast.Program` values), runs the def-use prerequisites,
extracts the ADDGs, performs the synchronized traversal, and returns an
:class:`~repro.checker.result.EquivalenceResult` with diagnostics.

:func:`check_addgs` skips the frontend and operates on already-extracted
ADDGs; the benchmarks use it to time the equivalence checking step alone.
"""

from __future__ import annotations

import time
from typing import Iterable, Optional, Sequence, Tuple, Union

from ..addg import ADDG, build_addg
from ..analysis import check_dataflow
from ..lang import Program, parse_program
from ..presburger import Map
from .engine import Engine
from .properties import OperatorRegistry, default_registry
from .result import CheckStats, Diagnostic, DiagnosticKind, EquivalenceResult, OutputReport

__all__ = ["check_equivalence", "check_addgs"]

ProgramLike = Union[Program, str]


def _as_program(value: ProgramLike) -> Program:
    if isinstance(value, Program):
        return value
    if isinstance(value, str):
        return parse_program(value)
    raise TypeError(f"expected a Program or source text, got {type(value).__name__}")


def check_equivalence(
    original: ProgramLike,
    transformed: ProgramLike,
    *,
    method: str = "extended",
    registry: Optional[OperatorRegistry] = None,
    outputs: Optional[Sequence[str]] = None,
    correspondences: Sequence[Tuple[str, str]] = (),
    tabling: bool = True,
    check_preconditions: bool = True,
) -> EquivalenceResult:
    """Check the functional (input–output) equivalence of two program functions.

    Parameters
    ----------
    original, transformed:
        The two functions, as mini-C source text or parsed programs.
    method:
        ``"extended"`` (default) handles expression propagation, loop and
        algebraic transformations; ``"basic"`` disables the algebraic
        normalisation (flattening / matching) and corresponds to the method
        of Section 5.1 / reference [11] of the paper.
    registry:
        Operator property declarations; by default ``+`` and ``*`` are
        associative and commutative.
    outputs:
        Restrict the check to a subset of the output arrays (focused checking).
    correspondences:
        Pairs ``(original_array, transformed_array)`` of intermediate arrays
        declared by the designer to correspond element-wise; they are used as
        cut points and verified separately (focused checking, Section 6.1).
    tabling:
        Enable the reuse of established equivalences across overlapping
        sub-ADDGs (Section 6.2).  Disabling it is only useful for ablation
        benchmarks.
    check_preconditions:
        Run the def-use / single-assignment prerequisites (Fig. 6) first and
        report violations as diagnostics instead of checking equivalence.
    """
    original_program = _as_program(original)
    transformed_program = _as_program(transformed)

    started = time.perf_counter()
    precondition_diagnostics = []
    if check_preconditions:
        for side_name, program in (("original", original_program), ("transformed", transformed_program)):
            for issue in check_dataflow(program):
                precondition_diagnostics.append(
                    Diagnostic(
                        DiagnosticKind.PRECONDITION,
                        f"{side_name} program fails the def-use prerequisites: {issue}",
                    )
                )
    if precondition_diagnostics:
        stats = CheckStats(elapsed_seconds=time.perf_counter() - started)
        return EquivalenceResult(
            equivalent=False,
            outputs=[],
            diagnostics=precondition_diagnostics,
            stats=stats,
            method=method,
        )

    original_addg = build_addg(original_program)
    transformed_addg = build_addg(transformed_program)
    result = check_addgs(
        original_addg,
        transformed_addg,
        method=method,
        registry=registry,
        outputs=outputs,
        correspondences=correspondences,
        tabling=tabling,
    )
    result.stats.elapsed_seconds = time.perf_counter() - started
    return result


def check_addgs(
    original: ADDG,
    transformed: ADDG,
    *,
    method: str = "extended",
    registry: Optional[OperatorRegistry] = None,
    outputs: Optional[Sequence[str]] = None,
    correspondences: Sequence[Tuple[str, str]] = (),
    tabling: bool = True,
) -> EquivalenceResult:
    """Check equivalence of two already-extracted ADDGs."""
    started = time.perf_counter()
    engine = Engine(
        original,
        transformed,
        registry=registry if registry is not None else default_registry(),
        method=method,
        correspondences=correspondences,
        tabling=tabling,
    )

    requested = list(outputs) if outputs is not None else None
    original_outputs = list(original.outputs)
    transformed_outputs = list(transformed.outputs)
    if requested is None:
        to_check = [name for name in original_outputs if name in transformed_outputs]
        missing_in_transformed = [n for n in original_outputs if n not in transformed_outputs]
        missing_in_original = [n for n in transformed_outputs if n not in original_outputs]
    else:
        to_check = [n for n in requested if n in original_outputs and n in transformed_outputs]
        missing_in_transformed = [n for n in requested if n not in transformed_outputs]
        missing_in_original = [n for n in requested if n not in original_outputs]

    reports = []
    overall = True
    for name in missing_in_transformed:
        engine.diagnostics.append(
            Diagnostic(
                DiagnosticKind.OUTPUT_MISSING,
                f"output array {name!r} is not produced by the transformed program",
                output_array=name,
            )
        )
        overall = False
    for name in missing_in_original:
        engine.diagnostics.append(
            Diagnostic(
                DiagnosticKind.OUTPUT_MISSING,
                f"output array {name!r} is not produced by the original program",
                output_array=name,
            )
        )
        overall = False

    for name in to_check:
        engine.current_output = name
        diagnostics_before = len(engine.diagnostics)
        defined1 = original.written_set(name)
        defined2 = transformed.written_set(name)
        common = defined1.intersect(defined2.rename(defined1.names))
        if not defined1.is_equal(defined2.rename(defined1.names)):
            engine.diagnostics.append(
                Diagnostic(
                    DiagnosticKind.DOMAIN_MISMATCH,
                    f"the two programs define different element sets of output array {name!r}",
                    output_array=name,
                    original_mapping=str(defined1),
                    transformed_mapping=str(defined2),
                    mismatch_domain=str(
                        defined1.subtract(defined2.rename(defined1.names)).union(
                            defined2.rename(defined1.names).subtract(defined1)
                        )
                    ),
                )
            )
        identity = Map.identity(common.names, domain=common)
        term1 = engine.output_term(0, name, identity)
        term2 = engine.output_term(1, name, identity)
        ok = engine.compare(term1, term2)
        new_diagnostics = engine.diagnostics[diagnostics_before:]
        output_ok = ok and not new_diagnostics
        overall = overall and output_ok
        failing_domain = None
        for diagnostic in new_diagnostics:
            if diagnostic.mismatch_domain:
                failing_domain = diagnostic.mismatch_domain
                break
        reports.append(
            OutputReport(
                array=name,
                equivalent=output_ok,
                checked_domain=str(common),
                failing_domain=failing_domain,
            )
        )
    engine.current_output = None

    # Verify declared intermediate correspondences as separate obligations —
    # both the ones actually used as cut points during the traversal and the
    # ones the designer declared but the traversal never reached.
    obligations = set(engine.correspondence_obligations()) | set(engine.correspondences)
    for name1, name2 in sorted(obligations):
        diagnostics_before = len(engine.diagnostics)
        try:
            defined1 = original.written_set(name1)
            defined2 = transformed.written_set(name2)
        except KeyError:
            engine.diagnostics.append(
                Diagnostic(
                    DiagnosticKind.PRECONDITION,
                    f"declared correspondence ({name1!r}, {name2!r}) refers to an array that is never written",
                )
            )
            overall = False
            continue
        # The obligation is checked on the intersection of the defined element
        # sets: a declared correspondence may legitimately be partial (e.g.
        # when one program only materialises part of the temporary).
        common = defined1.intersect(defined2.rename(defined1.names))
        identity = Map.identity(common.names, domain=common)
        engine.current_output = name1
        term1 = engine.output_term(0, name1, identity)
        term2 = engine.output_term(1, name2, identity)
        # While discharging the obligation for this pair, the pair itself must
        # not be usable as a cut point (that would be circular).
        engine.correspondences.discard((name1, name2))
        try:
            ok = engine.compare(term1, term2)
        finally:
            engine.correspondences.add((name1, name2))
        new_diagnostics = engine.diagnostics[diagnostics_before:]
        if not (ok and not new_diagnostics):
            overall = False
        engine.current_output = None

    engine.apply_suspect_heuristic()
    engine.record_opcache_stats()
    engine.stats.original_addg_size = original.size()
    engine.stats.transformed_addg_size = transformed.size()
    engine.stats.elapsed_seconds = time.perf_counter() - started
    return EquivalenceResult(
        equivalent=overall,
        outputs=reports,
        diagnostics=engine.diagnostics,
        stats=engine.stats,
        method=method,
    )
