"""The synchronized ADDG traversal at the heart of the equivalence checker.

This module implements the method of Section 5 of the paper:

* the **basic method** (Section 5.1): a synchronized depth-first traversal of
  the two ADDGs that reduces intermediate variables by composing dependency
  mappings and checks, for every pair of corresponding paths, that the same
  operators appear in the same order and that the output–input mappings are
  identical;
* the **extended method** (Section 5.2): on operators declared associative
  and/or commutative the traversal first establishes a normal form through
  *flattening* (associative chains are collected across statements, reducing
  intermediate variables on the way) and *matching* (operands of commutative
  operators are paired using the output–input mappings when node labels are
  not unique);
* **tabling** of established equivalences so overlapping sub-ADDGs are not
  re-explored (Section 6.2), plus inductive assumptions for data-flow cycles
  (recurrences), whose soundness rests on the def-use order checked by
  :mod:`repro.analysis.dataflow`;
* structured **error diagnostics** (Section 6.1) with the mismatching
  mappings, the statements involved and suspect variables.

The engine works on two extracted :class:`~repro.addg.graph.ADDG` values; the
public entry point is :func:`repro.checker.api.check_equivalence`.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, List, Optional, Sequence, Set as PySet, Tuple

from ..presburger import Map, Set, SpaceMismatchError, opcache
from ..presburger.errors import PresburgerError
from ..telemetry import METRICS as _METRICS, TRACER as _TRACER
from ..addg.graph import ADDG, ConstNode, ExprNode, OpNode, ReadNode, StatementNode
from .properties import OperatorProperties, OperatorRegistry, default_registry
from .result import CheckStats, Diagnostic, DiagnosticKind

__all__ = ["Term", "Engine"]

# Path entries are ("array", name) or ("stmt", label) pairs.
PathEntry = Tuple[str, str]


class Term:
    """A position reached during the synchronized traversal.

    A term is either an array node, an operator occurrence, or a constant,
    together with the *output-current mapping* ``rel`` (a relation from the
    elements of the output array being checked to the elements / statement
    instances currently under consideration) and a provenance path used for
    diagnostics.
    """

    __slots__ = ("kind", "side", "array", "node", "value", "rel", "path")

    ARRAY = "array"
    OP = "op"
    CONST = "const"

    def __init__(
        self,
        kind: str,
        side: int,
        rel: Map,
        path: Tuple[PathEntry, ...],
        array: Optional[str] = None,
        node: Optional[OpNode] = None,
        value: Optional[int] = None,
    ):
        self.kind = kind
        self.side = side
        self.rel = rel
        self.path = path
        self.array = array
        self.node = node
        self.value = value

    def with_rel(self, rel: Map) -> "Term":
        return Term(self.kind, self.side, rel, self.path, self.array, self.node, self.value)

    def display(self) -> str:
        if self.kind == Term.ARRAY:
            return str(self.array)
        if self.kind == Term.CONST:
            return str(self.value)
        assert self.node is not None
        return self.node.name

    def path_text(self) -> Tuple[str, ...]:
        return tuple(entry[1] for entry in self.path)

    def path_statements(self) -> Tuple[str, ...]:
        return tuple(name for kind, name in self.path if kind == "stmt")

    def path_arrays(self) -> Tuple[str, ...]:
        return tuple(name for kind, name in self.path if kind == "array")

    def __repr__(self) -> str:
        return f"Term({self.kind}, side={self.side}, {self.display()!r})"


def _map_key(relation: Map) -> Tuple:
    return tuple(sorted(conjunct.normalized_key() for conjunct in relation.conjuncts))


class Engine:
    """One equivalence-checking run over a pair of ADDGs."""

    def __init__(
        self,
        original: ADDG,
        transformed: ADDG,
        registry: Optional[OperatorRegistry] = None,
        method: str = "extended",
        correspondences: Sequence[Tuple[str, str]] = (),
        tabling: bool = True,
        max_depth: int = 400,
        max_resolve_depth: int = 120,
    ):
        if method not in ("basic", "extended"):
            raise ValueError(f"unknown method {method!r} (expected 'basic' or 'extended')")
        self.addgs = (original, transformed)
        self.registry = registry if registry is not None else default_registry()
        self.method = method
        self.correspondences = {tuple(pair) for pair in correspondences}
        self.tabling_enabled = tabling
        self.max_depth = max_depth
        self.max_resolve_depth = max_resolve_depth

        self.diagnostics: List[Diagnostic] = []
        self.stats = CheckStats()
        self.current_output: Optional[str] = None

        self._table: Dict[Tuple, bool] = {}
        self._assumptions: List[Tuple[str, str, Map]] = []
        self._assumption_uses: PySet[int] = set()
        self._suppress = 0
        self._correspondence_obligations: PySet[Tuple[str, str]] = set()
        self._cyclic = (set(original.cyclic_arrays()), set(transformed.cyclic_arrays()))
        # Baseline of the process-wide Presburger operation-cache counters so
        # this run's share can be reported as a delta (the cache is shared
        # across engines in the process, like the paper's tabling is shared
        # across outputs of one check).
        self._opcache_baseline = opcache.snapshot()

    def record_opcache_stats(self) -> None:
        """Store this run's Presburger cache/intern activity into :attr:`stats`.

        Called once per :func:`repro.checker.api.check_addgs` run, after the
        traversal finished; the counters are deltas against the engine's
        construction-time snapshot, so concurrent warm state contributed by
        earlier checks in the same process is not double counted.
        """
        delta = opcache.snapshot().delta(self._opcache_baseline)
        self.stats.opcache_hits = delta.hits
        self.stats.opcache_misses = delta.misses
        self.stats.intern_hits = delta.intern_hits

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def addg(self, side: int) -> ADDG:
        return self.addgs[side]

    def properties(self, op: str) -> OperatorProperties:
        if self.method == "basic":
            return OperatorProperties()
        return self.registry.get(op)

    def _diag(self, diagnostic: Diagnostic) -> None:
        if self._suppress == 0:
            diagnostic.output_array = diagnostic.output_array or self.current_output
            self.diagnostics.append(diagnostic)

    def _restrict(self, term: Term, output_domain: Set) -> Term:
        return term.with_rel(term.rel.restrict_domain(output_domain))

    @staticmethod
    def _term_key(term: Term) -> Tuple:
        if term.kind == Term.ARRAY:
            identity: Tuple = ("array", term.array)
        elif term.kind == Term.CONST:
            identity = ("const", term.value)
        else:
            assert term.node is not None
            identity = ("op", term.node.statement_label, term.node.path)
        return (term.side, identity, _map_key(term.rel))

    # ------------------------------------------------------------------ #
    # Term constructors
    # ------------------------------------------------------------------ #
    def output_term(self, side: int, array: str, rel: Map) -> Term:
        return Term(Term.ARRAY, side, rel, (("array", array),), array=array)

    def _operand_term(self, parent: Term, child: ExprNode) -> Term:
        assert parent.kind == Term.OP
        if isinstance(child, ReadNode):
            rel = parent.rel.compose(child.dependency)
            path = parent.path + (("array", child.array),)
            return Term(Term.ARRAY, parent.side, rel, path, array=child.array)
        if isinstance(child, OpNode):
            return Term(Term.OP, parent.side, parent.rel, parent.path, node=child)
        if isinstance(child, ConstNode):
            return Term(Term.CONST, parent.side, parent.rel, parent.path, value=child.value)
        raise TypeError(f"unexpected ADDG node {type(child).__name__}")

    def _statement_entry_term(self, parent: Term, statement: StatementNode, rel: Map) -> Term:
        path = parent.path + (("stmt", statement.label),)
        node = statement.rhs
        if isinstance(node, OpNode):
            return Term(Term.OP, parent.side, rel, path, node=node)
        if isinstance(node, ConstNode):
            return Term(Term.CONST, parent.side, rel, path, value=node.value)
        if isinstance(node, ReadNode):
            new_rel = rel.compose(node.dependency)
            return Term(
                Term.ARRAY, parent.side, new_rel, path + (("array", node.array),), array=node.array
            )
        raise TypeError(f"unexpected ADDG node {type(node).__name__}")

    # ------------------------------------------------------------------ #
    # Resolution: reduce intermediate variables until op / const / input
    # ------------------------------------------------------------------ #
    def _is_input_term(self, term: Term) -> bool:
        return term.kind == Term.ARRAY and self.addg(term.side).is_input(term.array)

    def _is_cyclic_term(self, term: Term) -> bool:
        """True for array terms that belong to a data-flow cycle (recurrence)."""
        return term.kind == Term.ARRAY and term.array in self._cyclic[term.side]

    def _resolve(self, term: Term, depth: int = 0, allowance: int = 0) -> Tuple[List[Term], bool]:
        """Reduce *term* through intermediate-variable definitions.

        Returns ``(pieces, ok)`` where the pieces partition the output
        sub-domain of *term* and each piece is an operator, constant, input
        array, or *recurrence* array term; ``ok`` is false when part of the
        term reads elements that no statement defines (an *undefined read*).

        Recurrence arrays (cycles in the ADDG) are only expanded while
        *allowance* is positive; each expansion consumes one unit.  This keeps
        the traversal from unrolling recurrences: they are instead discharged
        by the inductive assumptions of :meth:`compare` (the counterpart of
        the paper's transitive-closure treatment of cycles).
        """
        if term.kind in (Term.OP, Term.CONST) or self._is_input_term(term):
            return [term], True
        if self._is_cyclic_term(term):
            if allowance <= 0:
                return [term], True
            allowance -= 1
        if depth > self.max_resolve_depth:
            self._diag(
                Diagnostic(
                    DiagnosticKind.UNSUPPORTED,
                    f"intermediate-variable reduction exceeded depth {self.max_resolve_depth} "
                    f"while reducing array {term.array!r} (possible copy cycle)",
                )
            )
            return [], False

        addg = self.addg(term.side)
        needed = term.rel.range()
        if needed.is_empty():
            return [], True

        pieces: List[Term] = []
        ok = True
        covered: Optional[Set] = None
        for statement in addg.defining_statements(term.array or ""):
            try:
                restricted = term.rel.restrict_range(statement.written.rename(term.rel.out_names))
            except SpaceMismatchError:
                self._diag(
                    Diagnostic(
                        DiagnosticKind.UNSUPPORTED,
                        f"array {term.array!r} is accessed with inconsistent dimensionality",
                    )
                )
                return [], False
            if restricted.is_empty():
                continue
            covered = statement.written if covered is None else covered.union(statement.written)
            child = self._statement_entry_term(term, statement, restricted)
            sub_pieces, sub_ok = self._resolve(child, depth + 1, allowance)
            pieces.extend(sub_pieces)
            ok = ok and sub_ok

        total_written: Optional[Set] = None
        for statement in addg.defining_statements(term.array or ""):
            total_written = (
                statement.written
                if total_written is None
                else total_written.union(statement.written)
            )
        if total_written is None:
            uncovered = needed
        else:
            uncovered = needed.subtract(total_written.rename(needed.names))
        if not uncovered.is_empty():
            side_name = "original" if term.side == 0 else "transformed"
            affected = term.rel.restrict_range(uncovered.rename(term.rel.out_names)).domain()
            diagnostic = Diagnostic(
                DiagnosticKind.UNDEFINED_READ,
                f"{side_name} program reads elements of {term.array!r} that are never defined",
                mismatch_domain=str(uncovered),
            )
            if term.side == 0:
                diagnostic.original_arrays = (term.array or "",)
                diagnostic.original_path = term.path_text()
                diagnostic.original_statements = term.path_statements()
            else:
                diagnostic.transformed_arrays = (term.array or "",)
                diagnostic.transformed_path = term.path_text()
                diagnostic.transformed_statements = term.path_statements()
            diagnostic.mismatch_domain = str(affected) if not affected.is_empty() else str(uncovered)
            self._diag(diagnostic)
            ok = False
        return pieces, ok

    # ------------------------------------------------------------------ #
    # The synchronized comparison
    # ------------------------------------------------------------------ #
    def compare(self, first: Term, second: Term, trial: bool = False, depth: int = 0) -> bool:
        """Check the sufficient condition for the two terms (memoized)."""
        self.stats.compare_calls += 1
        if depth > self.max_depth:
            self._diag(
                Diagnostic(
                    DiagnosticKind.UNSUPPORTED,
                    f"traversal exceeded the maximum depth of {self.max_depth}",
                )
            )
            return False

        key: Optional[Tuple] = None
        if self.tabling_enabled:
            key = (self._term_key(first), self._term_key(second))
            if key in self._table:
                self.stats.table_hits += 1
                if _TRACER.enabled:
                    _TRACER.event("engine.table_hit", "engine", output=self.current_output)
                if _METRICS.enabled:
                    _METRICS.inc("engine.table_hits")
                return self._table[key]

        entry_assumptions = len(self._assumptions)
        uses_before = set(self._assumption_uses)
        if trial:
            self._suppress += 1
        try:
            result = self._compare_inner(first, second, trial, depth)
        finally:
            if trial:
                self._suppress -= 1

        if self.tabling_enabled and key is not None:
            new_uses = self._assumption_uses - uses_before
            independent = all(index >= entry_assumptions for index in new_uses)
            if independent and (result or not trial):
                self._table[key] = result
                self.stats.table_entries = len(self._table)
                if _METRICS.enabled:
                    _METRICS.inc("engine.table_entries")
        return result

    def _compare_inner(self, first: Term, second: Term, trial: bool, depth: int) -> bool:
        domain1 = first.rel.domain()
        domain2 = second.rel.domain()
        if domain1.is_empty() and domain2.is_empty():
            return True
        try:
            domains_equal = domain1.is_equal(domain2)
        except SpaceMismatchError:
            self._diag(
                Diagnostic(
                    DiagnosticKind.KIND_MISMATCH,
                    "output spaces of the two programs have different dimensionality",
                )
            )
            return False
        if not domains_equal:
            common = domain1.intersect(domain2)
            self._diag(
                Diagnostic(
                    DiagnosticKind.DOMAIN_MISMATCH,
                    "the two paths define / use different parts of the output",
                    original_path=first.path_text(),
                    transformed_path=second.path_text(),
                    original_statements=first.path_statements(),
                    transformed_statements=second.path_statements(),
                    mismatch_domain=str(domain1.subtract(common).union(domain2.subtract(common))),
                )
            )
            return False

        # Constants.
        if first.kind == Term.CONST and second.kind == Term.CONST:
            if first.value == second.value:
                return True
            self._diag(
                Diagnostic(
                    DiagnosticKind.CONSTANT_MISMATCH,
                    f"constant {first.value} in the original vs {second.value} in the transformed program",
                    original_path=first.path_text(),
                    transformed_path=second.path_text(),
                    original_statements=first.path_statements(),
                    transformed_statements=second.path_statements(),
                )
            )
            return False

        input1 = self._is_input_term(first)
        input2 = self._is_input_term(second)
        if input1 and input2:
            return self._compare_leaves(first, second)

        both_arrays = (
            first.kind == Term.ARRAY
            and second.kind == Term.ARRAY
            and not input1
            and not input2
        )
        if both_arrays:
            if (first.array, second.array) in self.correspondences:
                return self._compare_via_correspondence(first, second)
            correspondence = self._correspondence_relation(first, second)
            if correspondence is not None:
                for index, (name1, name2, previous) in enumerate(self._assumptions):
                    if name1 == first.array and name2 == second.array:
                        try:
                            if correspondence.is_subset(previous):
                                self._assumption_uses.add(index)
                                self.stats.assumption_uses += 1
                                return True
                        except SpaceMismatchError:
                            continue
                self._assumptions.append((first.array or "", second.array or "", correspondence))
                try:
                    return self._compare_after_reduction(first, second, trial, depth)
                finally:
                    self._assumptions.pop()
        return self._compare_after_reduction(first, second, trial, depth)

    def _array_under_comparison(self, term: Term) -> bool:
        """True when the term's array is currently on the assumption stack (a cycle)."""
        position = 0 if term.side == 0 else 1
        return any(entry[position] == term.array for entry in self._assumptions)

    def _correspondence_relation(self, first: Term, second: Term) -> Optional[Map]:
        try:
            return first.rel.inverse().compose(second.rel)
        except (SpaceMismatchError, PresburgerError):
            return None

    def _compare_after_reduction(self, first: Term, second: Term, trial: bool, depth: int) -> bool:
        # One level of recurrence expansion is allowed here: the enclosing
        # compare() has just installed (or found) the inductive assumption for
        # this array pair, so unfolding one step is exactly the induction step.
        pieces1, ok1 = self._resolve(first, allowance=1)
        pieces2, ok2 = self._resolve(second, allowance=1)
        compared = self._compare_piecewise(pieces1, pieces2, trial, depth)
        return ok1 and ok2 and compared

    def _compare_piecewise(
        self, pieces1: Sequence[Term], pieces2: Sequence[Term], trial: bool, depth: int
    ) -> bool:
        ok = True
        for piece1 in pieces1:
            domain1 = piece1.rel.domain()
            if domain1.is_empty():
                continue
            for piece2 in pieces2:
                domain2 = piece2.rel.domain()
                common = domain1.intersect(domain2)
                if common.is_empty():
                    continue
                restricted1 = self._restrict(piece1, common)
                restricted2 = self._restrict(piece2, common)
                if not self._compare_resolved(restricted1, restricted2, trial, depth):
                    ok = False
        return ok

    def _compare_resolved(self, first: Term, second: Term, trial: bool, depth: int) -> bool:
        if first.kind == Term.CONST and second.kind == Term.CONST:
            return self._compare_inner(first, second, trial, depth)
        input1 = self._is_input_term(first)
        input2 = self._is_input_term(second)
        if input1 and input2:
            return self._compare_leaves(first, second)
        array1 = first.kind == Term.ARRAY and not input1
        array2 = second.kind == Term.ARRAY and not input2
        if array1 and array2:
            # Both sides stopped at recurrence arrays: go through the full
            # comparison (assumption / induction logic) for the pair.
            return self._compare_inner(first, second, trial, depth)
        if array1 or array2:
            # Only one side is an unexpanded recurrence array (the other side
            # inlined the definition differently); force one expansion step so
            # the structural comparison can proceed.
            pieces1, ok1 = (self._resolve(first, allowance=1) if array1 else ([first], True))
            pieces2, ok2 = (self._resolve(second, allowance=1) if array2 else ([second], True))
            return ok1 and ok2 and self._compare_piecewise(pieces1, pieces2, trial, depth + 1)
        if first.kind == Term.OP and second.kind == Term.OP:
            return self._compare_ops(first, second, trial, depth)
        # Mixed kinds after full resolution: a genuine structural mismatch.
        self._diag(
            Diagnostic(
                DiagnosticKind.KIND_MISMATCH,
                f"computation mismatch: {self._describe(first)} in the original program "
                f"vs {self._describe(second)} in the transformed program",
                original_path=first.path_text(),
                transformed_path=second.path_text(),
                original_statements=first.path_statements(),
                transformed_statements=second.path_statements(),
                original_arrays=first.path_arrays(),
                transformed_arrays=second.path_arrays(),
            )
        )
        return False

    def _describe(self, term: Term) -> str:
        if term.kind == Term.OP:
            assert term.node is not None
            return f"operator {term.node.op!r} (statement {term.node.statement_label})"
        if term.kind == Term.CONST:
            return f"constant {term.value}"
        return f"input array {term.array!r}"

    # ------------------------------------------------------------------ #
    # Leaves
    # ------------------------------------------------------------------ #
    def _compare_leaves(self, first: Term, second: Term) -> bool:
        self.stats.leaf_comparisons += 1
        self.stats.paths_checked += 1
        if first.array != second.array:
            self._diag(
                Diagnostic(
                    DiagnosticKind.LEAF_MISMATCH,
                    f"corresponding paths end at different input arrays: {first.array!r} in the "
                    f"original program, {second.array!r} in the transformed program",
                    original_arrays=(first.array or "",),
                    transformed_arrays=(second.array or "",),
                    original_path=first.path_text(),
                    transformed_path=second.path_text(),
                    original_statements=first.path_statements(),
                    transformed_statements=second.path_statements(),
                    original_mapping=str(first.rel),
                    transformed_mapping=str(second.rel),
                )
            )
            return False
        try:
            if first.rel.is_equal(second.rel):
                return True
        except SpaceMismatchError:
            self._diag(
                Diagnostic(
                    DiagnosticKind.KIND_MISMATCH,
                    f"input array {first.array!r} is accessed with different dimensionality",
                )
            )
            return False
        difference = first.rel.subtract(second.rel).union(second.rel.subtract(first.rel))
        self._diag(
            Diagnostic(
                DiagnosticKind.MAPPING_MISMATCH,
                f"output-input mappings to input array {first.array!r} differ on corresponding paths",
                original_arrays=(first.array or "",),
                transformed_arrays=(second.array or "",),
                original_mapping=str(first.rel),
                transformed_mapping=str(second.rel),
                mismatch_domain=str(difference.domain()),
                original_path=first.path_text(),
                transformed_path=second.path_text(),
                original_statements=first.path_statements(),
                transformed_statements=second.path_statements(),
            )
        )
        return False

    def _compare_via_correspondence(self, first: Term, second: Term) -> bool:
        """Handle a user-declared intermediate correspondence as a cut point."""
        self._correspondence_obligations.add((first.array or "", second.array or ""))
        self.stats.leaf_comparisons += 1
        try:
            if first.rel.is_equal(second.rel):
                return True
        except SpaceMismatchError:
            pass
        self._diag(
            Diagnostic(
                DiagnosticKind.MAPPING_MISMATCH,
                f"mappings to corresponding intermediate arrays {first.array!r} / {second.array!r} differ",
                original_mapping=str(first.rel),
                transformed_mapping=str(second.rel),
                original_path=first.path_text(),
                transformed_path=second.path_text(),
            )
        )
        return False

    def correspondence_obligations(self) -> List[Tuple[str, str]]:
        return sorted(self._correspondence_obligations)

    # ------------------------------------------------------------------ #
    # Operators: positional, flattening, matching
    # ------------------------------------------------------------------ #
    def _compare_ops(self, first: Term, second: Term, trial: bool, depth: int) -> bool:
        node1, node2 = first.node, second.node
        assert node1 is not None and node2 is not None
        if node1.op != node2.op:
            self._diag(
                Diagnostic(
                    DiagnosticKind.OPERATOR_MISMATCH,
                    f"operator {node1.op!r} (statement {node1.statement_label}) in the original "
                    f"program does not match operator {node2.op!r} (statement "
                    f"{node2.statement_label}) in the transformed program",
                    original_statements=(node1.statement_label,),
                    transformed_statements=(node2.statement_label,),
                    original_path=first.path_text(),
                    transformed_path=second.path_text(),
                )
            )
            return False

        properties = self.properties(node1.op)
        if properties.associative:
            self.stats.flatten_operations += 1
            flattened1 = self._flatten(first, node1.op)
            flattened2 = self._flatten(second, node2.op)
            return self._compare_flattened(flattened1, flattened2, properties, trial, depth)
        if properties.commutative:
            operands1 = [self._operand_term(first, child) for child in node1.operands]
            operands2 = [self._operand_term(second, child) for child in node2.operands]
            if len(operands1) != len(operands2):
                self._diag_operand_count(first, second, len(operands1), len(operands2))
                return False
            self.stats.matching_operations += 1
            return self._match_terms(operands1, operands2, trial, depth)

        # No algebraic laws: synchronized positional traversal (basic method).
        operands1 = [self._operand_term(first, child) for child in node1.operands]
        operands2 = [self._operand_term(second, child) for child in node2.operands]
        if len(operands1) != len(operands2):
            self._diag_operand_count(first, second, len(operands1), len(operands2))
            return False
        ok = True
        for child1, child2 in zip(operands1, operands2):
            if not self.compare(child1, child2, trial, depth + 1):
                ok = False
        return ok

    def _diag_operand_count(self, first: Term, second: Term, count1: int, count2: int) -> None:
        self._diag(
            Diagnostic(
                DiagnosticKind.OPERAND_COUNT_MISMATCH,
                f"operator has {count1} operand(s) in the original program but {count2} in the "
                "transformed program",
                original_path=first.path_text(),
                transformed_path=second.path_text(),
                original_statements=first.path_statements(),
                transformed_statements=second.path_statements(),
            )
        )

    # ---------------------------- flattening ---------------------------- #
    def _flatten(self, term: Term, op: str, depth: int = 0) -> List[Tuple[Set, List[Term]]]:
        """Collect the operand terms of the maximal *op*-chain rooted at *term*.

        Intermediate variables encountered inside the chain are reduced on the
        fly (Fig. 4 of the paper), so the chain may span several statements.
        The result is a list of pieces ``(output sub-domain, ordered terms)``
        because piece-wise defined intermediate arrays may give the chain a
        different shape on different parts of the output.
        """
        assert term.kind == Term.OP and term.node is not None
        results: List[Tuple[Set, List[Term]]] = [(term.rel.domain(), [])]
        for child in term.node.operands:
            child_term = self._operand_term(term, child)
            expanded = self._expand_chain_element(child_term, op, depth)
            merged: List[Tuple[Set, List[Term]]] = []
            for domain_acc, terms_acc in results:
                for domain_new, terms_new in expanded:
                    common = domain_acc.intersect(domain_new)
                    if common.is_empty():
                        continue
                    merged.append((common, terms_acc + terms_new))
            results = merged
            if not results:
                break
        return [
            (domain, [self._restrict(element, domain) for element in terms])
            for domain, terms in results
        ]

    def _expand_chain_element(self, term: Term, op: str, depth: int) -> List[Tuple[Set, List[Term]]]:
        if depth > 80:
            self._diag(
                Diagnostic(
                    DiagnosticKind.UNSUPPORTED,
                    "flattening exceeded the maximum associative-chain depth",
                )
            )
            return [(term.rel.domain(), [term])]
        if term.kind == Term.ARRAY and self._array_under_comparison(term):
            # Do not unroll a recurrence through flattening: keep the
            # recursive operand as a chain element so that it is discharged by
            # the inductive assumption (the paper's transitive-closure
            # treatment of cycles corresponds to this cut).
            return [(term.rel.domain(), [term])]
        pieces, _ok = self._resolve(term)
        expanded: List[Tuple[Set, List[Term]]] = []
        for piece in pieces:
            if (
                piece.kind == Term.OP
                and piece.node is not None
                and piece.node.op == op
                and self.properties(op).associative
            ):
                expanded.extend(self._flatten(piece, op, depth + 1))
            else:
                expanded.append((piece.rel.domain(), [piece]))
        return expanded

    def _compare_flattened(
        self,
        flattened1: Sequence[Tuple[Set, List[Term]]],
        flattened2: Sequence[Tuple[Set, List[Term]]],
        properties: OperatorProperties,
        trial: bool,
        depth: int,
    ) -> bool:
        ok = True
        for domain1, terms1 in flattened1:
            if domain1.is_empty():
                continue
            for domain2, terms2 in flattened2:
                common = domain1.intersect(domain2)
                if common.is_empty():
                    continue
                restricted1 = [self._restrict(t, common) for t in terms1]
                restricted2 = [self._restrict(t, common) for t in terms2]
                if properties.commutative:
                    self.stats.matching_operations += 1
                    if not self._match_terms(restricted1, restricted2, trial, depth):
                        ok = False
                else:
                    if len(restricted1) != len(restricted2):
                        self._diag(
                            Diagnostic(
                                DiagnosticKind.OPERAND_COUNT_MISMATCH,
                                f"associative chain has {len(restricted1)} operand(s) in the original "
                                f"program but {len(restricted2)} in the transformed program",
                                mismatch_domain=str(common),
                            )
                        )
                        ok = False
                        continue
                    for element1, element2 in zip(restricted1, restricted2):
                        if not self.compare(element1, element2, trial, depth + 1):
                            ok = False
        return ok

    # ----------------------------- matching ----------------------------- #
    @staticmethod
    def _signature(term: Term, addg: ADDG) -> Tuple:
        if term.kind == Term.CONST:
            return ("const", term.value)
        if term.kind == Term.ARRAY and addg.is_input(term.array or ""):
            return ("input", term.array)
        if term.kind == Term.ARRAY:
            return ("other",)
        assert term.node is not None
        return ("op", term.node.op)

    def _match_terms(self, terms1: List[Term], terms2: List[Term], trial: bool, depth: int) -> bool:
        """Pair the operands of a commutative operator (Section 5.2, "matching")."""
        if len(terms1) != len(terms2):
            self._diag(
                Diagnostic(
                    DiagnosticKind.OPERAND_COUNT_MISMATCH,
                    f"commutative operator has {len(terms1)} operand(s) in the original program "
                    f"but {len(terms2)} in the transformed program",
                )
            )
            return False

        groups1: Dict[Tuple, List[Term]] = {}
        groups2: Dict[Tuple, List[Term]] = {}
        for term in terms1:
            groups1.setdefault(self._signature(term, self.addg(0)), []).append(term)
        for term in terms2:
            groups2.setdefault(self._signature(term, self.addg(1)), []).append(term)

        if {k: len(v) for k, v in groups1.items()} != {k: len(v) for k, v in groups2.items()}:
            self._diag(
                Diagnostic(
                    DiagnosticKind.SIGNATURE_MISMATCH,
                    "the operands of a commutative operator cannot be paired: the original program "
                    f"supplies {sorted(self._describe_group(groups1))} while the transformed program "
                    f"supplies {sorted(self._describe_group(groups2))}",
                    original_arrays=tuple(t.array for t in terms1 if t.array),
                    transformed_arrays=tuple(t.array for t in terms2 if t.array),
                )
            )
            return False

        ok = True
        failing_pairs: List[Tuple[Term, Term]] = []
        for signature, group1 in groups1.items():
            group2 = groups2[signature]
            if len(group1) == 1:
                if not self.compare(group1[0], group2[0], trial, depth + 1):
                    ok = False
                    failing_pairs.append((group1[0], group2[0]))
                continue
            compatibility = [
                [self.compare(a, b, True, depth + 1) for b in group2] for a in group1
            ]
            matching = _maximum_matching(compatibility)
            if len(matching) == len(group1):
                continue
            ok = False
            matched_rows = {i for i, _ in matching}
            matched_cols = {j for _, j in matching}
            unmatched1 = [group1[i] for i in range(len(group1)) if i not in matched_rows]
            unmatched2 = [group2[j] for j in range(len(group2)) if j not in matched_cols]
            failing_pairs.extend(zip(unmatched1, unmatched2))

        if failing_pairs and not trial:
            self._report_matching_failures(failing_pairs)
        return ok

    @staticmethod
    def _describe_group(groups: Dict[Tuple, List[Term]]) -> List[str]:
        result = []
        for signature, members in groups.items():
            result.append(f"{signature[0]}:{signature[1] if len(signature) > 1 else ''}x{len(members)}")
        return result

    def _report_matching_failures(self, failing_pairs: Sequence[Tuple[Term, Term]]) -> None:
        for term1, term2 in failing_pairs:
            if self._is_input_term(term1) and self._is_input_term(term2) and term1.array == term2.array:
                # Re-run the leaf comparison without suppression to get the
                # detailed mapping-mismatch diagnostic of Section 6.1.
                self._compare_leaves(term1, term2)
            else:
                self._diag(
                    Diagnostic(
                        DiagnosticKind.MATCHING_FAILURE,
                        f"no valid pairing found for operand {self._describe(term1)} of the original "
                        f"program against operand {self._describe(term2)} of the transformed program",
                        original_mapping=str(term1.rel),
                        transformed_mapping=str(term2.rel),
                        original_path=term1.path_text(),
                        transformed_path=term2.path_text(),
                        original_statements=term1.path_statements(),
                        transformed_statements=term2.path_statements(),
                        original_arrays=term1.path_arrays(),
                        transformed_arrays=term2.path_arrays(),
                    )
                )

    # ------------------------------------------------------------------ #
    # Suspect heuristic (Section 6.1)
    # ------------------------------------------------------------------ #
    def apply_suspect_heuristic(self) -> None:
        """Annotate mapping/matching diagnostics with suspect statements and arrays.

        Following Section 6.1: when several corresponding paths fail, a
        variable that is common to all failing paths of the transformed
        program (and is not an input or output) is the most likely place of
        the error; the statements on those paths are reported as suspects.
        """
        failing = [
            d
            for d in self.diagnostics
            if d.kind
            in (
                DiagnosticKind.MAPPING_MISMATCH,
                DiagnosticKind.MATCHING_FAILURE,
                DiagnosticKind.LEAF_MISMATCH,
            )
        ]
        if not failing:
            return
        transformed = self.addg(1)
        candidate_sets = []
        for diagnostic in failing:
            arrays = {
                name
                for name in diagnostic.transformed_path
                if name in transformed.intermediates
            }
            candidate_sets.append(arrays)
        common = set.intersection(*candidate_sets) if candidate_sets else set()
        statements: PySet[str] = set()
        for diagnostic in failing:
            statements.update(diagnostic.transformed_statements)
        for diagnostic in failing:
            diagnostic.suspect_arrays = tuple(sorted(common))
            diagnostic.suspect_statements = tuple(sorted(statements))


def _maximum_matching(compatibility: List[List[bool]]) -> List[Tuple[int, int]]:
    """Maximum bipartite matching (Kuhn's algorithm) over a boolean matrix."""
    rows = len(compatibility)
    cols = len(compatibility[0]) if rows else 0
    match_for_col: List[Optional[int]] = [None] * cols

    def try_augment(row: int, visited: List[bool]) -> bool:
        for col in range(cols):
            if compatibility[row][col] and not visited[col]:
                visited[col] = True
                if match_for_col[col] is None or try_augment(match_for_col[col], visited):
                    match_for_col[col] = row
                    return True
        return False

    for row in range(rows):
        try_augment(row, [False] * cols)
    return [(row, col) for col, row in enumerate(match_for_col) if row is not None]
