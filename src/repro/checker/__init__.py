"""The equivalence checker: properties, engine, diagnostics, public API."""

from .api import check_addgs, check_equivalence
from .engine import Engine, Term
from .properties import OperatorProperties, OperatorRegistry, default_registry, empty_registry
from .result import CheckStats, Diagnostic, DiagnosticKind, EquivalenceResult, OutputReport

__all__ = [
    "CheckStats",
    "Diagnostic",
    "DiagnosticKind",
    "Engine",
    "EquivalenceResult",
    "OperatorProperties",
    "OperatorRegistry",
    "OutputReport",
    "Term",
    "check_addgs",
    "check_equivalence",
    "default_registry",
    "empty_registry",
]
