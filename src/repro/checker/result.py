"""Checker verdicts, statistics and error diagnostics.

The checker never simply answers "no": every failed check produces a
:class:`Diagnostic` carrying the kind of mismatch, the statements and arrays
involved on both sides, the conflicting dependency mappings and the output
domain on which they disagree, plus suspect statements/variables derived by
the heuristic of Section 6.1.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields as dataclass_fields
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["Diagnostic", "CheckStats", "OutputReport", "EquivalenceResult", "DiagnosticKind"]


class DiagnosticKind:
    """Symbolic names of the diagnostic categories emitted by the checker."""

    PRECONDITION = "precondition"
    OUTPUT_MISSING = "output-missing"
    DOMAIN_MISMATCH = "output-domain-mismatch"
    UNDEFINED_READ = "undefined-read"
    OPERATOR_MISMATCH = "operator-mismatch"
    LEAF_MISMATCH = "leaf-mismatch"
    CONSTANT_MISMATCH = "constant-mismatch"
    MAPPING_MISMATCH = "mapping-mismatch"
    OPERAND_COUNT_MISMATCH = "operand-count-mismatch"
    SIGNATURE_MISMATCH = "signature-mismatch"
    MATCHING_FAILURE = "matching-failure"
    KIND_MISMATCH = "kind-mismatch"
    UNSUPPORTED = "unsupported"

    ALL = (
        PRECONDITION,
        OUTPUT_MISSING,
        DOMAIN_MISMATCH,
        UNDEFINED_READ,
        OPERATOR_MISMATCH,
        LEAF_MISMATCH,
        CONSTANT_MISMATCH,
        MAPPING_MISMATCH,
        OPERAND_COUNT_MISMATCH,
        SIGNATURE_MISMATCH,
        MATCHING_FAILURE,
        KIND_MISMATCH,
        UNSUPPORTED,
    )


@dataclass
class Diagnostic:
    """A single piece of error feedback for the designer."""

    kind: str
    message: str
    output_array: Optional[str] = None
    original_statements: Tuple[str, ...] = ()
    transformed_statements: Tuple[str, ...] = ()
    original_arrays: Tuple[str, ...] = ()
    transformed_arrays: Tuple[str, ...] = ()
    original_mapping: Optional[str] = None
    transformed_mapping: Optional[str] = None
    mismatch_domain: Optional[str] = None
    original_path: Tuple[str, ...] = ()
    transformed_path: Tuple[str, ...] = ()
    suspect_statements: Tuple[str, ...] = ()
    suspect_arrays: Tuple[str, ...] = ()

    def format(self) -> str:
        """A multi-line human readable rendering of the diagnostic."""
        lines = [f"[{self.kind}] {self.message}"]
        if self.output_array:
            lines.append(f"  output array      : {self.output_array}")
        if self.original_statements:
            lines.append(f"  original stmts    : {', '.join(self.original_statements)}")
        if self.transformed_statements:
            lines.append(f"  transformed stmts : {', '.join(self.transformed_statements)}")
        if self.original_mapping:
            lines.append(f"  original mapping  : {self.original_mapping}")
        if self.transformed_mapping:
            lines.append(f"  transformed mapping: {self.transformed_mapping}")
        if self.mismatch_domain:
            lines.append(f"  mismatch domain   : {self.mismatch_domain}")
        if self.original_path:
            lines.append(f"  original path     : {' -> '.join(self.original_path)}")
        if self.transformed_path:
            lines.append(f"  transformed path  : {' -> '.join(self.transformed_path)}")
        if self.suspect_statements:
            lines.append(f"  suspect statements: {', '.join(self.suspect_statements)}")
        if self.suspect_arrays:
            lines.append(f"  suspect variables : {', '.join(self.suspect_arrays)}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format()

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable rendering (tuples become lists)."""
        data = asdict(self)
        return {key: list(value) if isinstance(value, tuple) else value for key, value in data.items()}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Diagnostic":
        kwargs = dict(data)
        for key in (
            "original_statements",
            "transformed_statements",
            "original_arrays",
            "transformed_arrays",
            "original_path",
            "transformed_path",
            "suspect_statements",
            "suspect_arrays",
        ):
            if key in kwargs and kwargs[key] is not None:
                kwargs[key] = tuple(kwargs[key])
        return cls(**kwargs)


@dataclass
class CheckStats:
    """Work counters of one equivalence check (used by the benchmarks).

    The tabling counters (``table_hits`` / ``table_entries``) instrument the
    Section 6.2 reuse of established equivalences; the ``opcache_*`` and
    ``intern_hits`` counters instrument the layer below — the memoized
    Presburger operation cache of :mod:`repro.presburger.opcache` — as a
    per-check delta of the process-wide counters.

    Wall time is split along the pipeline stages of the staged verifier API:
    ``frontend_seconds`` (parse + def-use + ADDG extraction actually paid by
    this check — a session-cached :class:`~repro.verifier.session.CompiledProgram`
    contributes ~0) and ``engine_seconds`` (the synchronized traversal);
    ``elapsed_seconds`` is kept as their sum for schema compatibility.
    ``phase_seconds`` refines the split further when :mod:`repro.telemetry`
    tracing is active during the check: a per-phase breakdown (``frontend`` /
    ``engine`` / ``presburger`` / …) aggregated from the very spans the trace
    file carries.  It stays empty when tracing is off, and readers must treat
    it as schema-tolerant: keys may come and go as instrumentation evolves.
    """

    elapsed_seconds: float = 0.0
    frontend_seconds: float = 0.0
    engine_seconds: float = 0.0
    compare_calls: int = 0
    leaf_comparisons: int = 0
    paths_checked: int = 0
    table_hits: int = 0
    table_entries: int = 0
    flatten_operations: int = 0
    matching_operations: int = 0
    assumption_uses: int = 0
    original_addg_size: int = 0
    transformed_addg_size: int = 0
    opcache_hits: int = 0
    opcache_misses: int = 0
    intern_hits: int = 0
    # Which decision-procedure backend produced the verdict (PR 8,
    # ``repro.solvers``) and how many queries it answered, keyed
    # ``"<backend>.<kind>"``.  ``solver_queries`` stays empty under the
    # default omega backend, whose decisions run inline.
    backend: str = "omega"
    solver_queries: Dict[str, int] = field(default_factory=dict)
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    # Keys from other schema versions, preserved verbatim by the round trip
    # (never interpreted here); see ``from_dict``.
    extra: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            f.name: getattr(self, f.name) for f in dataclass_fields(self) if f.name != "extra"
        }
        data["phase_seconds"] = dict(self.phase_seconds)
        # Unknown keys ride along at the top level so a row written by a
        # different stats schema re-serialises losslessly; known keys always
        # win over a stale extra entry of the same name.
        for key, value in self.extra.items():
            data.setdefault(key, value)
        return data

    # ``as_dict`` predates the cache; ``to_dict``/``from_dict`` complete the
    # round trip used by the verification service.
    to_dict = as_dict

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CheckStats":
        known = {f.name for f in dataclass_fields(cls)} - {"extra"}
        # Tolerate rows written by other versions of the stats schema: extra
        # keys are parked in ``extra`` (and re-emitted by ``to_dict``, so the
        # round trip is lossless), missing ones keep their defaults.
        stats = cls(**{key: value for key, value in data.items() if key in known})
        stats.phase_seconds = dict(stats.phase_seconds)
        stats.extra = {key: value for key, value in data.items() if key not in known}
        return stats


@dataclass
class OutputReport:
    """The per-output-array verdict of a check."""

    array: str
    equivalent: bool
    checked_domain: Optional[str] = None
    failing_domain: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "OutputReport":
        return cls(**data)


@dataclass
class EquivalenceResult:
    """The overall verdict of one equivalence check."""

    equivalent: bool
    outputs: List[OutputReport] = field(default_factory=list)
    diagnostics: List[Diagnostic] = field(default_factory=list)
    stats: CheckStats = field(default_factory=CheckStats)
    method: str = "extended"

    def failures(self) -> List[Diagnostic]:
        return list(self.diagnostics)

    def diagnostics_of_kind(self, kind: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.kind == kind]

    def summary(self) -> str:
        """A compact human readable report (what the CLI prints)."""
        lines = []
        verdict = "EQUIVALENT" if self.equivalent else "NOT PROVEN EQUIVALENT"
        lines.append(f"{verdict}  (method: {self.method})")
        for report in self.outputs:
            status = "ok" if report.equivalent else "FAILED"
            line = f"  output {report.array}: {status}"
            if report.failing_domain and not report.equivalent:
                line += f"  (failing on {report.failing_domain})"
            lines.append(line)
        if self.diagnostics:
            lines.append(f"  {len(self.diagnostics)} diagnostic(s):")
            for diagnostic in self.diagnostics:
                for text_line in diagnostic.format().splitlines():
                    lines.append("    " + text_line)
        lines.append(
            "  stats: "
            f"{self.stats.paths_checked} path(s), {self.stats.compare_calls} compare call(s), "
            f"{self.stats.table_hits} table hit(s), {self.stats.opcache_hits} opcache hit(s), "
            f"{self.stats.elapsed_seconds:.3f} s"
        )
        return "\n".join(lines)

    def __bool__(self) -> bool:
        return self.equivalent

    def __str__(self) -> str:
        return self.summary()

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable rendering; inverse of :meth:`from_dict`.

        Used by :mod:`repro.service` to persist verdicts in the result cache
        and to ship results across process boundaries.
        """
        return {
            "equivalent": self.equivalent,
            "outputs": [report.to_dict() for report in self.outputs],
            "diagnostics": [diagnostic.to_dict() for diagnostic in self.diagnostics],
            "stats": self.stats.to_dict(),
            "method": self.method,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "EquivalenceResult":
        return cls(
            equivalent=data["equivalent"],
            outputs=[OutputReport.from_dict(entry) for entry in data.get("outputs", [])],
            diagnostics=[Diagnostic.from_dict(entry) for entry in data.get("diagnostics", [])],
            stats=CheckStats.from_dict(data.get("stats", {})),
            method=data.get("method", "extended"),
        )
