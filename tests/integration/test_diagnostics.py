"""Integration test E6: error diagnostics (Section 6.1).

For (a) vs (d) the checker must report mapping mismatches on the paths through
``buf`` (statements v1 / v3), show the conflicting output-input mappings
``{[x] -> [2x]}`` vs ``{[x] -> [x]}``, restrict the mismatch to even output
indices, and blame ``buf`` as the suspect variable.  Additional cases cover
mismatched operators / leaves and errors injected into kernels.
"""

import pytest

from repro.checker import DiagnosticKind, check_equivalence
from repro.presburger import parse_map, parse_set
from repro.transforms import change_operator, perturb_read_index, replace_read_array
from repro.workloads import fig1_program, kernel_pair


@pytest.fixture(scope="module")
def fig1_result():
    return check_equivalence(fig1_program("a", 1024), fig1_program("d", 1024))


class TestPaperDiagnostics:
    def test_verdict_and_kind(self, fig1_result):
        assert not fig1_result.equivalent
        mismatches = fig1_result.diagnostics_of_kind(DiagnosticKind.MAPPING_MISMATCH)
        assert len(mismatches) >= 2  # one per failing path pair {(p,z), (r,y)}

    def test_failing_paths_involve_both_inputs(self, fig1_result):
        mismatches = fig1_result.diagnostics_of_kind(DiagnosticKind.MAPPING_MISMATCH)
        arrays = {d.original_arrays[0] for d in mismatches if d.original_arrays}
        assert arrays == {"A", "B"}

    def test_statements_v1_v3_are_reported(self, fig1_result):
        mismatches = fig1_result.diagnostics_of_kind(DiagnosticKind.MAPPING_MISMATCH)
        for diagnostic in mismatches:
            assert "v3" in diagnostic.transformed_statements
            assert "v1" in diagnostic.transformed_statements

    def test_conflicting_mappings_match_the_paper(self, fig1_result):
        mismatches = fig1_result.diagnostics_of_kind(DiagnosticKind.MAPPING_MISMATCH)
        diagnostic = mismatches[0]
        original = parse_map(diagnostic.original_mapping)
        transformed = parse_map(diagnostic.transformed_mapping)
        # On their common domain (even x), the original maps x -> 2x and the
        # erroneous program maps x -> x.
        assert original.is_subset(parse_map("{ [x] -> [2x] }"))
        assert transformed.is_subset(parse_map("{ [x] -> [x] }"))

    def test_mismatch_domain_is_the_even_indices(self, fig1_result):
        diagnostic = fig1_result.diagnostics_of_kind(DiagnosticKind.MAPPING_MISMATCH)[0]
        domain = parse_set(diagnostic.mismatch_domain)
        evens = parse_set("{ [x] : exists j : x = 2j and 0 <= x < 1023 }")
        odds = parse_set("{ [x] : exists j : x = 2j + 1 and 0 <= x < 1023 }")
        assert domain.is_subset(evens)
        assert domain.is_disjoint(odds)
        # the mismatch covers (at least) every even index from 2 upwards
        assert domain.contains([2]) and domain.contains([1000])

    def test_suspect_heuristic_blames_buf(self, fig1_result):
        mismatches = fig1_result.diagnostics_of_kind(DiagnosticKind.MAPPING_MISMATCH)
        for diagnostic in mismatches:
            assert diagnostic.suspect_arrays == ("buf",)
            assert set(diagnostic.suspect_statements) >= {"v1", "v3"}

    def test_paths_are_recorded_for_both_sides(self, fig1_result):
        diagnostic = fig1_result.diagnostics_of_kind(DiagnosticKind.MAPPING_MISMATCH)[0]
        assert diagnostic.original_path[0] == "C"
        assert diagnostic.transformed_path[0] == "C"
        assert "buf" in diagnostic.transformed_path

    def test_per_output_report(self, fig1_result):
        report = fig1_result.outputs[0]
        assert report.array == "C"
        assert not report.equivalent
        assert report.failing_domain


class TestInjectedErrorDiagnostics:
    def test_wrong_array_is_reported_as_leaf_mismatch(self):
        pair = kernel_pair("downsample", n=32)
        broken, _ = replace_read_array(pair.transformed, "k2", "x", "y")
        result = check_equivalence(pair.original, broken, check_preconditions=False)
        assert not result.equivalent

    def test_wrong_operator_is_reported(self):
        pair = kernel_pair("wavelet_lift", n=32)
        broken, _ = change_operator(pair.transformed, "m3", "+", "-")
        result = check_equivalence(pair.original, broken)
        assert not result.equivalent
        assert result.diagnostics_of_kind(DiagnosticKind.OPERATOR_MISMATCH)

    def test_index_error_produces_mapping_mismatch_with_suspects(self):
        pair = kernel_pair("downsample", n=32)
        broken, mutation = perturb_read_index(pair.transformed, "k3", occurrence=0, delta=1)
        result = check_equivalence(pair.original, broken)
        assert not result.equivalent
        mismatches = result.diagnostics_of_kind(DiagnosticKind.MAPPING_MISMATCH)
        assert mismatches
        # the mutated statement must show up among the reported / suspect statements
        suspects = set()
        for diagnostic in mismatches:
            suspects.update(diagnostic.suspect_statements)
            suspects.update(diagnostic.transformed_statements)
        assert mutation.label in suspects
        # and the diagnostics single out the temporary read by the mutated statement
        arrays = set()
        for diagnostic in mismatches:
            arrays.update(diagnostic.suspect_arrays)
            arrays.update(diagnostic.transformed_path)
        assert {"even", "odd"} & arrays

    def test_diagnostics_render_as_text(self):
        result = check_equivalence(fig1_program("a", 64), fig1_program("d", 64))
        text = result.summary()
        assert "mapping-mismatch" in text
        assert "suspect" in text
