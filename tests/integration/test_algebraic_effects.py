"""Integration test E10: the effect of algebraic transformations on an ADDG (Fig. 3).

Fig. 3 describes three cases: (a) associativity regroups the end nodes of an
operator chain while keeping their order, (b) commutativity permutes the
operand positions of a node, and (c) their combination allows any tree of the
operator over the same end nodes.  These tests build such variants — both by
hand and with the transformation engine — and check that the extended method
proves every variant equivalent while the basic method accepts only the
identity-shaped ones.
"""

import itertools
import random

import pytest

from repro.checker import check_equivalence
from repro.lang import outputs_equal, parse_program, random_input_provider, run_program
from repro.transforms import reassociate_chain

TEMPLATE = """
f(int A[], int B[], int C[])
{{
    int k;
    for (k = 0; k < 32; k++)
s1:     C[k] = {expr};
}}
"""

#: The four end nodes of the chain, in the order used by the "original".
END_NODES = ["A[k]", "A[2*k]", "B[k]", "B[k + 1]"]


def chain_program(order, shape):
    """Build the program whose s1 sums END_NODES[order] with the given tree *shape*.

    ``shape`` is one of "left", "right", "balanced" — three different trees of
    +-nodes over the same end nodes (Fig. 3(c)).
    """
    leaves = [END_NODES[i] for i in order]
    if shape == "left":
        expr = f"(({leaves[0]} + {leaves[1]}) + {leaves[2]}) + {leaves[3]}"
    elif shape == "right":
        expr = f"{leaves[0]} + ({leaves[1]} + ({leaves[2]} + {leaves[3]}))"
    else:
        expr = f"({leaves[0]} + {leaves[1]}) + ({leaves[2]} + {leaves[3]})"
    return parse_program(TEMPLATE.format(expr=expr))


ORIGINAL = chain_program([0, 1, 2, 3], "left")


class TestAssociativityOnly:
    """Fig. 3(a): regrouping without reordering."""

    @pytest.mark.parametrize("shape", ["right", "balanced"])
    def test_regrouped_chains_are_equivalent(self, shape):
        variant = chain_program([0, 1, 2, 3], shape)
        assert check_equivalence(ORIGINAL, variant).equivalent
        assert not check_equivalence(ORIGINAL, variant, method="basic").equivalent

    def test_identical_shape_is_fine_for_the_basic_method(self):
        variant = chain_program([0, 1, 2, 3], "left")
        assert check_equivalence(ORIGINAL, variant, method="basic").equivalent


class TestCommutativity:
    """Fig. 3(b): permuting operands."""

    @pytest.mark.parametrize("order", list(itertools.permutations(range(4)))[1::7])
    def test_permuted_operands_are_equivalent(self, order):
        variant = chain_program(list(order), "left")
        result = check_equivalence(ORIGINAL, variant)
        assert result.equivalent, result.summary()


class TestCombination:
    """Fig. 3(c): any tree over the same end nodes."""

    @pytest.mark.parametrize(
        "order,shape",
        [((3, 1, 0, 2), "right"), ((2, 0, 3, 1), "balanced"), ((1, 3, 2, 0), "right")],
    )
    def test_arbitrary_trees_are_equivalent(self, order, shape):
        variant = chain_program(list(order), shape)
        assert check_equivalence(ORIGINAL, variant).equivalent

    def test_different_multiset_of_end_nodes_is_rejected(self):
        wrong = parse_program(
            TEMPLATE.format(expr="(A[k] + A[2*k]) + (B[k] + B[k + 2])")
        )
        assert not check_equivalence(ORIGINAL, wrong).equivalent

    def test_engine_generated_reassociations(self):
        rng = random.Random(5)
        provider = random_input_provider(0)
        reference = run_program(ORIGINAL, provider)
        for _ in range(4):
            order = list(range(4))
            rng.shuffle(order)
            variant = reassociate_chain(
                ORIGINAL, "s1", order, left_assoc=bool(rng.getrandbits(1))
            )
            assert outputs_equal(reference, run_program(variant, provider))
            assert check_equivalence(ORIGINAL, variant).equivalent
