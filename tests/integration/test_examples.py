"""Integration tests: every shipped example script must run successfully."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")
SRC_DIR = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "..", "src"))


def _example_env():
    """Subprocess environment with the repo's ``src/`` importable as ``repro``."""
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = SRC_DIR + (os.pathsep + existing if existing else "")
    return env

EXAMPLES = {
    "quickstart.py": [],
    "verify_fig1.py": ["64"],  # reduced problem size keeps the test fast
    "transform_and_verify.py": ["3"],
    "error_diagnosis.py": [],
    "focused_checking.py": [],
    "batch_verification.py": ["3"],
}


@pytest.mark.parametrize("script,args", sorted(EXAMPLES.items()))
def test_example_runs(tmp_path, script, args):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, script))
    assert os.path.exists(path), f"missing example {script}"
    completed = subprocess.run(
        [sys.executable, path, *args],
        cwd=tmp_path,  # examples may write .dot files; keep them out of the repo
        env=_example_env(),
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "example produced no output"


def test_quickstart_reports_both_verdicts(tmp_path):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, "quickstart.py"))
    completed = subprocess.run(
        [sys.executable, path], cwd=tmp_path, env=_example_env(), capture_output=True, text=True, timeout=600
    )
    assert completed.returncode == 0
    assert "EQUIVALENT" in completed.stdout
    assert "NOT PROVEN EQUIVALENT" in completed.stdout


def test_verify_fig1_reports_paper_diagnostics(tmp_path):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, "verify_fig1.py"))
    completed = subprocess.run(
        [sys.executable, path, "64"], cwd=tmp_path, env=_example_env(), capture_output=True, text=True, timeout=600
    )
    assert completed.returncode == 0
    out = completed.stdout
    assert "UNEXPECTED" not in out
    assert "buf" in out  # the suspect variable of Section 6.1
    assert (tmp_path / "fig1_a.dot").exists()
    assert (tmp_path / "fig1_d.dot").exists()
