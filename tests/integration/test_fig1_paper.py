"""Integration test E1: the paper's running example (Fig. 1).

Versions (a), (b) and (c) must be proven pairwise equivalent by the extended
method; version (d) must be found inequivalent to each of them.  The basic
method must prove (a) ~ (b) (only expression propagation + loop
transformations) but fail on the pairs that need algebraic laws.
"""

import itertools

import pytest

from repro.checker import check_equivalence
from repro.lang import outputs_equal, random_input_provider, run_program
from repro.workloads import fig1_program

N = 1024


@pytest.fixture(scope="module")
def versions():
    return {name: fig1_program(name, N) for name in "abcd"}


class TestExtendedMethod:
    @pytest.mark.parametrize("pair", list(itertools.combinations("abc", 2)))
    def test_correct_versions_are_equivalent(self, versions, pair):
        left, right = pair
        result = check_equivalence(versions[left], versions[right])
        assert result.equivalent, result.summary()

    @pytest.mark.parametrize("left", "abc")
    def test_erroneous_version_is_rejected(self, versions, left):
        result = check_equivalence(versions[left], versions["d"])
        assert not result.equivalent
        assert result.diagnostics

    def test_equivalence_is_symmetric_for_the_example(self, versions):
        assert check_equivalence(versions["c"], versions["a"]).equivalent
        assert not check_equivalence(versions["d"], versions["a"]).equivalent

    def test_verdicts_agree_with_simulation(self, versions):
        """Cross-check the symbolic verdicts against the interpreter on a reduced size."""
        small = {name: fig1_program(name, 16) for name in "abcd"}
        provider = random_input_provider(123)
        outputs = {name: run_program(program, provider) for name, program in small.items()}
        assert outputs_equal(outputs["a"], outputs["b"])
        assert outputs_equal(outputs["a"], outputs["c"])
        assert not outputs_equal(outputs["a"], outputs["d"])


class TestBasicMethod:
    def test_basic_method_handles_loop_and_propagation_pair(self, versions):
        result = check_equivalence(versions["a"], versions["b"], method="basic")
        assert result.equivalent, result.summary()

    @pytest.mark.parametrize("pair", [("a", "c"), ("b", "c")])
    def test_basic_method_cannot_prove_algebraic_pairs(self, versions, pair):
        left, right = pair
        result = check_equivalence(versions[left], versions[right], method="basic")
        assert not result.equivalent

    def test_basic_method_still_rejects_the_error(self, versions):
        assert not check_equivalence(versions["a"], versions["d"], method="basic").equivalent


class TestStatistics:
    def test_path_counts_reflect_the_addg_structure(self, versions):
        # (a) has 4 output-input paths; flattening compares them piecewise,
        # so at least 4 leaf comparisons must be performed, and the check of
        # (a) vs (b) must explore at least the 8 paths of (b).
        result_ab = check_equivalence(versions["a"], versions["b"])
        assert result_ab.stats.paths_checked >= 8
        result_ac = check_equivalence(versions["a"], versions["c"])
        assert result_ac.stats.paths_checked >= 4

    def test_timing_is_recorded(self, versions):
        result = check_equivalence(versions["a"], versions["c"])
        assert result.stats.elapsed_seconds > 0
        assert result.stats.original_addg_size > 0
        assert result.stats.transformed_addg_size > 0

    def test_problem_size_does_not_change_the_verdict(self):
        for n in (8, 64, 2048):
            small = {name: fig1_program(name, n) for name in ("a", "c", "d")}
            assert check_equivalence(small["a"], small["c"]).equivalent
            assert not check_equivalence(small["a"], small["d"]).equivalent
