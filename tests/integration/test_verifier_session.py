"""Integration tests: the session API across the kernel suite.

``CompiledProgram`` reuse must be invisible in the verdicts: checking any
kernel pair through a shared :class:`~repro.verifier.Verifier` session —
including re-checking through warm compile caches — returns results
identical to independent one-shot :func:`~repro.checker.check_equivalence`
calls.
"""

import pytest

from repro.checker import check_equivalence
from repro.verifier import CheckOptions, Verifier
from repro.workloads import kernel_names, kernel_pair

# Small sizes keep the whole suite comparison fast.
KERNEL_SIZES = {
    "fir": dict(n=24, taps=4),
    "conv2d": dict(rows=8, cols=8),
    "matvec": dict(rows=8, cols=6),
    "wavelet_lift": dict(n=32),
    "sad": dict(blocks=6, width=4),
    "prefix_sum": dict(n=32),
    "downsample": dict(n=32),
}


def _comparable(result):
    data = result.to_dict()
    data.pop("stats", None)
    return data


@pytest.fixture(scope="module")
def kernel_pairs():
    return {name: kernel_pair(name, **KERNEL_SIZES[name]) for name in KERNEL_SIZES}


def test_kernel_size_map_covers_registry():
    assert set(KERNEL_SIZES) == set(kernel_names())


def test_session_matches_one_shot_across_kernel_suite(kernel_pairs):
    verifier = Verifier()
    for name, pair in kernel_pairs.items():
        one_shot = check_equivalence(pair.original, pair.transformed)
        session = verifier.check(pair.original, pair.transformed)
        assert _comparable(session) == _comparable(one_shot), name
        # and again through the warm compile cache
        warm = verifier.check(pair.original, pair.transformed)
        assert _comparable(warm) == _comparable(one_shot), name


def test_session_compiles_each_program_once(kernel_pairs):
    verifier = Verifier()
    for pair in kernel_pairs.values():
        verifier.check(pair.original, pair.transformed)
        verifier.check(pair.original, pair.transformed)
    assert verifier.compile_misses == 2 * len(kernel_pairs)
    assert verifier.compile_hits == 2 * len(kernel_pairs)


def test_session_basic_method_matches_one_shot(kernel_pairs):
    # downsample is the kernel whose transformation needs no algebraic laws.
    pair = kernel_pairs["downsample"]
    verifier = Verifier(options=CheckOptions(method="basic"))
    session = verifier.check(pair.original, pair.transformed)
    one_shot = check_equivalence(pair.original, pair.transformed, method="basic")
    assert _comparable(session) == _comparable(one_shot)
