"""Integration test E11: the verification scheme of Fig. 6 end to end.

The flow is: def-use check on both programs, ADDG extraction, equivalence
checking with optional focused-checking inputs.  These tests drive the flow
through both the Python API and the command-line tool, including the
transform-then-verify loop a designer would use.
"""

import random

import pytest

from repro.checker import DiagnosticKind, check_equivalence
from repro.cli import main
from repro.lang import parse_program, program_to_text
from repro.transforms import apply_random_transforms, perturb_read_index
from repro.workloads import RandomProgramGenerator, fig1_program, kernel_pair


class TestDefUseGate:
    def test_badly_scheduled_transformed_program_is_gated(self):
        original = fig1_program("a", 64)
        # Reverse the order of the loops of (a): s3 now reads tmp/buf before
        # they are written -> the def-use checker must reject the program
        # before equivalence checking is attempted.
        broken = parse_program(
            """
            #define N 64
            foo(int A[], int B[], int C[])
            {
                int k, tmp[N], buf[2*N];
                for(k=0; k<N; k++)
            s3:     C[k] = tmp[k] + buf[2*k];
                for(k=0; k<N; k++)
            s1:     tmp[k] = B[2*k] + B[k];
                for(k=N; k>=1; k--)
            s2:     buf[2*k-2] = A[2*k-2] + A[k-1];
            }
            """
        )
        result = check_equivalence(original, broken)
        assert not result.equivalent
        assert result.diagnostics_of_kind(DiagnosticKind.PRECONDITION)
        assert result.outputs == []  # the traversal never ran

    def test_gate_can_be_bypassed_explicitly(self):
        original = fig1_program("a", 64)
        result = check_equivalence(original, original, check_preconditions=False)
        assert result.equivalent


class TestTransformThenVerifyLoop:
    @pytest.mark.parametrize("seed", range(3))
    def test_generated_pipeline_roundtrip(self, seed):
        generator = RandomProgramGenerator(seed=seed, stages=4, size=32)
        original = generator.generate()
        transformed, steps = apply_random_transforms(original, random.Random(seed), steps=4)
        result = check_equivalence(original, transformed)
        assert result.equivalent, (
            f"seed {seed}, steps {[s.name for s in steps]}:\n{result.summary()}"
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_pipeline_plus_error_is_rejected(self, seed):
        generator = RandomProgramGenerator(seed=seed, stages=4, size=32)
        pair = generator.generate_pair(transform_steps=3, inject_error=True)
        result = check_equivalence(pair.original, pair.transformed, check_preconditions=False)
        assert not result.equivalent, f"undetected {pair.mutation}"

    def test_printed_source_roundtrips_through_the_checker(self):
        pair = kernel_pair("downsample", n=32)
        regenerated = parse_program(program_to_text(pair.transformed))
        assert check_equivalence(pair.original, regenerated).equivalent


class TestFocusedChecking:
    def test_output_subset(self):
        pair = kernel_pair("wavelet_lift", n=32)
        broken, _ = perturb_read_index(pair.transformed, "m3", occurrence=1, delta=1)
        full = check_equivalence(pair.original, broken)
        assert not full.equivalent
        focused = check_equivalence(pair.original, broken, outputs=["d"])
        assert focused.equivalent  # the error only affects output 's'

    def test_intermediate_correspondence_cut(self):
        original = fig1_program("a", 128)
        transformed = fig1_program("b", 128)
        result = check_equivalence(original, transformed, correspondences=[("tmp", "tmp")])
        assert result.equivalent

    def test_wrong_correspondence_is_reported(self):
        original = fig1_program("a", 128)
        transformed = fig1_program("b", 128)
        result = check_equivalence(original, transformed, correspondences=[("tmp", "buf")])
        assert not result.equivalent


class TestCommandLineFlow(object):
    def test_cli_reports_diagnostics_for_the_paper_error(self, tmp_path, capsys):
        paths = {}
        for version in ("a", "d"):
            text = fig1_program(version, 64)
            path = tmp_path / f"{version}.c"
            path.write_text(program_to_text(text))
            paths[version] = str(path)
        status = main([paths["a"], paths["d"]])
        captured = capsys.readouterr().out
        assert status == 1
        assert "mapping-mismatch" in captured
        assert "buf" in captured
