"""Integration tests: a small corpus through the batch executor and the CLI.

The batch verdicts must agree with direct per-job ``check_equivalence``
calls, both on the serial path and on the 2-worker process pool, and a warm
(second) run must be served from the cache.
"""

import pytest

from repro.checker import check_equivalence
from repro.cli import main
from repro.service import (
    BatchExecutor,
    CorpusSpec,
    JobStatus,
    ResultCache,
    VerificationJob,
    aggregate_results,
    build_corpus,
    read_report,
)


@pytest.fixture(scope="module")
def corpus():
    # Small sizes keep each check fast while covering both expected verdicts.
    return build_corpus(CorpusSpec(generated=4, buggy=2, size=16, transform_steps=2, seed=1))


@pytest.fixture(scope="module")
def direct_verdicts(corpus):
    return {
        job.name: check_equivalence(
            job.original_source, job.transformed_source, method=job.method
        ).equivalent
        for job in corpus
    }


class TestBatchExecutor:
    def test_serial_matches_direct_checks(self, corpus, direct_verdicts):
        results = BatchExecutor(workers=1).run(corpus)
        assert [r.name for r in results] == [job.name for job in corpus]
        assert all(r.status == JobStatus.OK for r in results)
        for outcome in results:
            assert outcome.equivalent == direct_verdicts[outcome.name]
            assert outcome.matches_expectation is True

    def test_two_workers_match_direct_checks(self, corpus, direct_verdicts):
        results = BatchExecutor(workers=2).run(corpus)
        assert [r.name for r in results] == [job.name for job in corpus]
        for outcome in results:
            assert outcome.status == JobStatus.OK
            assert outcome.equivalent == direct_verdicts[outcome.name]

    def test_warm_run_hits_cache(self, tmp_path, corpus, direct_verdicts):
        cache = ResultCache(str(tmp_path / "cache"))
        executor = BatchExecutor(cache=cache, workers=1)
        cold = executor.run(corpus)
        assert not any(r.cache_hit for r in cold)
        warm = executor.run(corpus)
        assert all(r.cache_hit for r in warm)
        for outcome in warm:
            assert outcome.equivalent == direct_verdicts[outcome.name]
        summary = aggregate_results(warm, cache.stats)
        assert summary["cache_hit_rate"] == 1.0

    def test_cold_cache_survives_new_executor(self, tmp_path, corpus):
        directory = str(tmp_path / "cache")
        BatchExecutor(cache=ResultCache(directory)).run(corpus)
        fresh = BatchExecutor(cache=ResultCache(directory)).run(corpus)
        assert all(r.cache_hit for r in fresh)

    def test_cache_write_failure_does_not_abort_the_batch(self, tmp_path, corpus):
        cache = ResultCache(str(tmp_path / "cache"))

        def failing_put(fingerprint, result):
            raise OSError("disk full")

        cache.put = failing_put
        results = BatchExecutor(cache=cache).run(corpus)
        assert all(r.status == JobStatus.OK for r in results)
        assert cache.stats.store_errors == len(corpus)

    def test_duplicate_jobs_in_one_batch_run_once(self, tmp_path, corpus):
        cache = ResultCache(str(tmp_path / "cache"))
        duplicated = list(corpus) + list(corpus)
        results = BatchExecutor(cache=cache).run(duplicated)
        assert len(results) == len(duplicated)
        # one execution per unique pair; duplicates fan out from the leader
        assert cache.stats.stores == len(corpus)
        followers = [r for r in results if r.metadata.get("deduplicated")]
        assert len(followers) == len(corpus)
        assert not any(r.cache_hit for r in results)  # dedup is not a cache hit
        first, second = results[: len(corpus)], results[len(corpus):]
        assert [r.equivalent for r in first] == [r.equivalent for r in second]

    def test_duplicate_pairs_with_different_timeouts_do_not_dedup(self, corpus):
        # The fingerprint excludes the timeout (a budget cannot change a
        # computed verdict), but in-batch dedup must still keep
        # differently-budgeted duplicates apart: a leader's TIMEOUT outcome
        # is budget-dependent and must not fan out to a job with a larger
        # budget.
        job = corpus[0]
        tight = VerificationJob(
            name="tight",
            original_source=job.original_source,
            transformed_source=job.transformed_source,
            options=job.options.replace(timeout=0.001),
        )
        loose = VerificationJob(
            name="loose",
            original_source=job.original_source,
            transformed_source=job.transformed_source,
            options=job.options,
        )
        results = BatchExecutor(workers=1).run([tight, loose])
        by_name = {r.name: r for r in results}
        assert by_name["tight"].status == JobStatus.TIMEOUT
        assert by_name["loose"].status == JobStatus.OK
        assert not by_name["loose"].metadata.get("deduplicated")

    def test_progress_callback_sees_every_job(self, corpus):
        seen = []
        BatchExecutor(workers=1).run(corpus, progress=lambda r: seen.append(r.name))
        assert sorted(seen) == sorted(job.name for job in corpus)


class TestBatchCli:
    def test_batch_writes_report_and_exits_zero(self, tmp_path, capsys):
        report = tmp_path / "report.jsonl"
        status = main([
            "batch",
            "--generated", "3", "--buggy", "1",
            "--size", "16", "--transform-steps", "2",
            "--report", str(report),
            "--cache-dir", str(tmp_path / "cache"),
        ])
        assert status == 0
        out = capsys.readouterr().out
        assert "jobs        : 4" in out
        results, summary = read_report(str(report))
        assert len(results) == 4
        assert summary["by_status"]["ok"] == 4
        assert summary["expectation_mismatches"] == []

    def test_batch_warm_run_reports_cache_hits(self, tmp_path, capsys):
        args = [
            "batch", "--generated", "2", "--size", "16", "--transform-steps", "2",
            "--report", "-", "--cache-dir", str(tmp_path / "cache"), "--quiet",
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "100.0% hit rate" in capsys.readouterr().out

    def test_batch_with_job_file(self, tmp_path, capsys):
        import json

        jobs = [job.to_dict() for job in build_corpus(
            CorpusSpec(generated=1, size=16, transform_steps=2, seed=9)
        )]
        job_file = tmp_path / "jobs.json"
        job_file.write_text(json.dumps(jobs))
        status = main([
            "batch", "--jobs", str(job_file), "--no-cache", "--report", "-", "--quiet",
        ])
        assert status == 0
        assert "jobs        : 1" in capsys.readouterr().out

    def test_batch_without_jobs_is_an_error(self, capsys):
        assert main(["batch", "--report", "-"]) == 2
        assert "no jobs selected" in capsys.readouterr().err
