"""Mutation "kill" tests: every mutator must produce detectable errors.

For each error-injection mutator of :mod:`repro.transforms.mutate`, applied
to each DSP kernel where it is applicable, the resulting (original, mutated)
pair must be

* reported NOT-EQUIVALENT by the checker, and
* distinguished by the differential interpreter oracle on at least one
  seeded input (i.e. no silently no-op mutations).

This is what makes the scenario engine's buggy twins trustworthy: a mutator
that ever produced an observably equivalent program would poison the
expected-NOT_EQUIVALENT labels of every generated corpus.
"""

import pytest

from repro.scenarios import differential_label
from repro.scenarios.spec import SMALL_KERNEL_PARAMS
from repro.transforms import (
    change_operator,
    perturb_read_index,
    perturb_write_index,
    replace_read_array,
    shrink_loop_bound,
)
from repro.transforms.errors import TransformError
from repro.verifier import Verifier
from repro.workloads import kernel_names, kernel_pair

MUTATORS = (
    "perturb_read_index",
    "perturb_write_index",
    "replace_read_array",
    "change_operator",
    "shrink_loop_bound",
)


def _labels(program):
    return [a.label for a in program.assignments() if a.label]


def _apply_mutator(program, mutator):
    """Apply *mutator* to the first statement of *program* that admits it.

    Returns ``(mutated, mutation)`` or ``None`` when the mutator applies
    nowhere in the program.
    """
    inputs = list(program.input_arrays())
    dims = {decl.name: len(decl.dims) for decl in program.params}
    for label in _labels(program):
        try:
            if mutator == "perturb_read_index":
                return perturb_read_index(program, label)
            if mutator == "perturb_write_index":
                return perturb_write_index(program, label)
            if mutator == "replace_read_array":
                for old in inputs:
                    replacements = [n for n in inputs if n != old and dims.get(n) == dims.get(old)]
                    for new in replacements:
                        try:
                            return replace_read_array(program, label, old, new)
                        except TransformError:
                            continue
                raise TransformError("no same-rank input pair read here")
            if mutator == "change_operator":
                for old_op, new_op in (("+", "-"), ("-", "+"), ("*", "+")):
                    try:
                        return change_operator(program, label, old_op, new_op)
                    except TransformError:
                        continue
                raise TransformError("no operator to change here")
            if mutator == "shrink_loop_bound":
                return shrink_loop_bound(program, label)
        except TransformError:
            continue
    return None


@pytest.mark.parametrize("mutator", MUTATORS)
@pytest.mark.parametrize("kernel", kernel_names())
def test_mutator_is_killed_on_kernel(kernel, mutator):
    original = kernel_pair(kernel, **SMALL_KERNEL_PARAMS.get(kernel, {})).original
    applied = _apply_mutator(original, mutator)
    if applied is None:
        pytest.skip(f"{mutator} applies nowhere in kernel {kernel}")
    mutated, mutation = applied
    assert mutated != original, f"{mutator} was a syntactic no-op on {kernel}"

    verdict = differential_label(original, mutated, trials=3)
    assert verdict.distinguished, (
        f"oracle cannot distinguish {mutator} on {kernel} "
        f"({mutation.description}): silently no-op mutation"
    )
    assert verdict.witness_seed is not None

    result = Verifier().check(original, mutated)
    assert not result.equivalent, (
        f"checker proved {kernel} equivalent to its {mutator} mutant "
        f"({mutation.description}) — soundness bug"
    )


@pytest.mark.parametrize("mutator", MUTATORS)
@pytest.mark.parametrize("kernel", kernel_names())
def test_checker_and_oracle_witnesses_agree(kernel, mutator):
    """The symbolic and the concrete witness name the same divergence.

    For every killed mutant, diagnosing the checker verdict must reproduce
    the divergence by interpreter replay on the oracle's own witness seed,
    and every concrete point sampled from a checker mismatch set must be a
    cell on which the replay actually observed different values — the two
    independent witness layers agree.
    """
    original = kernel_pair(kernel, **SMALL_KERNEL_PARAMS.get(kernel, {})).original
    applied = _apply_mutator(original, mutator)
    if applied is None:
        pytest.skip(f"{mutator} applies nowhere in kernel {kernel}")
    mutated, _mutation = applied

    verdict = differential_label(original, mutated, trials=3)
    assert verdict.distinguished and verdict.witness_seed is not None

    verifier = Verifier()
    result = verifier.check(original, mutated)
    assert not result.equivalent

    report = verifier.diagnose(
        original, mutated, result=result, replay_seed=verdict.witness_seed
    )
    assert report.confirmed, (
        f"checker-side replay cannot reproduce the {mutator} divergence on "
        f"{kernel} although the oracle holds witness seed {verdict.witness_seed}"
    )
    assert report.replay.seed == verdict.witness_seed
    if report.replay.transformed_error is not None:
        # A runtime-crashing mutant is its own witness; the error must be
        # attributed to a statement for the trace to be actionable.
        assert report.replay.transformed_error_statement is not None
    for witness in report.outputs:
        if witness.witness_point is not None and report.replay.first_divergence is not None:
            assert witness.point_confirmed is True, (
                f"sampled checker witness {witness.array}{list(witness.witness_point)} "
                f"does not diverge under replay on {kernel}/{mutator}"
            )
