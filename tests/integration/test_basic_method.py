"""Integration test E4: the basic method (Section 5.1) on pairs without algebraic rewrites.

The basic method (no flattening / matching) must handle expression propagation
and loop transformations: the paper's pair (a) vs (b), the downsample kernel,
and machine-generated pairs produced with algebraic rewrites disabled.
"""

import random

import pytest

from repro.checker import check_equivalence
from repro.lang import outputs_equal, random_input_provider, run_program
from repro.transforms import apply_random_transforms, random_mutation
from repro.workloads import RandomProgramGenerator, fig1_program, kernel_pair


class TestPaperPair:
    def test_a_versus_b_under_the_basic_method(self):
        a = fig1_program("a", 1024)
        b = fig1_program("b", 1024)
        result = check_equivalence(a, b, method="basic")
        assert result.equivalent, result.summary()
        # No algebraic normalisation may be needed for this pair.
        assert result.stats.matching_operations == 0

    def test_paths_of_version_b_are_all_explored(self):
        a = fig1_program("a", 1024)
        b = fig1_program("b", 1024)
        result = check_equivalence(a, b, method="basic")
        # (b) has 8 output-input paths (Section 5.1).
        assert result.stats.paths_checked >= 8


class TestKernelsWithoutAlgebra:
    def test_downsample_kernel_verifies_with_basic_method(self):
        pair = kernel_pair("downsample", n=64)
        assert not pair.uses_algebraic
        result = check_equivalence(pair.original, pair.transformed, method="basic")
        assert result.equivalent, result.summary()

    def test_wavelet_kernel_needs_only_commutativity(self):
        pair = kernel_pair("wavelet_lift", n=32)
        extended = check_equivalence(pair.original, pair.transformed)
        assert extended.equivalent


class TestGeneratedPairs:
    @pytest.mark.parametrize("seed", range(3))
    def test_basic_method_proves_non_algebraic_pipelines(self, seed):
        generator = RandomProgramGenerator(seed=seed, stages=3, size=24)
        original = generator.generate()
        transformed, steps = apply_random_transforms(
            original, random.Random(seed + 50), steps=3, allow_algebraic=False
        )
        result = check_equivalence(original, transformed, method="basic")
        assert result.equivalent, (
            f"seed {seed}, steps {[s.name for s in steps]}:\n" + result.summary()
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_basic_method_rejects_injected_errors(self, seed):
        generator = RandomProgramGenerator(seed=seed, stages=3, size=24)
        original = generator.generate()
        rng = random.Random(seed + 99)
        transformed, _ = apply_random_transforms(original, rng, steps=2, allow_algebraic=False)
        mutated, mutation = random_mutation(transformed, rng)
        result = check_equivalence(original, mutated, method="basic", check_preconditions=False)
        assert not result.equivalent, f"undetected mutation: {mutation}"

    @pytest.mark.parametrize("seed", range(3))
    def test_soundness_cross_check_with_interpreter(self, seed):
        """Whenever the checker says 'equivalent', the interpreter must agree."""
        generator = RandomProgramGenerator(seed=seed, stages=3, size=20)
        pair = generator.generate_pair(transform_steps=3, allow_algebraic=False)
        result = check_equivalence(pair.original, pair.transformed, method="basic")
        if result.equivalent:
            provider = random_input_provider(seed + 1000)
            assert outputs_equal(
                run_program(pair.original, provider), run_program(pair.transformed, provider)
            )
