"""Integration test E12: cycles in the ADDG (recurrences).

The paper handles cycles through the transitive closure of the cycle's
dependence mapping; this reproduction certifies the same well-foundedness with
the transitive closure (no element depends on itself) and discharges the cycle
during traversal with an inductive assumption.  These tests check both halves
and the end-to-end behaviour on recurrence kernels.
"""

import pytest

from repro.addg import build_addg
from repro.analysis import dependency_map, statement_contexts
from repro.checker import check_equivalence
from repro.lang import parse_program
from repro.lang.ast import array_reads
from repro.presburger import Map, transitive_closure
from repro.workloads import kernel_pair


class TestCycleDetectionAndClosure:
    def test_cyclic_arrays_of_recurrence_kernels(self):
        for name in ("prefix_sum", "fir", "matvec", "sad"):
            pair = kernel_pair(name)
            addg = build_addg(pair.original)
            assert "acc" in addg.cyclic_arrays(), name

    def test_self_dependence_closure_is_irreflexive(self):
        """The paper's computability condition: the closure exists and is acyclic at the element level."""
        pair = kernel_pair("prefix_sum", n=32)
        contexts = {c.label: c for c in statement_contexts(pair.original)}
        recurrence = contexts["p2"]
        self_read = [r for r in array_reads(recurrence.assignment.rhs) if r.name == "acc"][0]
        dependence = dependency_map(recurrence, self_read)
        closure, exact = transitive_closure(dependence)
        assert exact
        identity = Map.identity(closure.in_names, domain=dependence.domain())
        assert closure.intersect(identity).is_empty()

    def test_two_dimensional_recurrence_closure(self):
        pair = kernel_pair("fir", n=16, taps=4)
        contexts = {c.label: c for c in statement_contexts(pair.original)}
        recurrence = contexts["f2"]
        self_read = [r for r in array_reads(recurrence.assignment.rhs) if r.name == "acc"][0]
        dependence = dependency_map(recurrence, self_read)
        closure, exact = transitive_closure(dependence)
        assert exact
        assert closure.contains([3, 3], [3, 0])
        assert not closure.contains([3, 3], [2, 0])


class TestRecurrenceEquivalence:
    def test_prefix_sum_is_proven_with_constant_work(self):
        small = check_equivalence(*_pair("prefix_sum", n=16))
        large = check_equivalence(*_pair("prefix_sum", n=512))
        assert small.equivalent and large.equivalent
        assert large.stats.assumption_uses >= 1
        # The traversal must not unroll the recurrence: the amount of work is
        # independent of the number of iterations.
        assert large.stats.compare_calls == small.stats.compare_calls

    def test_fir_accumulation_is_proven(self):
        result = check_equivalence(*_pair("fir", n=24, taps=5))
        assert result.equivalent

    def test_matvec_accumulation_is_proven(self):
        result = check_equivalence(*_pair("matvec", rows=8, cols=5))
        assert result.equivalent

    def test_misaligned_recurrence_is_rejected(self):
        original = parse_program(
            """
            #define N 32
            f(int x[], int y[]) {
                int i, acc[N];
                for (i = 0; i < N; i++) {
                    if (i == 0)
            p1:         acc[i] = x[0];
                    else
            p2:         acc[i] = acc[i-1] + x[i];
            p3:     y[i] = acc[i];
                }
            }
            """
        )
        broken = parse_program(
            """
            #define N 32
            f(int x[], int y[]) {
                int i, acc[N];
                for (i = 0; i < N; i++) {
                    if (i == 0)
            q1:         acc[i] = x[0];
                    else
            q2:         acc[i] = acc[i-1] + x[i-1];
            q3:     y[i] = acc[i];
                }
            }
            """
        )
        result = check_equivalence(original, broken)
        assert not result.equivalent

    def test_recurrence_with_different_base_case_is_rejected(self):
        good = kernel_pair("prefix_sum", n=32)
        broken = parse_program(
            """
            #define N 32
            prefix(int x[], int y[]) {
                int i, acc[N];
                for (i = 0; i < N; i++) {
                    if (i == 0)
            q1:         acc[i] = x[1];
                    else
            q2:         acc[i] = x[i] + acc[i-1];
                }
                for (i = 0; i < N; i++)
            q3:     y[i] = acc[i];
            }
            """
        )
        result = check_equivalence(good.original, broken)
        assert not result.equivalent


def _pair(name, **params):
    pair = kernel_pair(name, **params)
    return pair.original, pair.transformed
