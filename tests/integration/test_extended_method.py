"""Integration test E5: flattening + matching (the extended method, Fig. 5 / Section 5.2).

For the pair (a) vs (c), the traversal reaches the associative/commutative
``+`` at the output, flattens the chain on both sides into four input-array
leaves, and matches them by their output-input mappings — the four mapping
pairs listed in Section 5.2.  These tests verify the same facts through the
public API: the flattened output-input relations of both programs coincide
per input array, and the checker proves the pair equivalent only when the
algebraic laws are available.
"""

import pytest

from repro.addg import build_addg
from repro.analysis import dependency_map, statement_contexts
from repro.checker import check_equivalence, default_registry
from repro.lang.ast import array_reads
from repro.presburger import Map, parse_map
from repro.workloads import fig1_program

N = 1024


def output_input_relation(program, input_array):
    """The union over all paths of the output-input mappings to *input_array*.

    This is exactly what the flattening + matching step compares per leaf
    group: because version (a) and version (c) supply the same multiset of
    leaves, the unions must coincide (and they are invariant under the
    algebraic transformations).
    """
    contexts = {c.label: c for c in statement_contexts(program)}
    addg = build_addg(program)
    total = None

    def walk(array, relation):
        nonlocal total
        if addg.is_input(array):
            if array == input_array:
                total = relation if total is None else total.union(relation)
            return
        for statement in addg.defining_statements(array):
            restricted = relation.restrict_range(statement.written.rename(relation.out_names))
            if restricted.is_empty():
                continue
            context = contexts[statement.label]
            for read in array_reads(context.assignment.rhs):
                walk(read.name, restricted.compose(dependency_map(context, read)))

    identity = Map.identity(("w0",), domain=addg.written_set("C"))
    walk("C", identity)
    return total


@pytest.fixture(scope="module")
def programs():
    return {name: fig1_program(name, N) for name in ("a", "c", "d")}


class TestFlattenedMappings:
    """The four mapping equalities of Section 5.2 (expressed as per-array unions)."""

    def test_b_leaves_match(self, programs):
        rel_a = output_input_relation(programs["a"], "B")
        rel_c = output_input_relation(programs["c"], "B")
        expected = parse_map("{ [k] -> [2k] : 0 <= k < 1024 }").union(
            parse_map("{ [k] -> [k] : 0 <= k < 1024 }")
        )
        assert rel_a.is_equal(expected)
        assert rel_c.is_equal(expected)

    def test_a_leaves_match(self, programs):
        rel_a = output_input_relation(programs["a"], "A")
        rel_c = output_input_relation(programs["c"], "A")
        expected = parse_map("{ [k] -> [2k] : 0 <= k < 1024 }").union(
            parse_map("{ [k] -> [k] : 0 <= k < 1024 }")
        )
        assert rel_a.is_equal(expected)
        assert rel_c.is_equal(expected)

    def test_erroneous_version_has_different_b_relation(self, programs):
        rel_a = output_input_relation(programs["a"], "B")
        rel_d = output_input_relation(programs["d"], "B")
        assert not rel_a.is_equal(rel_d)


class TestExtendedVersusBasic:
    def test_extended_proves_the_algebraic_pair(self, programs):
        result = check_equivalence(programs["a"], programs["c"])
        assert result.equivalent
        assert result.stats.flatten_operations > 0
        assert result.stats.matching_operations > 0

    def test_basic_method_reports_leaf_mismatch(self, programs):
        result = check_equivalence(programs["a"], programs["c"], method="basic")
        assert not result.equivalent
        kinds = {d.kind for d in result.diagnostics}
        assert "leaf-mismatch" in kinds or "mapping-mismatch" in kinds

    def test_algebraic_laws_can_be_revoked(self, programs):
        registry = default_registry()
        registry.declare("+", associative=False, commutative=False)
        result = check_equivalence(programs["a"], programs["c"], registry=registry)
        assert not result.equivalent
