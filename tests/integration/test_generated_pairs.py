"""Integration tests: soundness of the checker on machine-generated program pairs.

For every generated pair the checker's verdict is cross-validated against the
reference interpreter on several random inputs:

* pairs obtained by equivalence-preserving transformation pipelines must be
  proven equivalent (completeness over the supported transformation set), and
* pairs with an injected error must be rejected (no false "equivalent"), and
  whenever the checker *does* answer "equivalent" the interpreter must agree
  (soundness).
"""

import random

import pytest

from repro.checker import check_equivalence
from repro.lang import outputs_equal, random_input_provider, run_program
from repro.workloads import RandomProgramGenerator


def interpreter_agrees(pair, seeds=(0, 1, 2)):
    for seed in seeds:
        provider = random_input_provider(seed)
        try:
            if not outputs_equal(
                run_program(pair.original, provider), run_program(pair.transformed, provider)
            ):
                return False
        except Exception:
            return False
    return True


@pytest.mark.parametrize("seed", range(6))
def test_equivalence_preserving_pipelines_are_proven(seed):
    generator = RandomProgramGenerator(seed=seed, stages=4, size=32)
    pair = generator.generate_pair(transform_steps=4)
    assert interpreter_agrees(pair), "generator produced a non-equivalent 'equivalent' pair"
    result = check_equivalence(pair.original, pair.transformed)
    assert result.equivalent, (
        f"seed {seed}: steps {[s.name for s in pair.steps]}\n{result.summary()}"
    )


@pytest.mark.parametrize("seed", range(6))
def test_injected_errors_are_rejected(seed):
    generator = RandomProgramGenerator(seed=seed, stages=4, size=32)
    pair = generator.generate_pair(transform_steps=3, inject_error=True)
    result = check_equivalence(pair.original, pair.transformed, check_preconditions=False)
    if result.equivalent:
        # Soundness: an 'equivalent' verdict must be backed by the interpreter.
        assert interpreter_agrees(pair), (
            f"seed {seed}: checker accepted a behaviourally different pair "
            f"(mutation: {pair.mutation})"
        )
    else:
        assert result.diagnostics


@pytest.mark.parametrize("stages", [2, 6])
def test_scaling_of_generated_programs(stages):
    generator = RandomProgramGenerator(seed=23, stages=stages, size=24)
    pair = generator.generate_pair(transform_steps=3)
    result = check_equivalence(pair.original, pair.transformed)
    assert result.equivalent
    assert result.stats.paths_checked >= stages
