"""Integration test E2/E3: ADDG extraction of the Fig. 1 programs and the worked mappings."""

import pytest

from repro.addg import build_addg
from repro.analysis import dependency_map, statement_contexts
from repro.lang.ast import array_reads
from repro.presburger import parse_map
from repro.workloads import fig1_program


@pytest.fixture(scope="module")
def addgs():
    return {name: build_addg(fig1_program(name, 1024)) for name in "abcd"}


class TestFig2Structure:
    def test_statement_labels(self, addgs):
        assert [s.label for s in addgs["a"].statements] == ["s1", "s2", "s3"]
        assert [s.label for s in addgs["b"].statements] == ["t1", "t2", "t3", "t4"]
        assert [s.label for s in addgs["c"].statements] == ["u1", "u2", "u3"]
        assert [s.label for s in addgs["d"].statements] == ["v1", "v2", "v3", "v4"]

    def test_output_and_input_roles(self, addgs):
        for addg in addgs.values():
            assert addg.outputs == ("C",)
            assert set(addg.inputs) == {"A", "B"}

    def test_paths_from_output_to_inputs(self, addgs):
        # In (a) the output C reaches the inputs through tmp and buf;
        # in (c) only through buf.
        assert set(addgs["a"].intermediates) == {"tmp", "buf"}
        assert set(addgs["c"].intermediates) == {"buf"}
        assert set(addgs["d"].intermediates) == {"tmp", "buf"}

    def test_operator_node_inventory(self, addgs):
        # Fig. 2: (a) has 3 '+' nodes, (b) has 5 (t4 contains two), (c) 3, (d) 4.
        expected = {"a": 3, "b": 5, "c": 3, "d": 4}
        for version, count in expected.items():
            ops = addgs[version].operator_nodes()
            assert len(ops) == count
            assert all(op.op == "+" for op in ops)

    def test_addg_sizes_reported(self, addgs):
        sizes = {v: addgs[v].size() for v in addgs}
        assert sizes["b"] >= sizes["a"]
        assert all(size > 10 for size in sizes.values())


class TestWorkedDependencyMappings:
    """Section 3.2 worked example: dependency mappings of s2 and the C->B reduction."""

    def test_m_buf_a1_and_a2(self):
        program = fig1_program("a", 1024)
        s2 = [c for c in statement_contexts(program) if c.label == "s2"][0]
        reads = array_reads(s2.assignment.rhs)
        assert dependency_map(s2, reads[0]).is_equal(
            parse_map("{ [x] -> [x] : exists k : x = 2k - 2 and 1 <= k <= 1024 }")
        )
        assert dependency_map(s2, reads[1]).is_equal(
            parse_map("{ [x] -> [y] : x = 2k - 2 and y = k - 1 and 1 <= k <= 1024 }")
        )

    def test_output_input_mapping_of_path1(self):
        # Reduction of tmp on path C -> tmp -> B gives {[k] -> [2k] : 0 <= k < 1024}.
        program = fig1_program("a", 1024)
        contexts = {c.label: c for c in statement_contexts(program)}
        m_c_tmp = dependency_map(contexts["s3"], array_reads(contexts["s3"].assignment.rhs)[0])
        m_tmp_b1 = dependency_map(contexts["s1"], array_reads(contexts["s1"].assignment.rhs)[0])
        reduced = m_c_tmp.compose(m_tmp_b1)
        assert reduced.is_equal(parse_map("{ [k] -> [2k] : 0 <= k < 1024 }"))

    def test_split_output_input_mapping_in_version_b(self):
        # Section 5.1: for (b), the assignment to C is distributed over t3/t4 and
        # the output-input mapping of path 1 is {[k] -> [2k] : 0 <= k < 512}.
        program = fig1_program("b", 1024)
        contexts = {c.label: c for c in statement_contexts(program)}
        m_c_tmp = dependency_map(contexts["t3"], array_reads(contexts["t3"].assignment.rhs)[0])
        m_tmp_b1 = dependency_map(contexts["t1"], array_reads(contexts["t1"].assignment.rhs)[0])
        reduced = m_c_tmp.compose(m_tmp_b1)
        assert reduced.is_equal(parse_map("{ [k] -> [2k] : 0 <= k < 512 }"))
