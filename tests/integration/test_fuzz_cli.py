"""End-to-end tests of the ``fuzz`` CLI subcommand."""

import json

import pytest

from repro.cli import main
from repro.scenarios import read_corpus


def _read_report(path):
    results, summary = [], None
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            row = json.loads(line)
            if row.get("type") == "summary":
                summary = row
            else:
                results.append(row)
    return results, summary


class TestFuzzCommand:
    def test_smoke_run_is_sound_and_labelled(self, tmp_path, capsys):
        report = tmp_path / "report.jsonl"
        corpus = tmp_path / "corpus.jsonl"
        exit_code = main(
            ["fuzz", "--smoke", "--report", str(report), "--corpus-out", str(corpus), "--quiet"]
        )
        assert exit_code == 0
        results, summary = _read_report(str(report))
        assert summary is not None and results
        scenarios = summary["scenarios"]
        assert scenarios["labelled"] == len(results)
        assert scenarios["soundness_errors"] == []
        assert scenarios["label_disputes"] == []
        confusion = scenarios["confusion"]
        assert confusion["expected_not_equivalent"]["checker_not_equivalent"] > 0
        assert confusion["expected_equivalent"]["checker_equivalent"] > 0
        for row in results:
            assert row["metadata"]["expected_label"] in ("EQUIVALENT", "NOT_EQUIVALENT")
            assert row["metadata"]["oracle"]["label"] in ("EQUIVALENT", "NOT_EQUIVALENT", "UNKNOWN")
        pairs = read_corpus(str(corpus))
        assert [p.name for p in pairs] == [row["name"] for row in results]
        out = capsys.readouterr().out
        assert "scenarios" in out and "oracle" in out

    def test_same_seed_reproduces_corpus_bytes(self, tmp_path):
        first = tmp_path / "a.jsonl"
        second = tmp_path / "b.jsonl"
        args = ["fuzz", "--pairs", "5", "--size", "12", "--seed", "3",
                "--report", "-", "--quiet"]
        assert main(args + ["--corpus-out", str(first)]) == 0
        assert main(args + ["--corpus-out", str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()

    def test_different_seed_changes_corpus(self, tmp_path):
        first = tmp_path / "a.jsonl"
        second = tmp_path / "b.jsonl"
        base = ["fuzz", "--pairs", "4", "--size", "12", "--report", "-", "--quiet"]
        assert main(base + ["--seed", "1", "--corpus-out", str(first)]) == 0
        assert main(base + ["--seed", "2", "--corpus-out", str(second)]) == 0
        assert first.read_bytes() != second.read_bytes()

    def test_per_pair_lines_show_labels(self, tmp_path, capsys):
        assert main(["fuzz", "--pairs", "3", "--size", "12", "--report", "-"]) == 0
        captured = capsys.readouterr()
        assert "expected EQUIVALENT" in captured.out
        assert "oracle" in captured.out

    def test_fuzz_help_lists_knobs(self, capsys):
        with pytest.raises(SystemExit):
            main(["fuzz", "--help"])
        text = capsys.readouterr().out
        for flag in ("--seed", "--pairs", "--max-depth", "--mutation-rate", "--smoke"):
            assert flag in text
