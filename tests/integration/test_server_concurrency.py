"""Integration tests: the verification server under concurrent clients.

Satellite of the server PR: N clients fire overlapping (and duplicate)
requests at one in-process daemon; verdicts must be identical to direct
in-process checks, duplicate in-flight jobs must coalesce onto exactly one
leader (dedup accounting), and a warm-state reset must leave no cross-
request leakage — the re-executed verdicts are byte-identical.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.server import ServerClient, ServerConfig, ServerThread
from repro.service import JobStatus, VerificationJob
from repro.verifier import Verifier

ORIGINAL = """
#define N 8
f(int A[], int B[])
{
    int k;
    for (k = 0; k < N; k++)
s1:     B[k] = A[k] + A[k+1];
}
"""

TRANSFORMED_EQ = """
#define N 8
f(int A[], int B[])
{
    int k;
    for (k = N-1; k >= 0; k--)
t1:     B[k] = A[k+1] + A[k];
}
"""

TRANSFORMED_BAD = """
#define N 8
f(int A[], int B[])
{
    int k;
    for (k = 0; k < N; k++)
t1:     B[k] = A[k] + A[k+2];
}
"""

ORIGINAL_SUM = """
#define N 12
f(int A[], int S[])
{
    int k;
    for (k = 0; k < N; k++)
s1:     S[k] = A[k] + A[k] + 1;
}
"""

TRANSFORMED_SUM = """
#define N 12
f(int A[], int S[])
{
    int k;
    for (k = N-1; k >= 0; k--)
t1:     S[k] = 1 + A[k] + A[k];
}
"""

PAIRS = {
    "eq": (ORIGINAL, TRANSFORMED_EQ, True),
    "bad": (ORIGINAL, TRANSFORMED_BAD, False),
    "sum": (ORIGINAL_SUM, TRANSFORMED_SUM, True),
}


def make_job(pair: str, name=None, expected=None):
    original, transformed, _ = PAIRS[pair]
    return VerificationJob(
        name=name or pair,
        original_source=original,
        transformed_source=transformed,
        expected_equivalent=expected,
    )


@pytest.fixture(scope="module")
def direct_verdicts():
    session = Verifier()
    return {
        name: session.check(original, transformed).equivalent
        for name, (original, transformed, _) in PAIRS.items()
    }


@pytest.fixture()
def server():
    with ServerThread(ServerConfig(port=0, workers=1)) as handle:
        yield handle


class TestConcurrentClients:
    N_CLIENTS = 6

    def test_duplicate_jobs_coalesce_onto_one_leader(self, server, direct_verdicts):
        """All clients fire the same fresh job at once: exactly one check
        executes; every duplicate is served by dedup or the verdict cache."""
        barrier = threading.Barrier(self.N_CLIENTS)

        def one_client(index: int):
            with ServerClient(server.address) as client:
                barrier.wait(timeout=30)
                return client.check_job(make_job("eq", name=f"client-{index}"), timeout=60.0)

        with ThreadPoolExecutor(max_workers=self.N_CLIENTS) as pool:
            results = [
                future.result(timeout=120)
                for future in [pool.submit(one_client, i) for i in range(self.N_CLIENTS)]
            ]

        assert all(outcome.status == JobStatus.OK for outcome in results)
        assert {outcome.equivalent for outcome in results} == {direct_verdicts["eq"]}
        assert len({outcome.fingerprint for outcome in results}) == 1

        stats = server.server.pool.snapshot()
        # Exactly one leader ran the check; every other request was served
        # warm — by attaching to the in-flight leader or by the verdict cache.
        assert stats["checks_executed"] == 1
        assert stats["dedup_hits"] + stats["cache_hits"] == self.N_CLIENTS - 1
        assert stats["requests"] == self.N_CLIENTS

    def test_mixed_batches_match_direct_verdicts(self, server, direct_verdicts):
        """Several clients pipeline overlapping mixed batches; every verdict
        must equal the direct in-process one, in the client's input order."""
        jobs = [make_job(pair, name=f"{pair}-{copy}") for pair in PAIRS for copy in range(2)]

        def one_client(_index: int):
            with ServerClient(server.address) as client:
                return client.run_jobs(jobs, timeout=60.0)

        with ThreadPoolExecutor(max_workers=3) as pool:
            all_results = [
                future.result(timeout=120)
                for future in [pool.submit(one_client, i) for i in range(3)]
            ]

        for results in all_results:
            assert [outcome.name for outcome in results] == [job.name for job in jobs]
            for outcome in results:
                pair = outcome.name.split("-")[0]
                assert outcome.status == JobStatus.OK
                assert outcome.equivalent == direct_verdicts[pair]

        stats = server.server.pool.snapshot()
        # 3 clients x 6 jobs, but only 3 distinct checks exist.
        assert stats["checks_executed"] == len(PAIRS)
        assert stats["dedup_hits"] + stats["cache_hits"] == 3 * len(jobs) - len(PAIRS)

    def test_verdict_identity_with_single_shot_cli(self, server, tmp_path, capsys):
        """`check --server` and plain `check` print the same verdict."""
        from repro.cli import main

        original = tmp_path / "orig.c"
        transformed = tmp_path / "trans.c"
        original.write_text(ORIGINAL)
        transformed.write_text(TRANSFORMED_EQ)

        local_code = main(["check", str(original), str(transformed), "--quiet"])
        local_out = capsys.readouterr().out
        remote_code = main(
            ["check", str(original), str(transformed), "--quiet", "--server", server.address]
        )
        remote_out = capsys.readouterr().out
        assert remote_code == local_code == 0
        assert remote_out == local_out == "Equivalent\n"

    def test_reset_leaves_no_cross_request_state(self, server, direct_verdicts):
        """After a warm run and a reset, re-running must actually re-execute
        (nothing warm survives) and reproduce the identical verdict."""
        with ServerClient(server.address) as client:
            first = client.check_job(make_job("bad"), timeout=60.0)
            warm = client.check_job(make_job("bad"), timeout=60.0)
            assert warm.cache_hit and warm.equivalent == first.equivalent

            client.reset()
            stats = client.stats()
            assert stats["resets"] == 1
            assert stats["compiled_store"]["entries"] == 0

            again = client.check_job(make_job("bad"), timeout=60.0)
            assert not again.cache_hit  # really re-executed
            assert again.status == first.status == JobStatus.OK
            assert again.equivalent == first.equivalent == direct_verdicts["bad"]
            assert again.fingerprint == first.fingerprint
            assert client.stats()["checks_executed"] == 2

    def test_expectations_travel_per_request(self, server):
        """Two duplicate requests with different expectations: the verdict is
        shared but each response carries its own expectation comparison."""
        with ServerClient(server.address) as client:
            hit = client.check_job(make_job("bad", name="a", expected=False), timeout=60.0)
            miss = client.check_job(make_job("bad", name="b", expected=True), timeout=60.0)
        assert hit.equivalent is False and miss.equivalent is False
        assert hit.matches_expectation is True
        assert miss.matches_expectation is False
