"""Integration tests: the checker on the DSP kernel suite (correct and mutated variants)."""

import random
import zlib

import pytest

from repro.checker import check_equivalence
from repro.transforms import random_mutation
from repro.workloads import kernel_names, kernel_pair

# Sizes chosen so the whole suite runs in a couple of minutes.
CHECK_SIZES = {
    "fir": dict(n=32, taps=5),
    "conv2d": dict(rows=8, cols=8),
    "matvec": dict(rows=10, cols=6),
    "wavelet_lift": dict(n=64),
    "sad": dict(blocks=8, width=4),
    "prefix_sum": dict(n=64),
    "downsample": dict(n=64),
}


@pytest.mark.parametrize("name", sorted(CHECK_SIZES))
class TestKernelEquivalence:
    def test_transformed_kernel_is_proven_equivalent(self, name):
        pair = kernel_pair(name, **CHECK_SIZES[name])
        result = check_equivalence(pair.original, pair.transformed)
        assert result.equivalent, f"{name}:\n{result.summary()}"

    def test_algebraic_kernels_need_the_extended_method(self, name):
        pair = kernel_pair(name, **CHECK_SIZES[name])
        result = check_equivalence(pair.original, pair.transformed, method="basic")
        if pair.uses_algebraic:
            assert not result.equivalent, f"{name} unexpectedly verified by the basic method"
        else:
            assert result.equivalent, f"{name}:\n{result.summary()}"


@pytest.mark.parametrize("name", ["downsample", "wavelet_lift", "fir", "matvec"])
def test_mutated_kernels_are_rejected(name):
    pair = kernel_pair(name, **CHECK_SIZES[name])
    # crc32 rather than hash(): the built-in string hash changes with every
    # process's hash seed, which made the chosen mutation (and the test
    # verdict) nondeterministic.
    rng = random.Random(zlib.crc32(name.encode()) % 1000)
    mutated, mutation = random_mutation(pair.transformed, rng)
    result = check_equivalence(pair.original, mutated, check_preconditions=False)
    assert not result.equivalent, f"{name}: mutation {mutation} was not detected"


def test_all_registered_kernels_are_covered():
    assert set(CHECK_SIZES) == set(kernel_names())
