"""Integration tests: fault injection against the verification server.

Satellite of the server PR: misbehaving clients — malformed or oversized
frames, disconnects mid-request, jobs blowing their budget — must each get
a structured error (or a structured ``timeout`` verdict) while the daemon
stays up and keeps serving everyone else; ``SIGTERM`` must drain in-flight
work and exit cleanly.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.server import ServerClient, ServerConfig, ServerError, ServerThread, protocol
from repro.service import JobStatus, VerificationJob

ORIGINAL = """
#define N 8
f(int A[], int B[])
{
    int k;
    for (k = 0; k < N; k++)
s1:     B[k] = A[k] + A[k+1];
}
"""

TRANSFORMED_EQ = """
#define N 8
f(int A[], int B[])
{
    int k;
    for (k = N-1; k >= 0; k--)
t1:     B[k] = A[k+1] + A[k];
}
"""

# Jobs whose original source carries this marker are made slow *inside* the
# budgeted window by the slow_compiles fixture — racing a real check against
# a millisecond budget is flaky once the process-wide opcache is warm.
SLOW_MARKER = "/* deliberately-slow */"


def busy_loop(seconds: float = 30.0) -> int:
    """Pure-Python CPU spin, interruptible at every bytecode boundary."""
    deadline = time.monotonic() + seconds
    total = 0
    while time.monotonic() < deadline:
        total += 1
    return total


def make_job(name="j", original=ORIGINAL, transformed=TRANSFORMED_EQ):
    return VerificationJob(name=name, original_source=original, transformed_source=transformed)


@pytest.fixture()
def server():
    with ServerThread(ServerConfig(port=0, workers=1)) as handle:
        yield handle


def raw_connection(address: str) -> socket.socket:
    host, port = address.rsplit(":", 1)
    sock = socket.create_connection((host, int(port)), timeout=30)
    return sock


def read_frame(sock: socket.socket) -> dict:
    reader = sock.makefile("rb")
    line = reader.readline()
    assert line.endswith(b"\n"), f"truncated or missing response: {line!r}"
    return json.loads(line)


class TestMalformedFrames:
    def test_malformed_json_gets_parse_error_and_connection_survives(self, server):
        with raw_connection(server.address) as sock:
            sock.sendall(b"{this is not json]\n")
            response = read_frame(sock)
            assert response["ok"] is False
            assert response["id"] is None
            assert response["error"]["code"] == protocol.ERROR_PARSE
            # Same connection still serves valid requests.
            sock.sendall(protocol.encode_frame(protocol.request_frame("ping", id=2)))
            assert read_frame(sock)["result"]["pong"] is True

    def test_non_object_frame_is_invalid_request(self, server):
        with raw_connection(server.address) as sock:
            sock.sendall(b"[1, 2, 3]\n")
            response = read_frame(sock)
            assert response["error"]["code"] == protocol.ERROR_INVALID_REQUEST

    def test_missing_method_is_invalid_request_with_id_echoed(self, server):
        with raw_connection(server.address) as sock:
            sock.sendall(b'{"id": 41}\n')
            response = read_frame(sock)
            assert response["id"] == 41
            assert response["error"]["code"] == protocol.ERROR_INVALID_REQUEST

    def test_unknown_method(self, server):
        with raw_connection(server.address) as sock:
            sock.sendall(protocol.encode_frame(protocol.request_frame("frobnicate", id=1)))
            response = read_frame(sock)
            assert response["error"]["code"] == protocol.ERROR_UNKNOWN_METHOD

    def test_malformed_job_payload(self, server):
        with raw_connection(server.address) as sock:
            sock.sendall(
                protocol.encode_frame(
                    protocol.request_frame("check", {"job": {"name": "incomplete"}}, id=5)
                )
            )
            response = read_frame(sock)
            assert response["id"] == 5
            assert response["error"]["code"] == protocol.ERROR_INVALID_REQUEST
            assert "malformed job" in response["error"]["message"]

    def test_non_numeric_timeout(self, server):
        with raw_connection(server.address) as sock:
            frame = protocol.request_frame(
                "check", {"job": make_job().to_dict(), "timeout": "soon"}, id=6
            )
            sock.sendall(protocol.encode_frame(frame))
            response = read_frame(sock)
            assert response["error"]["code"] == protocol.ERROR_INVALID_REQUEST


class TestOversizedFrames:
    @pytest.fixture()
    def small_frame_server(self):
        config = ServerConfig(port=0, workers=1, max_frame_bytes=4096)
        with ServerThread(config) as handle:
            yield handle

    def test_oversized_frame_errors_and_closes_this_connection(self, small_frame_server):
        with raw_connection(small_frame_server.address) as sock:
            sock.sendall(b"x" * 20000 + b"\n")
            response = read_frame(sock)
            assert response["ok"] is False
            assert response["error"]["code"] == protocol.ERROR_FRAME_TOO_LARGE
            # The stream is not self-synchronising past the limit: EOF next.
            assert sock.makefile("rb").readline() == b""
        # The listener survives; fresh connections work.
        with ServerClient(small_frame_server.address) as client:
            assert client.ping()["pong"] is True

    def test_oversized_job_rejected_structurally(self, small_frame_server):
        big_job = make_job(original="/* " + "x" * 20000 + " */" + ORIGINAL)
        with pytest.raises(ServerError) as excinfo:
            with ServerClient(small_frame_server.address) as client:
                client.check_job(big_job)
        assert excinfo.value.code in (protocol.ERROR_FRAME_TOO_LARGE, "disconnected")


class TestClientDisconnects:
    def test_disconnect_mid_frame_leaves_server_up(self, server):
        with raw_connection(server.address) as sock:
            sock.sendall(b'{"id": 1, "method": "chec')  # no newline, then vanish
        with ServerClient(server.address) as client:
            assert client.ping()["pong"] is True

    def test_disconnect_mid_request_leaves_server_up(self, server):
        """The client sends a full check request and hangs up before the
        response; the server must absorb the dropped write and keep going."""
        with raw_connection(server.address) as sock:
            frame = protocol.request_frame("check", {"job": make_job().to_dict()}, id=1)
            sock.sendall(protocol.encode_frame(frame))
        # No sleep needed for correctness: the next client's requests are
        # served by the same loop that is (or was) running the orphaned job.
        with ServerClient(server.address) as client:
            outcome = client.check_job(make_job(name="after-disconnect"), timeout=60.0)
            assert outcome.status == JobStatus.OK
            assert client.ping()["pong"] is True

    def test_many_abrupt_disconnects_do_not_wedge_the_queue(self, server):
        for _ in range(10):
            with raw_connection(server.address) as sock:
                frame = protocol.request_frame("check", {"job": make_job().to_dict()}, id=1)
                sock.sendall(protocol.encode_frame(frame))
        with ServerClient(server.address) as client:
            outcome = client.check_job(make_job(name="survivor"), timeout=60.0)
            assert outcome.status == JobStatus.OK


class TestBudgets:
    @pytest.fixture()
    def slow_compiles(self, monkeypatch):
        """Make marked sources spin for 30 s inside the compile step, which
        runs within the budgeted window, so any small budget expires
        deterministically; unmarked sources compile for real."""
        from repro.server.pool import CompiledStore

        real = CompiledStore.get_or_compile

        def slow(self, source):
            if SLOW_MARKER in source:
                busy_loop()
            return real(self, source)

        monkeypatch.setattr(CompiledStore, "get_or_compile", slow)

    def test_job_exceeding_budget_times_out_structurally(self, server, slow_compiles):
        with ServerClient(server.address) as client:
            outcome = client.check_job(
                make_job("slow", original=SLOW_MARKER + ORIGINAL), timeout=0.05
            )
            assert outcome.status == JobStatus.TIMEOUT
            assert "budget" in (outcome.error or "")
            # The worker thread survives the interrupt: the next job is fine.
            follow_up = client.check_job(make_job(name="after-timeout"), timeout=60.0)
            assert follow_up.status == JobStatus.OK
            assert client.stats()["timeouts"] == 1

    def test_max_timeout_clamps_request_budgets(self, slow_compiles):
        config = ServerConfig(port=0, workers=1, max_timeout=0.05)
        with ServerThread(config) as handle:
            with ServerClient(handle.address) as client:
                outcome = client.check_job(
                    make_job("slow", original=SLOW_MARKER + ORIGINAL), timeout=3600.0
                )
                assert outcome.status == JobStatus.TIMEOUT

    def test_per_client_inflight_budget_rejects_excess(self):
        config = ServerConfig(port=0, workers=1, max_inflight_per_client=0)
        with ServerThread(config) as handle:
            with pytest.raises(ServerError) as excinfo:
                with ServerClient(handle.address) as client:
                    client.check_job(make_job())
            assert excinfo.value.code == protocol.ERROR_RATE_LIMITED
            # Rejection is per-request, not per-connection: pings still work.
            with ServerClient(handle.address) as client:
                assert client.ping()["pong"] is True


class TestGracefulShutdown:
    @staticmethod
    def spawn_daemon(tmp_path):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(__file__))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            cwd=str(tmp_path),
            text=True,
        )
        banner = process.stdout.readline()
        assert banner.startswith("listening on "), f"unexpected banner: {banner!r}"
        return process, banner.split("listening on ", 1)[1].strip()

    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        process, address = self.spawn_daemon(tmp_path)
        try:
            with ServerClient(address) as client:
                outcome = client.check_job(make_job(), timeout=60.0)
                assert outcome.status == JobStatus.OK
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)

    def test_sigterm_with_request_in_flight_still_answers(self, tmp_path):
        """On an accepted connection, a request racing SIGTERM gets *some*
        frame back — the drained verdict or a structured shutting_down error,
        never silence.  (A connection still in the kernel accept backlog at
        SIGTERM is outside the drain guarantee, like any TCP server's; the
        ping round-trip below pins this connection as accepted first.)"""
        process, address = self.spawn_daemon(tmp_path)
        try:
            sock = raw_connection(address)
            sock.sendall(protocol.encode_frame(protocol.request_frame("ping", id=1)))
            assert read_frame(sock)["result"]["pong"] is True
            frame = protocol.request_frame(
                "check", {"job": make_job().to_dict(), "timeout": 60.0}, id=9
            )
            sock.sendall(protocol.encode_frame(frame))
            process.send_signal(signal.SIGTERM)
            response = read_frame(sock)
            assert response["id"] == 9  # not the ping: ids correlate
            if response["ok"]:
                assert response["result"]["status"] in (JobStatus.OK, JobStatus.TIMEOUT)
            else:
                assert response["error"]["code"] == protocol.ERROR_SHUTTING_DOWN
            sock.close()
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)

    def test_shutdown_rpc_drains_like_sigterm(self, tmp_path):
        process, address = self.spawn_daemon(tmp_path)
        try:
            with ServerClient(address) as client:
                assert client.shutdown()["shutting_down"] is True
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
