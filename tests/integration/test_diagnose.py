"""End-to-end diagnosis: the acceptance contract of :mod:`repro.diagnostics`.

For every mutated pair of the fuzz smoke corpus, ``diagnose`` must yield a
concrete input on which interpreter replay reproduces the divergence (the
witness is confirmed end to end), and pipeline bisection must name the
injected mutation step.  The CLI surfaces (``diagnose`` subcommand, ``check
--json``, the fuzz witness gates) are exercised on top.
"""

import json

import pytest

from repro.cli import main
from repro.scenarios import ScenarioSpec, build_scenarios
from repro.verifier import Verifier

ORIGINAL = """
#define N 8
void f(int A[N], int C[N])
{
  int i;
  int tmp[N];
  for (i = 0; i < N; i++) {
s1: tmp[i] = A[i] * 2;
  }
  for (i = 0; i < N; i++) {
s2: C[i] = tmp[i] + 1;
  }
}
"""

BUGGY = """
#define N 8
void f(int A[N], int C[N])
{
  int i;
  for (i = 0; i < N; i++) {
t1: C[i] = A[i] * 2 + 2;
  }
}
"""

EQUIVALENT = """
#define N 8
void f(int A[N], int C[N])
{
  int i;
  for (i = 0; i < N; i++) {
t1: C[i] = A[i] * 2 + 1;
  }
}
"""

#: The fuzz smoke corpus shape (kept in sync with `fuzz --smoke`).
SMOKE_SPEC = ScenarioSpec(seed=0, pairs=12, size=14, max_depth=3)


@pytest.fixture(scope="module")
def smoke_pairs():
    return build_scenarios(SMOKE_SPEC)


class TestSmokeCorpusAcceptance:
    def test_every_mutated_pair_yields_a_confirmed_witness_and_named_mutation(
        self, smoke_pairs
    ):
        buggy = [pair for pair in smoke_pairs if not pair.expected_equivalent]
        assert buggy, "smoke corpus must contain mutated twins"
        verifier = Verifier()
        for pair in buggy:
            result = verifier.check(pair.original, pair.transformed)
            assert not result.equivalent, f"{pair.name}: checker missed the mutation"
            report = verifier.diagnose(
                pair.original, pair.transformed, result=result, trace=pair.trace
            )
            assert report.confirmed, f"{pair.name}: replay found no divergence"
            assert report.replay is not None and report.replay.diverged
            assert report.bisection is not None, f"{pair.name}: no bisection ran"
            assert report.bisection.localized, f"{pair.name}: bisection inconclusive"
            assert report.bisection.step_name == "mutation", (
                f"{pair.name}: bisection blamed {report.bisection.step_name!r} "
                "instead of the injected mutation"
            )
            assert report.bisection.step_index == len(pair.trace) - 1

    def test_checker_and_oracle_witnesses_agree(self, smoke_pairs):
        """The two independent witness layers point at the same divergence."""
        verifier = Verifier()
        for pair in smoke_pairs:
            if pair.expected_equivalent or pair.oracle is None:
                continue
            assert pair.oracle.witness_seed is not None
            report = verifier.diagnose(
                pair.original, pair.transformed, replay_seed=pair.oracle.witness_seed
            )
            # Replaying the oracle's own witness seed must reproduce the
            # divergence the oracle saw.
            assert report.confirmed
            assert report.replay.seed == pair.oracle.witness_seed


class TestDiagnoseCli:
    def _write(self, tmp_path, name, text):
        path = tmp_path / name
        path.write_text(text, encoding="utf-8")
        return str(path)

    def test_diagnose_subcommand_prints_a_confirmed_report(self, tmp_path, capsys):
        original = self._write(tmp_path, "orig.c", ORIGINAL)
        buggy = self._write(tmp_path, "buggy.c", BUGGY)
        exit_code = main(["diagnose", original, buggy, "--quiet"])
        out = capsys.readouterr().out
        assert exit_code == 1
        assert "witness confirmed" in out
        assert "first divergence" in out
        assert "by s2" in out and "by t1" in out

    def test_diagnose_json_is_a_failure_report(self, tmp_path, capsys):
        original = self._write(tmp_path, "orig.c", ORIGINAL)
        buggy = self._write(tmp_path, "buggy.c", BUGGY)
        exit_code = main(["diagnose", original, buggy, "--json", "--quiet"])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 1
        assert payload["confirmed"] is True
        assert payload["replay"]["diverged"] is True

    def test_diagnose_equivalent_pair_exits_zero(self, tmp_path, capsys):
        original = self._write(tmp_path, "orig.c", ORIGINAL)
        equivalent = self._write(tmp_path, "equiv.c", EQUIVALENT)
        exit_code = main(["diagnose", original, equivalent, "--quiet"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "nothing to diagnose" in out

    def test_check_json_emits_the_result_schema(self, tmp_path, capsys):
        original = self._write(tmp_path, "orig.c", ORIGINAL)
        buggy = self._write(tmp_path, "buggy.c", BUGGY)
        exit_code = main(["check", original, buggy, "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 1
        # The same schema the batch JSONL rows embed per result.
        assert payload["equivalent"] is False
        assert {"outputs", "diagnostics", "stats", "method"} <= set(payload)
        from repro.checker import EquivalenceResult

        assert not EquivalenceResult.from_dict(payload).equivalent

    def test_check_json_equivalent_pair(self, tmp_path, capsys):
        original = self._write(tmp_path, "orig.c", ORIGINAL)
        equivalent = self._write(tmp_path, "equiv.c", EQUIVALENT)
        exit_code = main(["check", original, equivalent, "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0 and payload["equivalent"] is True


class TestFuzzWitnessGates:
    def test_smoke_report_carries_failure_reports_and_witness_block(self, tmp_path):
        report = tmp_path / "report.jsonl"
        exit_code = main(["fuzz", "--smoke", "--report", str(report), "--quiet"])
        assert exit_code == 0
        rows, summary = [], None
        with open(report, "r", encoding="utf-8") as handle:
            for line in handle:
                row = json.loads(line)
                if row.get("type") == "summary":
                    summary = row
                else:
                    rows.append(row)
        failing = [row for row in rows if row["equivalent"] is False]
        assert failing, "smoke corpus must contain caught mutations"
        for row in failing:
            block = row["metadata"]["failure_report"]
            assert block["confirmed"] is True
            assert block["bisection"]["step_name"] == "mutation"
        witness = summary["scenarios"]["witness"]
        assert witness["diagnosed"] == len(failing)
        assert witness["confirmed"] == len(failing)
        assert witness["witness_errors"] == []
        assert witness["bisection_misses"] == []

    def test_no_diagnose_skips_the_witness_block(self, tmp_path):
        report = tmp_path / "report.jsonl"
        exit_code = main(
            ["fuzz", "--pairs", "4", "--size", "12", "--no-diagnose",
             "--report", str(report), "--quiet"]
        )
        assert exit_code == 0
        with open(report, "r", encoding="utf-8") as handle:
            rows = [json.loads(line) for line in handle]
        summary = next(row for row in rows if row.get("type") == "summary")
        assert "witness" not in summary["scenarios"]
        for row in rows:
            if row.get("type") != "summary":
                assert "failure_report" not in row["metadata"]
