"""Unit tests for the command-line driver."""

import os

import pytest

from repro.cli import build_arg_parser, main
from repro.workloads import FIG1_SOURCES


@pytest.fixture
def fig1_files(tmp_path):
    paths = {}
    for version, source in FIG1_SOURCES.items():
        # shrink N to keep the CLI tests fast
        text = (
            source.replace("#define N 1024", "#define N 32")
            .replace("k<512", "k<16")
            .replace("k < 512", "k < 16")
        )
        path = tmp_path / f"fig1_{version}.c"
        path.write_text(text)
        paths[version] = str(path)
    return paths


class TestArgumentParser:
    def test_defaults(self):
        args = build_arg_parser().parse_args(["orig.c", "trans.c"])
        assert args.method == "extended"
        assert not args.quiet

    def test_method_choice_validated(self):
        with pytest.raises(SystemExit):
            build_arg_parser().parse_args(["a.c", "b.c", "--method", "wrong"])


class TestMain:
    def test_equivalent_pair_exits_zero(self, fig1_files, capsys):
        status = main([fig1_files["a"], fig1_files["c"]])
        assert status == 0
        out = capsys.readouterr().out
        assert "EQUIVALENT" in out

    def test_inequivalent_pair_exits_one(self, fig1_files, capsys):
        status = main([fig1_files["a"], fig1_files["d"]])
        assert status == 1
        out = capsys.readouterr().out
        assert "NOT PROVEN EQUIVALENT" in out
        assert "mapping" in out

    def test_quiet_mode(self, fig1_files, capsys):
        status = main(["--quiet", fig1_files["a"], fig1_files["b"]])
        assert status == 0
        assert capsys.readouterr().out.strip() == "Equivalent"

    def test_basic_method_fails_on_algebraic_pair(self, fig1_files):
        assert main(["--quiet", "--method", "basic", fig1_files["a"], fig1_files["c"]]) == 1
        assert main(["--quiet", "--method", "basic", fig1_files["a"], fig1_files["b"]]) == 0

    def test_focused_output_option(self, fig1_files):
        assert main(["--quiet", "--output", "C", fig1_files["a"], fig1_files["b"]]) == 0

    def test_dump_addg(self, fig1_files, tmp_path):
        orig_dot = str(tmp_path / "orig.dot")
        trans_dot = str(tmp_path / "trans.dot")
        status = main(["--quiet", "--dump-addg", orig_dot, trans_dot, fig1_files["a"], fig1_files["b"]])
        assert status == 0
        assert os.path.exists(orig_dot) and os.path.exists(trans_dot)
        assert "digraph" in open(orig_dot).read()

    def test_missing_file_reports_error(self, capsys):
        status = main(["/nonexistent/a.c", "/nonexistent/b.c"])
        assert status == 2
        assert "error" in capsys.readouterr().err

    def test_declare_op_and_correspond_options(self, fig1_files):
        status = main([
            "--quiet",
            "--declare-op", "foo:AC",
            "--correspond", "tmp=tmp",
            fig1_files["a"], fig1_files["b"],
        ])
        assert status == 0

    def test_bad_correspond_syntax(self, fig1_files):
        with pytest.raises(SystemExit):
            main(["--correspond", "broken", fig1_files["a"], fig1_files["b"]])


class TestTelemetryFlags:
    def test_check_trace_and_metrics_files(self, fig1_files, tmp_path, capsys):
        import json

        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.jsonl"
        status = main([
            "check", "--quiet",
            "--trace", str(trace_path),
            "--metrics", str(metrics_path),
            fig1_files["a"], fig1_files["b"],
        ])
        assert status == 0

        payload = json.loads(trace_path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        names = {event.get("name") for event in payload["traceEvents"]}
        assert "verifier.check" in names
        assert "frontend.parse_program" in names
        assert "engine.traverse" in names

        rows = [json.loads(line) for line in metrics_path.read_text().splitlines()]
        assert rows[-1]["type"] == "opcache"
        assert any(row.get("type") == "counter" for row in rows)

        # The phase summary lands on stderr, not stdout.
        err = capsys.readouterr().err
        assert "telemetry" in err or "phase" in err

    def test_trace_flag_leaves_telemetry_disabled_afterwards(self, fig1_files, tmp_path):
        from repro.telemetry import METRICS, TRACER

        main(["check", "--quiet", "--trace", str(tmp_path / "t.json"),
              fig1_files["a"], fig1_files["b"]])
        assert TRACER.enabled is False
        assert METRICS.enabled is False
        assert TRACER.records() == []

    def test_legacy_invocation_accepts_trace_flag(self, fig1_files, tmp_path):
        trace_path = tmp_path / "legacy.json"
        assert main(["--quiet", "--trace", str(trace_path),
                     fig1_files["a"], fig1_files["b"]]) == 0
        assert trace_path.exists()

    def test_no_flags_produces_no_files(self, fig1_files, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["check", "--quiet", fig1_files["a"], fig1_files["b"]]) == 0
        assert list(tmp_path.glob("*.json")) == []
