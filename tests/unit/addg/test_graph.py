"""Unit tests for the ADDG data structure and its Fig. 2-style inventory."""

import pytest

from repro.addg import ADDG, ConstNode, OpNode, ReadNode, build_addg
from repro.lang import parse_program
from repro.workloads import fig1_program, kernel_pair


class TestFig2Inventory:
    """The ADDGs of Fig. 1 must have the node/edge structure shown in Fig. 2."""

    def setup_method(self):
        self.addgs = {v: build_addg(fig1_program(v, 1024)) for v in "abcd"}

    def test_array_nodes(self):
        assert set(self.addgs["a"].array_nodes()) == {"A", "B", "C", "tmp", "buf"}
        assert set(self.addgs["c"].array_nodes()) == {"A", "B", "C", "buf"}

    def test_operator_counts(self):
        # (a): one + per statement s1..s3; (b): t4 contains a nested +.
        assert len(self.addgs["a"].operator_nodes()) == 3
        assert len(self.addgs["b"].operator_nodes()) == 5
        assert len(self.addgs["c"].operator_nodes()) == 3
        assert len(self.addgs["d"].operator_nodes()) == 4

    def test_inputs_and_outputs(self):
        for version, addg in self.addgs.items():
            assert set(addg.inputs) == {"A", "B"}
            assert addg.outputs == ("C",)

    def test_intermediates(self):
        assert set(self.addgs["a"].intermediates) == {"tmp", "buf"}
        assert set(self.addgs["c"].intermediates) == {"buf"}

    def test_statement_edges_carry_labels(self):
        edges = self.addgs["a"].edges()
        labels = {label for _, _, label in edges}
        assert {"s1", "s2", "s3"} <= labels
        # operand edges are labelled by positions
        assert {"1", "2"} <= labels

    def test_sizes_are_positive_and_ordered(self):
        # (b) has more statements than (a), so its ADDG is at least as large.
        assert self.addgs["b"].size() > self.addgs["a"].size()
        assert self.addgs["a"].node_count() == 8
        assert self.addgs["a"].edge_count() == 9


class TestStructure:
    def test_defining_statements(self):
        addg = build_addg(fig1_program("b", 64))
        defs_c = [s.label for s in addg.defining_statements("C")]
        assert defs_c == ["t3", "t4"]
        assert addg.defining_statements("A") == []

    def test_statement_lookup(self):
        addg = build_addg(fig1_program("a", 64))
        assert addg.statement("s2").target == "buf"
        with pytest.raises(KeyError):
            addg.statement("nope")

    def test_written_set_union(self):
        addg = build_addg(fig1_program("c", 64))
        written = addg.written_set("buf")
        # u1 writes [0, 64), u2 writes even elements of [64, 126]
        assert written.contains([0]) and written.contains([63])
        assert written.contains([64]) and written.contains([126])
        assert not written.contains([65])
        with pytest.raises(KeyError):
            addg.written_set("A")

    def test_reads_and_operator_nodes_of_statement(self):
        addg = build_addg(fig1_program("b", 64))
        t4 = addg.statement("t4")
        reads = t4.reads()
        assert [r.array for r in reads] == ["B", "B", "buf"]
        assert len(t4.operator_nodes()) == 2

    def test_read_nodes_carry_dependency_maps(self):
        addg = build_addg(fig1_program("a", 64))
        s3 = addg.statement("s3")
        buf_read = s3.reads()[1]
        assert buf_read.dependency.contains([5], [10])

    def test_const_nodes(self):
        addg = build_addg(
            parse_program("f(int A[], int C[]) { int k; for(k=0;k<4;k++) s1: C[k] = 2 * A[k] + 1; }")
        )
        statement = addg.statement("s1")
        consts = [n for n in _walk(statement.rhs) if isinstance(n, ConstNode)]
        assert sorted(c.value for c in consts) == [1, 2]

    def test_cyclic_arrays_detection(self):
        addg = build_addg(kernel_pair("prefix_sum", n=8).original)
        assert addg.cyclic_arrays() == ("acc",)
        addg = build_addg(fig1_program("a", 64))
        assert addg.cyclic_arrays() == ()


def _walk(node):
    yield node
    for child in node.children():
        yield from _walk(child)
