"""Unit tests for ADDG extraction (expression-tree construction, validation hooks)."""

import pytest

from repro.addg import NEGATE_OP, OpNode, ReadNode, ConstNode, build_addg
from repro.lang import ProgramClassError, parse_program
from repro.presburger import parse_map


def single_statement_addg(source):
    addg = build_addg(parse_program(source))
    assert len(addg.statements) >= 1
    return addg


class TestExpressionTrees:
    def test_binary_tree_shape(self):
        addg = single_statement_addg(
            "f(int A[], int B[], int C[]) { int k; for(k=0;k<4;k++) s1: C[k] = (A[k] + B[k]) * A[k+1]; }"
        )
        root = addg.statement("s1").rhs
        assert isinstance(root, OpNode) and root.op == "*"
        left, right = root.operands
        assert isinstance(left, OpNode) and left.op == "+"
        assert isinstance(right, ReadNode) and right.array == "A"

    def test_operand_positions_and_paths(self):
        addg = single_statement_addg(
            "f(int A[], int B[], int C[]) { int k; for(k=0;k<4;k++) s1: C[k] = A[k] + B[k]; }"
        )
        root = addg.statement("s1").rhs
        assert [op.position for op in root.operands] == [1, 2]
        assert root.operands[0].path == (1,)
        assert root.operands[1].path == (2,)

    def test_unary_minus_becomes_neg_operator(self):
        addg = single_statement_addg(
            "f(int A[], int C[]) { int k; for(k=0;k<4;k++) s1: C[k] = -A[k]; }"
        )
        root = addg.statement("s1").rhs
        assert isinstance(root, OpNode) and root.op == NEGATE_OP
        assert len(root.operands) == 1

    def test_call_becomes_named_operator(self):
        addg = single_statement_addg(
            "f(int A[], int B[], int C[]) { int k; for(k=0;k<4;k++) s1: C[k] = min3(A[k], B[k], 0); }"
        )
        root = addg.statement("s1").rhs
        assert isinstance(root, OpNode) and root.op == "min3"
        assert len(root.operands) == 3
        assert isinstance(root.operands[2], ConstNode)

    def test_copy_statement_rhs_is_a_read_node(self):
        addg = single_statement_addg(
            "f(int A[], int C[]) { int k; for(k=0;k<4;k++) s1: C[k] = A[2*k]; }"
        )
        root = addg.statement("s1").rhs
        assert isinstance(root, ReadNode)
        assert root.dependency.is_equal(parse_map("{ [k] -> [2k] : 0 <= k < 4 }"))

    def test_write_map_and_written_set(self):
        addg = single_statement_addg(
            "f(int A[], int C[]) { int k; for(k=1;k<=3;k++) s1: C[2*k] = A[k]; }"
        )
        statement = addg.statement("s1")
        assert sorted(statement.written.points()) == [(2,), (4,), (6,)]
        assert statement.write_map.contains([2], [4])


class TestValidationHook:
    def test_out_of_class_program_rejected(self):
        with pytest.raises(ProgramClassError):
            build_addg(
                parse_program(
                    "f(int A[], int B[], int C[]) { int k; for(k=0;k<4;k++) s1: C[k] = A[B[k]]; }"
                )
            )

    def test_validation_can_be_skipped(self):
        # Still fails later only if the construction itself needs affine indices;
        # for a program that is in the class, validate=False behaves identically.
        program = parse_program(
            "f(int A[], int C[]) { int k; for(k=0;k<4;k++) s1: C[k] = A[k]; }"
        )
        addg = build_addg(program, validate=False)
        assert len(addg.statements) == 1

    def test_scalar_data_operand_rejected(self):
        with pytest.raises(ProgramClassError):
            build_addg(
                parse_program(
                    "f(int A[], int C[]) { int k, x; for(k=0;k<4;k++) s1: C[k] = x; }"
                ),
                validate=False,
            )


class TestDotExport:
    def test_dot_output_mentions_all_nodes(self):
        from repro.addg import addg_to_dot
        from repro.workloads import fig1_program

        addg = build_addg(fig1_program("a", 64))
        dot = addg_to_dot(addg, "fig1a")
        assert dot.startswith("digraph fig1a {")
        for array in ("A", "B", "C", "tmp", "buf"):
            assert f'label="{array}"' in dot
        assert dot.count('label="+"') == 3
        assert 'label="s2"' in dot
        assert dot.rstrip().endswith("}")

    def test_dot_marks_inputs_and_outputs(self):
        from repro.addg import addg_to_dot
        from repro.workloads import fig1_program

        dot = addg_to_dot(build_addg(fig1_program("a", 64)))
        assert "peripheries=2" in dot  # inputs
        assert "penwidth=2" in dot  # outputs
