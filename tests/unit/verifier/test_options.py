"""Unit tests: the unified ``CheckOptions`` value."""

import pickle

import pytest

from repro.checker import default_registry, empty_registry
from repro.verifier import CheckOptions


class TestConstruction:
    def test_defaults(self):
        options = CheckOptions()
        assert options.method == "extended"
        assert options.operators is None
        assert options.outputs is None
        assert options.correspondences == ()
        assert options.tabling is True
        assert options.check_preconditions is True
        assert options.timeout is None

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            CheckOptions(method="wrong")

    def test_frozen(self):
        with pytest.raises(Exception):
            CheckOptions().method = "basic"

    def test_sequences_coerced_to_tuples(self):
        options = CheckOptions(outputs=["B", "C"], correspondences=[("t", "u")])
        assert options.outputs == ("B", "C")
        assert options.correspondences == (("t", "u"),)

    def test_operator_canonicalisation(self):
        # order and props spelling normalise; explicit default collapses to None
        assert CheckOptions(operators=(("min", "CA"), ("max", "c"))).operators == (
            ("max", "C"),
            ("min", "AC"),
        )
        assert CheckOptions(operators=(("+", "AC"), ("*", "CA"))) == CheckOptions()

    def test_empty_operator_tuple_means_no_laws(self):
        options = CheckOptions(operators=())
        assert options.operators == ()
        registry = options.registry()
        assert not registry.get("+").is_algebraic
        assert not registry.get("*").is_algebraic


class TestRegistryRoundTrip:
    def test_default_registry(self):
        options = CheckOptions()
        registry = options.registry()
        assert registry.get("+").associative and registry.get("+").commutative
        assert registry.get("*").associative and registry.get("*").commutative

    def test_from_registry_with_extras(self):
        registry = default_registry()
        registry.declare("min", associative=True, commutative=True)
        options = CheckOptions.from_registry(registry)
        rebuilt = options.registry()
        assert rebuilt.get("min").is_algebraic
        assert rebuilt.get("+").is_algebraic

    def test_from_registry_can_drop_defaults(self):
        options = CheckOptions.from_registry(empty_registry())
        assert options.operators == ()
        assert not options.registry().get("+").is_algebraic

    def test_from_registry_none_is_default(self):
        assert CheckOptions.from_registry(None) == CheckOptions()


class TestSerialisation:
    def test_dict_round_trip(self):
        options = CheckOptions(
            method="basic",
            operators=(("min", "AC"),),
            outputs=("B",),
            correspondences=(("t", "u"),),
            tabling=False,
            check_preconditions=False,
            timeout=12.5,
        )
        assert CheckOptions.from_dict(options.to_dict()) == options

    def test_default_dict_round_trip(self):
        assert CheckOptions.from_dict(CheckOptions().to_dict()) == CheckOptions()

    def test_picklable_and_hashable(self):
        options = CheckOptions(method="basic", outputs=("B",))
        assert pickle.loads(pickle.dumps(options)) == options
        assert hash(options) == hash(CheckOptions(method="basic", outputs=("B",)))

    def test_replace(self):
        options = CheckOptions()
        basic = options.replace(method="basic")
        assert basic.method == "basic"
        assert options.method == "extended"


class TestFingerprint:
    def test_stable_and_hex(self):
        fingerprint = CheckOptions().fingerprint()
        assert fingerprint == CheckOptions().fingerprint()
        assert len(fingerprint) == 64
        assert set(fingerprint) <= set("0123456789abcdef")

    def test_sensitive_to_every_verdict_relevant_field(self):
        baseline = CheckOptions().fingerprint()
        assert CheckOptions(method="basic").fingerprint() != baseline
        assert CheckOptions(operators=(("min", "AC"),)).fingerprint() != baseline
        assert CheckOptions(outputs=("B",)).fingerprint() != baseline
        assert CheckOptions(correspondences=(("t", "u"),)).fingerprint() != baseline
        assert CheckOptions(tabling=False).fingerprint() != baseline
        assert CheckOptions(check_preconditions=False).fingerprint() != baseline

    def test_timeout_is_excluded(self):
        # A timeout can abort a check but never change a computed verdict, so
        # it must not split the result-cache key space.
        assert CheckOptions(timeout=5.0).fingerprint() == CheckOptions().fingerprint()

    def test_equivalent_operator_spellings_agree(self):
        explicit_default = CheckOptions(operators=(("*", "CA"), ("+", "AC")))
        assert explicit_default.fingerprint() == CheckOptions().fingerprint()

    def test_correspondence_order_insensitive(self):
        first = CheckOptions(correspondences=(("a", "b"), ("c", "d")))
        second = CheckOptions(correspondences=(("c", "d"), ("a", "b")))
        assert first.fingerprint() == second.fingerprint()
