"""Cache invariance: every caching tier is an optimization, never an input.

The operation cache has three observable configurations — in-memory (the
default), fully disabled (``REPRO_OPCACHE_DISABLE=1``) and disk-backed
(``REPRO_OPCACHE_PERSIST_DIR`` / ``CheckOptions.persist_dir``).  Verdicts
must be bit-identical across all three; this module is the regression leg
the persistence design docs point at.

Two layers:

* in-process — the same checks run under each configuration inside one
  interpreter and the full verdict/diagnostic structure is compared;
* subprocess — a representative unit subset runs under ``pytest`` with the
  cache disabled and with a throwaway persistent directory (twice, so the
  second run starts warm), which catches anything that only manifests
  through module-import-time attachment.
"""

import os
import subprocess
import sys

import pytest

from repro.checker import check_equivalence
from repro.presburger import opcache
from repro.verifier import CheckOptions, Verifier
from repro.workloads import SMALL_KERNEL_PARAMS, kernel_pair
from repro.workloads.fig1 import fig1_original, fig1_ver1, fig1_ver3_erroneous

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))))

# Small but representative: a paper-figure equivalence, a true bug, and a
# strided kernel (downsample) that exercises the FM dark-shadow path.
def program_pairs():
    downsample = kernel_pair("downsample", **SMALL_KERNEL_PARAMS["downsample"])
    return [
        (fig1_original(), fig1_ver1()),
        (fig1_original(), fig1_ver3_erroneous()),
        (downsample.original, downsample.transformed),
    ]


def verdict_signature(original, transformed):
    result = check_equivalence(original, transformed)
    return (
        result.equivalent,
        tuple(sorted(str(d) for d in result.diagnostics)),
    )


def sweep():
    return [verdict_signature(a, b) for a, b in program_pairs()]


class TestInProcessInvariance:
    def test_disabled_cache_matches_default(self):
        opcache.reset()
        baseline = sweep()
        opcache.configure(enabled=False)
        try:
            opcache.reset()
            disabled = sweep()
        finally:
            opcache.configure(enabled=True)
            opcache.reset()
        assert disabled == baseline

    def test_persistent_cache_matches_default(self, tmp_path):
        opcache.reset()
        baseline = sweep()
        opcache.attach_persistent(str(tmp_path / "cache"))
        try:
            opcache.reset()
            cold = sweep()
            opcache.reset()  # second pass: memory dropped, disk warm
            warm = sweep()
            assert opcache.stats().disk_hits > 0
        finally:
            opcache.detach_persistent()
            opcache.reset()
        assert cold == baseline
        assert warm == baseline

    def test_options_persist_dir_attaches(self, tmp_path):
        path = str(tmp_path / "optcache")
        original, transformed = fig1_original(), fig1_ver1()
        verifier = Verifier(options=CheckOptions(persist_dir=path))
        try:
            result = verifier.check(original, transformed)
            assert result.equivalent
            store = opcache.persistent_store()
            assert store is not None
            assert store.path == os.path.abspath(path)
            assert store.entry_count() > 0
        finally:
            opcache.detach_persistent()
            opcache.reset()

    def test_persist_dir_does_not_change_fingerprint(self, tmp_path):
        plain = CheckOptions()
        persisted = CheckOptions(persist_dir=str(tmp_path))
        assert plain.fingerprint() == persisted.fingerprint()


SUBSET = "tests/unit/presburger/test_omega.py"


def run_subset(extra_env):
    env = dict(os.environ)
    env.pop("REPRO_OPCACHE_DISABLE", None)
    env.pop("REPRO_OPCACHE_PERSIST_DIR", None)
    env["PYTHONPATH"] = "src"
    env.update(extra_env)
    return subprocess.run(
        [sys.executable, "-m", "pytest", "-q", "-p", "no:cacheprovider", SUBSET],
        env=env,
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )


@pytest.mark.slow
class TestSubprocessInvariance:
    def test_subset_passes_with_cache_disabled(self):
        proc = run_subset({"REPRO_OPCACHE_DISABLE": "1"})
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_subset_passes_with_persistent_cache(self, tmp_path):
        path = str(tmp_path / "throwaway")
        cold = run_subset({"REPRO_OPCACHE_PERSIST_DIR": path})
        assert cold.returncode == 0, cold.stdout + cold.stderr
        # Second run starts warm from the first run's disk state and must be
        # just as green.
        warm = run_subset({"REPRO_OPCACHE_PERSIST_DIR": path})
        assert warm.returncode == 0, warm.stdout + warm.stderr
        assert os.path.exists(os.path.join(path, "opcache.sqlite"))
